"""Fig. 1: BFS per-thread workload imbalance."""

from benchmarks.conftest import once, report
from repro.experiments import fig01_imbalance


def test_fig01_imbalance(benchmark, runner):
    result = once(benchmark, lambda: fig01_imbalance.run(runner))
    report(result)
    work = result.extras["work"]
    # The imbalance the paper motivates with: heavy threads dominate.
    assert work.max() > 10 * work.mean()
