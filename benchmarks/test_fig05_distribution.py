"""Fig. 5: speedup vs parent/child workload distribution, all 13 benchmarks.

This is the paper's central characterization: the preferred distribution
differs per benchmark (Observation 1), JOIN-uniform/AMR prefer parent-side
work (Observation 2), MM/SA prefer heavy offloading (Observation 3), and
static tuning yields significant gains (Observation 4).
"""

from benchmarks.conftest import once, report
from repro.experiments import fig05_distribution


def test_fig05_distribution(benchmark, runner):
    result = once(benchmark, lambda: fig05_distribution.run(runner))
    report(result)
    sweeps = result.extras["sweeps"]
    assert len(sweeps) == 13

    # Observation 1: preferred thresholds differ across benchmarks.
    best_offloads = {n: s.best().offload_fraction for n, s in sweeps.items()}
    assert max(best_offloads.values()) - min(best_offloads.values()) > 0.3

    # Observation 2: JOIN-uniform prefers (almost) everything in the parent.
    assert best_offloads["JOIN-uniform"] < 0.3

    # Observation 3: MM/SA prefer offloading a large share.
    assert best_offloads["MM-small"] > 0.5
    assert best_offloads["SA-thaliana"] > 0.5

    # Observation 4: static tuning gains are significant somewhere.
    gains = [s.best().speedup_over_flat for s in sweeps.values()]
    assert max(gains) > 2.0
