"""Benchmark-suite fixtures.

One session-scoped :class:`~repro.harness.runner.Runner` is shared by all
benchmark targets so common simulation runs (flat / baseline-dp / spawn per
benchmark) are performed once; each figure then reports its own rows.

Run with ``pytest benchmarks/ --benchmark-only -s`` to see the regenerated
tables alongside the timing report.
"""

import pytest

from repro.harness.runner import Runner


@pytest.fixture(scope="session")
def runner() -> Runner:
    return Runner()


def report(result) -> None:
    """Print a reproduced table (visible with -s / captured otherwise)."""
    print()
    print(result.table())


def once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1, warmup_rounds=0)
