"""Ablation benches for the design choices called out in DESIGN.md.

Each ablation perturbs one component of the system and reports how the
headline behaviour moves — these are the knobs a hardware designer would
sweep before committing to SPAWN's specific constants.
"""

import pytest

from benchmarks.conftest import once
from repro.core.policies import (
    AlwaysLaunchPolicy,
    FreeLaunchPolicy,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.harness.report import format_table
from repro.sim.config import GPUConfig, LaunchOverheadConfig
from repro.sim.engine import GPUSimulator
from repro.workloads import get_benchmark

BENCH = "BFS-graph500"


def simulate(policy, config=None, **kwargs):
    app = get_benchmark(BENCH).dp(1)
    sim = GPUSimulator(config=config or GPUConfig(), policy=policy, **kwargs)
    return sim.run(app)


def test_ablation_policy_spectrum(benchmark):
    """SPAWN vs the trivial policies it subsumes (always/never/static)."""

    def run():
        rows = []
        for policy in (
            AlwaysLaunchPolicy(),
            NeverLaunchPolicy(),
            StaticThresholdPolicy(256),
            SpawnPolicy(),
            FreeLaunchPolicy(16),
        ):
            result = simulate(policy)
            rows.append(
                (
                    policy.name,
                    int(result.makespan),
                    result.stats.child_kernels_launched,
                )
            )
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(["policy", "makespan", "kernels"], rows,
                       title=f"ablation: launch policy spectrum ({BENCH})"))
    makespans = {name: m for name, m, _ in rows}
    # SPAWN must beat both trivial extremes on this benchmark.
    assert makespans["spawn"] < makespans["always-launch"]
    assert makespans["spawn"] < makespans["never-launch"]


def test_ablation_metric_window(benchmark):
    """Sensitivity to the n_con averaging window (paper: 1024 cycles)."""

    def run():
        rows = []
        for window in (256, 1024, 4096):
            config = GPUConfig(metric_window_cycles=window)
            result = simulate(SpawnPolicy(), config=config)
            rows.append((window, int(result.makespan),
                         result.stats.child_kernels_launched))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(["window", "makespan", "kernels"], rows,
                       title=f"ablation: metric window ({BENCH})"))
    makespans = [m for _, m, _ in rows]
    # The mechanism should be robust to the window size (same order).
    assert max(makespans) < 3 * min(makespans)


def test_ablation_launch_overhead_constants(benchmark):
    """Scaling the measured A/b constants moves Baseline-DP as expected."""

    def run():
        rows = []
        for scale in (0.5, 1.0, 2.0):
            config = GPUConfig(
                launch=LaunchOverheadConfig(
                    slope_cycles=int(1721 * scale),
                    base_cycles=int(20210 * scale),
                )
            )
            result = simulate(AlwaysLaunchPolicy(), config=config)
            rows.append((scale, int(result.makespan)))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(["overhead scale", "makespan"], rows,
                       title=f"ablation: launch overhead constants ({BENCH})"))
    makespans = [m for _, m in rows]
    # Baseline-DP is launch-overhead sensitive: monotone in the constants.
    assert makespans[0] <= makespans[1] <= makespans[2]


def test_ablation_ccqs_queue_cap(benchmark):
    """The CCQS bound (paper: 65,536) only binds when tiny."""

    def run():
        rows = []
        for cap in (64, 4096, 65536):
            result = simulate(SpawnPolicy(max_queue_size=cap))
            rows.append((cap, int(result.makespan),
                         result.stats.child_kernels_launched))
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(["queue cap", "makespan", "kernels"], rows,
                       title=f"ablation: CCQS queue cap ({BENCH})"))
    kernels = {cap: k for cap, _, k in rows}
    assert kernels[64] <= kernels[65536]


def test_ablation_latency_hiding(benchmark):
    """The inter-warp latency-hiding factor shifts absolute time, not order."""

    def run():
        rows = []
        for hiding in (0.2, 0.35, 0.7):
            always = simulate(AlwaysLaunchPolicy(), latency_hiding=hiding)
            spawn = simulate(SpawnPolicy(), latency_hiding=hiding)
            rows.append(
                (hiding, int(always.makespan), int(spawn.makespan))
            )
        return rows

    rows = once(benchmark, run)
    print()
    print(format_table(["latency hiding", "always-launch", "spawn"], rows,
                       title=f"ablation: latency hiding factor ({BENCH})"))
    # SPAWN's win over always-launch is robust across the factor.
    for _, always, spawn in rows:
        assert spawn < always * 1.1
