"""Fig. 6: CTA concurrency / utilization timeline, BFS-graph500 Baseline-DP."""

from benchmarks.conftest import once, report
from repro.experiments import fig06_concurrency


def test_fig06_concurrency(benchmark, runner):
    result = once(benchmark, lambda: fig06_concurrency.run(runner))
    report(result)
    trace = result.extras["trace"]
    limit = runner.config.max_concurrent_ctas
    assert all(s.total_ctas <= limit for s in trace)
    # Phases: a parent-only prologue, then child CTAs appear.
    assert trace[0].child_ctas == 0
    assert any(s.child_ctas > 0 for s in trace)
    # The child-dominated tail has lower utilization than the mixed phase
    # (lightweight children underuse the SMXs) - the paper's key picture.
    peak_util = max(s.utilization for s in trace)
    tail = [s.utilization for s in trace[-max(3, len(trace) // 10):]]
    assert min(tail) < peak_util
