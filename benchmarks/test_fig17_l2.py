"""Fig. 17: L2 hit rates under the three schemes."""

from benchmarks.conftest import once, report
from repro.experiments import fig17_l2


def test_fig17_l2(benchmark, runner):
    result = once(benchmark, lambda: fig17_l2.run(runner))
    report(result)
    # The paper reports ~+10 points over Baseline-DP; our substitution keeps
    # SPAWN within a few points of Baseline-DP (see EXPERIMENTS.md for the
    # documented deviation on the graph inputs).
    delta = float(result.notes.split(":")[1].strip().split(" ")[0])
    assert delta > -6.0
