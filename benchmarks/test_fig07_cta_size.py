"""Fig. 7: sensitivity to child CTA dimensions (64/128/256 vs 32)."""

from benchmarks.conftest import once, report
from repro.experiments import fig07_cta_size


def test_fig07_cta_size(benchmark, runner):
    result = once(benchmark, lambda: fig07_cta_size.run(runner))
    report(result)
    assert len(result.rows) == 13
    # Paper: only certain applications are sensitive; most sit near 1.0.
    near_one = sum(
        1 for row in result.rows if all(0.5 <= v <= 2.0 for v in row[1:])
    )
    assert near_one >= 7
