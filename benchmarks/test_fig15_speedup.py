"""Fig. 15: the headline speedups (Baseline-DP / Offline-Search / SPAWN).

Shape assertions mirror the paper's three observations in Section V-B:
SPAWN tracks Offline-Search, beats Baseline-DP on average, and beats the
flat implementation on average.
"""

from benchmarks.conftest import once, report
from repro.experiments import fig15_speedup


def test_fig15_speedup(benchmark, runner):
    result = once(benchmark, lambda: fig15_speedup.run(runner))
    report(result)
    means = result.extras["geomeans"]

    # SPAWN significantly outperforms Baseline-DP on average (paper: 1.57x).
    assert means["spawn"] / means["baseline-dp"] > 1.15

    # SPAWN outperforms the flat implementation on average (paper: 1.69x).
    assert means["spawn"] > 1.0

    # Offline-Search is the (near-)upper bound; SPAWN does not exceed it by
    # much (it can edge it out on a few benchmarks - paper observation 2).
    assert means["spawn"] <= means["offline"] * 1.05

    # Per-benchmark: SSSP-graph500 is the paper's known SPAWN weak spot
    # (bootstrap launches everything before metrics converge).
    per = result.row_dict()
    assert per["SSSP-graph500"][3] <= per["SSSP-graph500"][2]
