"""Fig. 19: Baseline-DP vs SPAWN concurrency timelines (BFS-graph500)."""

from benchmarks.conftest import once, report
from repro.experiments import fig19_timeline


def test_fig19_timeline(benchmark, runner):
    result = once(benchmark, lambda: fig19_timeline.run(runner))
    report(result)
    traces = result.extras["traces"]
    base_trace, base_result = traces["baseline-dp"]
    spawn_trace, spawn_result = traces["spawn"]
    # SPAWN finishes earlier (the paper: 1600k vs 2400k cycles).
    assert spawn_result.makespan < base_result.makespan
    # Under SPAWN, parent CTAs remain resident deeper into the run
    # (relative to each run's own length).
    def parent_active_fraction(trace, makespan):
        last = max((s.time for s in trace if s.parent_ctas > 0), default=0.0)
        return last / makespan

    assert parent_active_fraction(spawn_trace, spawn_result.makespan) >= (
        parent_active_fraction(base_trace, base_result.makespan) - 0.05
    )
