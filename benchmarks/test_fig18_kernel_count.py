"""Fig. 18: number of child kernels launched under the three schemes."""

from benchmarks.conftest import once, report
from repro.experiments import fig18_kernel_count


def test_fig18_kernel_count(benchmark, runner):
    result = once(benchmark, lambda: fig18_kernel_count.run(runner))
    report(result)
    # SPAWN reduces the launched-kernel count substantially (paper: 73%).
    reduction = float(result.notes.split(":")[1].strip().split("%")[0])
    assert reduction > 30.0
    # And never launches more than Baseline-DP.
    for name, base, offline, spawn in result.rows:
        assert spawn <= base
