"""Fig. 16: SMX occupancy under the three schemes."""

from benchmarks.conftest import once, report
from repro.experiments import fig16_occupancy


def test_fig16_occupancy(benchmark, runner):
    result = once(benchmark, lambda: fig16_occupancy.run(runner))
    report(result)
    # SPAWN improves occupancy over Baseline-DP on average (paper: 1.96x).
    assert "x (paper: 1.96x)" in result.notes
    factor = float(result.notes.split(":")[1].strip().split("x")[0])
    assert factor > 1.2
