"""Fig. 12: child-CTA execution-time distribution tightness."""

from benchmarks.conftest import once, report
from repro.experiments import fig12_cta_time_pdf


def test_fig12_cta_time_pdf(benchmark, runner):
    result = once(benchmark, lambda: fig12_cta_time_pdf.run(runner))
    report(result)
    # The SPAWN accuracy argument: execution times cluster around the mean.
    # In our simulator the clustering is looser than the paper's hardware
    # measurement (processor-sharing contention varies across run phases);
    # EXPERIMENTS.md records the deviation.
    tightest = 0.0
    for row in result.rows:
        name, count, mean, within10, within20 = row
        assert count > 0
        assert float(within20.rstrip("%")) >= 15.0
        tightest = max(tightest, float(within10.rstrip("%")))
    assert tightest >= 80.0  # at least one benchmark shows the tight regime
