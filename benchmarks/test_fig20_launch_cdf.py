"""Fig. 20: cumulative child-kernel launches over time (BFS-graph500)."""

from benchmarks.conftest import once, report
from repro.experiments import fig20_launch_cdf


def test_fig20_launch_cdf(benchmark, runner):
    result = once(benchmark, lambda: fig20_launch_cdf.run(runner))
    report(result)
    cdfs = result.extras["cdfs"]
    base = cdfs["baseline-dp"]
    spawn = cdfs["spawn"]
    # SPAWN launches far fewer kernels in total...
    assert spawn[-1][1] < base[-1][1] * 0.7
    # ...and its launch-count curve stays below the baseline's throughout.
    import bisect

    base_times = [t for t, _ in base]
    for t, count in spawn:
        idx = bisect.bisect_right(base_times, t)
        base_count = base[idx - 1][1] if idx else 0
        assert count <= base_count + 1
