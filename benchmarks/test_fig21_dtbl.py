"""Fig. 21: SPAWN vs DTBL on SA / MM / SSSP.

Paper pattern: SPAWN wins where the CTA-concurrency limit binds (SA),
roughly ties on MM, and DTBL wins where per-kernel launch overhead binds
(SSSP's many small child kernels).

At this reproduction's (smaller) workload scale the per-kernel launch
overhead is a relatively larger share of every run, so DTBL — which by
construction eliminates exactly that cost — wins across the board; the
SSSP direction (DTBL >= SPAWN) and DTBL's largest margins landing on the
launch-overhead-bound benchmarks are preserved.  EXPERIMENTS.md records
the SA crossover as a non-reproduced shape and why.
"""

from benchmarks.conftest import once, report
from repro.experiments import fig21_dtbl


def test_fig21_dtbl(benchmark, runner):
    result = once(benchmark, lambda: fig21_dtbl.run(runner))
    report(result)
    rows = {row[1]: row for row in result.rows}

    # DTBL eliminates launch overhead, so it must beat SPAWN on SSSP
    # (launch-overhead-bound: many small child kernels) - paper shape.
    for name in ("SSSP-citation", "SSSP-graph500"):
        _, _, spawn, dtbl = rows[name]
        assert dtbl >= spawn * 0.95

    # Both mechanisms must beat flat on the imbalance-heavy benchmarks.
    for name in ("MM-small", "MM-large", "SA-thaliana"):
        _, _, spawn, dtbl = rows[name]
        assert spawn > 1.0
        assert dtbl > 1.0
