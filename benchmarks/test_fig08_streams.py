"""Fig. 8: per-child-kernel SWQ vs per-parent-CTA SWQ."""

from benchmarks.conftest import once, report
from repro.experiments import fig08_streams
from repro.harness.runner import geometric_mean


def test_fig08_streams(benchmark, runner):
    result = once(benchmark, lambda: fig08_streams.run(runner))
    report(result)
    speedups = [row[1] for row in result.rows]
    # The paper: assigning each child a unique SWQ id always performs better
    # (or equal); on average it must win.
    assert geometric_mean(speedups) >= 1.0
    assert max(speedups) > 1.05
