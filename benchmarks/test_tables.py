"""Regenerate Table I (benchmark inventory) and Table II (GPU config)."""

from benchmarks.conftest import once, report
from repro.experiments import tables


def test_table1_benchmarks(benchmark, runner):
    result = once(benchmark, lambda: tables.run_table1(runner))
    report(result)
    assert len(result.rows) == 13


def test_table2_config(benchmark, runner):
    result = once(benchmark, lambda: tables.run_table2(runner))
    report(result)
    text = result.table()
    assert "1721" in text and "20210" in text
