"""Discrete-event core used by the GPU simulator.

A tiny binary-heap event queue with stable FIFO ordering among same-time
events and O(1) lazy cancellation.  The simulator advances a cycle-valued
clock from event to event; there is no per-cycle stepping anywhere in the
system, which is what keeps a Python reproduction of a multi-million-cycle
GPU run tractable.

Implementation notes (hot path):

* Heap entries are ``(time, seq, event)`` tuples so ordering is resolved by
  C-level tuple comparison instead of a Python ``__lt__`` call per sift.
* Cancellation is lazy (the entry stays in the heap, marked dead), but the
  queue keeps a live-event counter so ``len(queue)`` is O(1), and compacts
  the heap whenever cancelled entries outnumber live ones — long runs that
  cancel and reschedule per-SMX timers millions of times cannot bloat the
  heap beyond 2x its live size.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError

#: Below this heap size compaction is not worth the rebuild.
_COMPACT_MIN = 64


class Event:
    """A scheduled callback.  ``cancel()`` marks it dead in O(1)."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_queue")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self._queue: Optional["EventQueue"] = None

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                queue._note_cancelled()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Event]] = []
        self._next_seq = 0
        self._cancelled = 0  # dead entries still sitting in the heap
        self.now: float = 0.0

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    def schedule(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback)
        event._queue = self
        heapq.heappush(self._heap, (time, seq, event))
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    def _note_cancelled(self) -> None:
        """A scheduled event was cancelled; compact if mostly dead."""
        self._cancelled += 1
        heap = self._heap
        if len(heap) >= _COMPACT_MIN and self._cancelled * 2 > len(heap):
            live = [entry for entry in heap if not entry[2].cancelled]
            heapq.heapify(live)
            self._heap = live
            self._cancelled = 0

    def pop(self) -> Optional[Event]:
        """Pop the next live event, advancing the clock; None if drained.

        The live-count check is hoisted above any heap access: a drained
        queue (empty, or holding only cancelled stragglers below the
        compaction threshold) answers from the counters alone, with zero
        heap ops — this is the engine's once-per-run exit test and every
        idle-queue poll.
        """
        heap = self._heap
        if len(heap) == self._cancelled:  # no live events
            return None
        while True:
            time, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = time
            return event

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        heap = self._heap
        if len(heap) == self._cancelled:  # no live events: zero heap ops
            return None
        while heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0]

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue, running callbacks; returns events executed."""
        executed = 0
        pop = self.pop
        while True:
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {executed} events "
                    "(likely a livelock in the simulated system)"
                )
            event = pop()
            if event is None:
                return executed
            event.callback()
            executed += 1
