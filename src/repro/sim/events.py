"""Discrete-event core used by the GPU simulator.

A tiny binary-heap event queue with stable FIFO ordering among same-time
events and O(1) lazy cancellation.  The simulator advances a cycle-valued
clock from event to event; there is no per-cycle stepping anywhere in the
system, which is what keeps a Python reproduction of a multi-million-cycle
GPU run tractable.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Optional

from repro.errors import SimulationError


class Event:
    """A scheduled callback.  ``cancel()`` marks it dead in O(1)."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(t={self.time}, seq={self.seq}, {state})"


class EventQueue:
    """Min-heap of :class:`Event` ordered by (time, insertion order)."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self.now: float = 0.0

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def schedule(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        event = Event(time, next(self._counter), callback)
        heapq.heappush(self._heap, event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` after ``delay`` cycles."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    def pop(self) -> Optional[Event]:
        """Pop the next live event, advancing the clock; None if drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            return event
        return None

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue, running callbacks; returns events executed."""
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {executed} events "
                    "(likely a livelock in the simulated system)"
                )
            event = self.pop()
            if event is None:
                return executed
            event.callback()
            executed += 1
