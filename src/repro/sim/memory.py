"""Memory-system model: a shared set-associative L2 in front of DRAM.

The paper's Fig. 17 attributes part of SPAWN's win to cache behaviour: when
child kernels execute long after the parent threads that spawned them, the
parent->child temporal locality is lost, and a storm of concurrent child
kernels thrashes the L2.  To expose those effects we model the L2 as a real
set-associative LRU cache and stream every CTA's line-granularity footprint
through it *in dispatch order* — so delay and interleaving directly translate
into extra misses.

Below the L2 sits DRAM: fixed-latency by default (per-access stall cycles
derived from the observed hit rate via
:meth:`repro.sim.config.MemoryConfig.stall_cycles`, divided by an MLP
factor), optionally with the bandwidth-congestion model of
:mod:`repro.sim.dram`.  Per-SMX L1 D-caches (Table II) are built when
``MemoryConfig.l1_enabled`` is set.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigError
from repro.sim.config import CacheConfig, MemoryConfig
from repro.sim.dram import DramBandwidthModel

#: (base_address_bytes, extent_bytes) — one contiguous region touched by a thread.
Region = Tuple[int, int]


class SetAssociativeCache:
    """LRU set-associative cache operating on line addresses."""

    __slots__ = ("config", "num_sets", "associativity", "line_bytes", "_sets",
                 "hits", "misses")

    def __init__(self, config: CacheConfig):
        self.config = config
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        self.line_bytes = config.line_bytes
        # Each set is an insertion-ordered dict of tags, most-recently-used
        # last — dict lookup/delete makes every access O(1) instead of the
        # O(associativity) list scan (this is the simulator's hottest loop).
        self._sets: List[Dict[int, None]] = [{} for _ in range(self.num_sets)]
        self.hits = 0
        self.misses = 0

    def reset_counters(self) -> None:
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Invalidate all lines (counters are preserved)."""
        self._sets = [{} for _ in range(self.num_sets)]

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        total = self.accesses
        return self.hits / total if total else 0.0

    def line_of(self, address: int) -> int:
        return address // self.line_bytes

    def access_line(self, line: int) -> bool:
        """Access one cache line; returns True on hit."""
        ways = self._sets[line % self.num_sets]
        if ways.pop(line, None) is not None:
            self.hits += 1
            ways[line] = True  # re-insert at MRU position
            return True
        self.misses += 1
        if len(ways) >= self.associativity:
            del ways[next(iter(ways))]  # evict LRU (oldest insertion)
        ways[line] = True
        return False

    def access_lines(self, lines: Iterable[int]) -> Tuple[int, int]:
        """Access a stream of lines; returns (hits, misses) for the stream."""
        hits = 0
        total = 0
        sets = self._sets
        num_sets = self.num_sets
        associativity = self.associativity
        for line in lines:
            total += 1
            ways = sets[line % num_sets]
            if ways.pop(line, None) is not None:
                hits += 1
                ways[line] = True
            else:
                if len(ways) >= associativity:
                    del ways[next(iter(ways))]
                ways[line] = True
        self.hits += hits
        self.misses += total - hits
        return hits, total - hits

    def contains_line(self, line: int) -> bool:
        """Non-mutating lookup (no LRU update, no counter update)."""
        return line in self._sets[line % self.num_sets]


class MemorySystem:
    """The shared L2 (plus optional per-SMX L1s) and the stall-time model."""

    #: Cache implementation; overridable so :mod:`repro.check` can swap in
    #: a naive reference LRU for differential validation.
    cache_cls = SetAssociativeCache

    def __init__(
        self,
        config: MemoryConfig,
        *,
        max_lines_per_cta: int = 4096,
        num_smx: int = 0,
    ):
        if max_lines_per_cta <= 0:
            raise ConfigError("max_lines_per_cta must be positive")
        self.config = config
        self.l2 = self.cache_cls(config.l2)
        self.l1s: List[SetAssociativeCache] = []
        if config.l1_enabled:
            if num_smx <= 0:
                raise ConfigError("l1_enabled requires num_smx > 0")
            self.l1s = [self.cache_cls(config.l1) for _ in range(num_smx)]
        self.dram = None
        if config.dram_peak_lines_per_cycle is not None:
            self.dram = DramBandwidthModel(
                config.dram_peak_lines_per_cycle, config.dram_window_cycles
            )
        self.max_lines_per_cta = max_lines_per_cta

    def region_lines(self, regions: Sequence[Region]) -> List[int]:
        """Line-granularity footprint of a CTA, in thread order.

        Consecutive duplicate lines (a warp walking within one line) are
        collapsed, mirroring intra-warp coalescing.  If the stream exceeds
        ``max_lines_per_cta`` it is stride-sampled — a heavyweight serial
        parent thread still exerts proportional cache pressure without
        dominating simulation cost.
        """
        line_bytes = self.l2.line_bytes
        lines: List[int] = []
        previous = -1
        for base, extent in regions:
            if extent <= 0:
                continue
            first = base // line_bytes
            last = (base + extent - 1) // line_bytes
            for line in range(first, last + 1):
                if line != previous:
                    lines.append(line)
                    previous = line
        if len(lines) > self.max_lines_per_cta:
            step = len(lines) / self.max_lines_per_cta
            lines = [lines[int(i * step)] for i in range(self.max_lines_per_cta)]
        return lines

    def region_lines_arrays(
        self, bases: np.ndarray, extents: np.ndarray
    ) -> List[int]:
        """Vectorized :meth:`region_lines` for per-thread region arrays."""
        mask = extents > 0
        if not mask.all():
            bases = bases[mask]
            extents = extents[mask]
        if bases.size == 0:
            return []
        line_bytes = self.l2.line_bytes
        first = bases // line_bytes
        last = (bases + extents - 1) // line_bytes
        counts = (last - first + 1).astype(np.int64)
        total = int(counts.sum())
        # Expand [first_i .. last_i] ranges: repeat each first, then add a
        # per-region ramp built from a global arange minus segment offsets.
        starts = np.zeros(counts.size, dtype=np.int64)
        np.cumsum(counts[:-1], out=starts[1:])
        ramp = np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
        lines = np.repeat(first, counts) + ramp
        # Collapse consecutive duplicates (intra-warp coalescing).
        if lines.size > 1:
            keep = np.empty(lines.size, dtype=bool)
            keep[0] = True
            np.not_equal(lines[1:], lines[:-1], out=keep[1:])
            lines = lines[keep]
        result = lines.tolist()
        if len(result) > self.max_lines_per_cta:
            step = len(result) / self.max_lines_per_cta
            result = [result[int(i * step)] for i in range(self.max_lines_per_cta)]
        return result

    def access_cta_arrays(
        self, bases: np.ndarray, extents: np.ndarray
    ) -> Tuple[int, int, float]:
        """Array-based :meth:`access_cta`."""
        lines = self.region_lines_arrays(bases, extents)
        if not lines:
            return 0, 0, 1.0
        hits, misses = self.l2.access_lines(lines)
        return hits, misses, hits / (hits + misses)

    def access_cta(self, regions: Sequence[Region]) -> Tuple[int, int, float]:
        """Stream a CTA's footprint through the L2.

        Returns ``(hits, misses, hit_rate)`` for this CTA's stream; the
        hit rate feeds the CTA's per-access stall time.
        """
        lines = self.region_lines(regions)
        if not lines:
            return 0, 0, 1.0
        hits, misses = self.l2.access_lines(lines)
        return hits, misses, hits / (hits + misses)

    def stall_cycles(self, hit_rate: float) -> float:
        return self.config.stall_cycles(hit_rate)

    # ------------------------------------------------------------------
    # Combined access + stall (the engine's entry points)
    # ------------------------------------------------------------------
    def cta_access(
        self, regions: Sequence[Region], smx_index: int = -1, now: float = 0.0
    ) -> Tuple[float, float]:
        """Stream a CTA's footprint; returns (stall per access, L2 hit rate).

        With L1s enabled and a valid ``smx_index``, lines first probe that
        SMX's L1; only L1 misses reach the shared L2 (so the reported L2
        hit rate is over L1 misses, as hardware counters report it).
        """
        return self._access_lines(self.region_lines(regions), smx_index, now)

    def cta_access_arrays(
        self, bases, extents, smx_index: int = -1, now: float = 0.0
    ) -> Tuple[float, float]:
        """Array-based :meth:`cta_access`."""
        return self._access_lines(
            self.region_lines_arrays(bases, extents), smx_index, now
        )

    def _access_lines(
        self, lines: List[int], smx_index: int, now: float = 0.0
    ) -> Tuple[float, float]:
        if not lines:
            return self.config.stall_cycles(1.0), 1.0
        if self.l1s and 0 <= smx_index < len(self.l1s):
            l1 = self.l1s[smx_index]
            l1_hits = 0
            l2_lines = []
            for line in lines:
                if l1.access_line(line):
                    l1_hits += 1
                else:
                    l2_lines.append(line)
            l1_rate = l1_hits / len(lines)
            if l2_lines:
                h2, m2 = self.l2.access_lines(l2_lines)
                l2_rate = h2 / (h2 + m2)
                dram_factor = self._dram_factor(now, m2)
            else:
                l2_rate = 1.0
                dram_factor = 1.0
            return (
                self.config.stall_cycles_two_level(l1_rate, l2_rate, dram_factor),
                l2_rate,
            )
        hits, misses = self.l2.access_lines(lines)
        rate = hits / (hits + misses)
        dram_factor = self._dram_factor(now, misses)
        return self.config.stall_cycles(rate, dram_factor), rate

    def _dram_factor(self, now: float, misses: int) -> float:
        if self.dram is None:
            return 1.0
        return self.dram.record(now, misses)

    @property
    def hit_rate(self) -> float:
        return self.l2.hit_rate

    @property
    def l1_hit_rate(self) -> float:
        hits = sum(c.hits for c in self.l1s)
        total = sum(c.accesses for c in self.l1s)
        return hits / total if total else 0.0
