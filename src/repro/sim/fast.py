"""Batch-stepping engine core, certified bit-identical to the default.

``repro.sim.fast`` plugs an alternative set of components into the
factory seams on :class:`~repro.sim.engine.GPUSimulator`
(``queue_factory`` / ``smx_factory`` / ``gmu_factory`` /
``memory_factory`` — the same seams :mod:`repro.check.reference` uses for
its deliberately naive differential implementations, pointed the other
way):

* :class:`FastEventQueue` — a bucketed calendar queue.  Events are kept
  in per-timestamp buckets (appended in ``seq`` order) plus a heap of
  the distinct timestamps, so the whole same-time batch is drained in
  one O(bucket) sweep instead of one ``heappop`` per event, and
  ``schedule`` is an O(1) dict append in the common case.
* :class:`FastSMX` — resident-CTA progress state (consumed cycles,
  critical-path totals, next decision/completion horizons) lives in
  parallel arrays detached from the CTA objects; the horizon min is
  cached so the reschedule-after-every-placement pattern costs O(1) per
  placement instead of O(residents), and a pending-decision counter
  gives O(1) rejection for the per-event scans.  (The arrays are plain
  lists, not numpy: at <=16 residents per SMX, ufunc dispatch overhead
  made every per-event numpy op slower than its list form — see the
  class docstring and DESIGN §13 for the measurements.)
* :class:`FastGMU` — maintains a count of dispatchable head kernels so
  the dispatch loop's round-robin scan is skipped entirely when nothing
  can dispatch (the dominant case in steady state).
* :class:`FastMemorySystem` — the single-region footprint path (every
  child CTA, every serial fallback) feeds the L2 a ``range`` instead of
  materializing the line list.
* :class:`FastSimulator` — selects the components above and overrides
  the hottest engine paths (CTA dispatch, SMX search, child-spec
  materialization) with per-spec caching.

**The ordering contract.**  Event *ordering* is the bit-identity hazard:
the certified property is that the fast core executes callbacks in
exactly the reference (time, seq) total order.  Batch-draining a
timestamp bucket is safe because ``seq`` is globally monotonic — any
event scheduled *during* the batch (at the same timestamp) gets a seq
greater than every drained event, lands in a fresh bucket for that
timestamp, and is drained next, exactly where the reference heap would
have delivered it.  What is *not* safe is changing which seq an event
gets: deferring the cancel/reschedule churn (tried and reverted in an
earlier optimization pass) renumbers the surviving events and reorders
same-time ties.  The fast core therefore schedules and cancels exactly
when the reference engine does, and every arithmetic statement on the
simulated timeline is kept operation-for-operation identical (numpy
float64 elementwise ops match Python float scalar ops bit-for-bit when
the per-element operation order is the same).

Certification: ``repro check --engine fast`` replays the committed
golden-trace corpus through :class:`FastSimulator` and diffs canonical
event streams; the differential and hypothesis property tests assert
bit-identical stats and traces against the default engine.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from functools import partial
from typing import Callable, Dict, Iterator, List, Optional, Tuple

import numpy as np

from repro.errors import ConfigError, SimulationError
from repro.obs.tracer import KERNEL_FIRST_DISPATCH, NULL_TRACER, Tracer
from repro.sim.config import WARP_SIZE, GPUConfig
from repro.sim.engine import GPUSimulator
from repro.sim.events import _COMPACT_MIN, Event, EventQueue
from repro.sim.gmu import GMU
from repro.sim.instances import (
    EPSILON,
    CTAInstance,
    CTAState,
    KernelInstance,
    KernelState,
    PendingDecision,
)
from repro.sim.kernel import ChildRequest, KernelSpec
from repro.sim.memory import MemorySystem
from repro.sim.smx import SMX


class FastEventQueue(EventQueue):
    """Calendar/bucket event queue draining whole same-time batches.

    Events scheduled for the same timestamp share one bucket (appended
    in ``seq`` order, which *is* arrival order because ``seq`` is
    monotonic); a heap orders the distinct timestamps.  ``pop`` drains
    the earliest bucket once and then serves its events in O(1), so a
    burst of same-time events costs one heap operation total.

    Drained events are detached from the queue (``_queue = None``):
    cancelling one after the drain no longer perturbs the dead-entry
    counter, and the cancellation is honoured at delivery time instead —
    observably identical to the reference heap, where the entry would
    still be sitting in the heap and be skipped on pop.
    """

    def __init__(self) -> None:
        self._buckets: Dict[float, List[Event]] = {}
        self._times: List[float] = []
        self._size = 0  # events currently held in buckets (incl. cancelled)
        self._next_seq = 0
        self._cancelled = 0  # dead entries still sitting in buckets
        self.now: float = 0.0
        # The drained-but-undelivered remainder of the current batch.
        self._pending: List[Event] = []
        self._pending_pos = 0

    def __len__(self) -> int:
        n = self._size - self._cancelled
        pending = self._pending
        for i in range(self._pending_pos, len(pending)):
            if not pending[i].cancelled:
                n += 1
        return n

    def schedule(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        seq = self._next_seq
        self._next_seq = seq + 1
        event = Event(time, seq, callback)
        event._queue = self
        bucket = self._buckets.get(time)
        if bucket is None:
            self._buckets[time] = [event]
            heapq.heappush(self._times, time)
        else:
            bucket.append(event)
        self._size += 1
        return event

    def _note_cancelled(self) -> None:
        """A scheduled event was cancelled; compact if mostly dead."""
        self._cancelled += 1
        if self._size >= _COMPACT_MIN and self._cancelled * 2 > self._size:
            buckets: Dict[float, List[Event]] = {}
            size = 0
            for time, bucket in self._buckets.items():
                live = [e for e in bucket if not e.cancelled]
                if live:
                    buckets[time] = live
                    size += len(live)
            self._buckets = buckets
            # A sorted list is a valid binary min-heap.
            self._times = sorted(buckets)
            self._size = size
            self._cancelled = 0

    def _drain_batch(self) -> Optional[List[Event]]:
        """Detach and return all live events at the earliest timestamp."""
        times = self._times
        buckets = self._buckets
        while times:
            time = heapq.heappop(times)
            bucket = buckets.pop(time)
            self._size -= len(bucket)
            batch: Optional[List[Event]] = None
            for event in bucket:
                event._queue = None
                if event.cancelled:
                    self._cancelled -= 1
                elif batch is None:
                    batch = [event]
                else:
                    batch.append(event)
            if batch is not None:
                self.now = time
                return batch
        return None

    def pop(self) -> Optional[Event]:
        """Pop the next live event, advancing the clock; None if drained."""
        pending = self._pending
        i = self._pending_pos
        n = len(pending)
        while i < n:
            event = pending[i]
            i += 1
            if not event.cancelled:
                self._pending_pos = i
                return event
        if n:
            self._pending = []
        self._pending_pos = 0
        batch = self._drain_batch()
        if batch is None:
            return None
        self._pending = batch
        self._pending_pos = 1
        return batch[0]

    def pop_batch(self) -> Optional[List[Event]]:
        """All live events sharing the next timestamp, advancing the clock.

        Callers must re-check ``event.cancelled`` before executing each
        event: a callback earlier in the batch may cancel a later one.
        """
        first = self.pop()
        if first is None:
            return None
        batch = [first]
        pending = self._pending
        for i in range(self._pending_pos, len(pending)):
            event = pending[i]
            if not event.cancelled:
                batch.append(event)
        self._pending = []
        self._pending_pos = 0
        return batch

    def peek_time(self) -> Optional[float]:
        """Time of the next live event without popping it."""
        pending = self._pending
        for i in range(self._pending_pos, len(pending)):
            if not pending[i].cancelled:
                return self.now
        times = self._times
        buckets = self._buckets
        while times:
            time = times[0]
            bucket = buckets[time]
            for event in bucket:
                if not event.cancelled:
                    return time
            heapq.heappop(times)
            del buckets[time]
            self._size -= len(bucket)
            self._cancelled -= len(bucket)
            for event in bucket:
                event._queue = None
        return None

    def run(self, max_events: Optional[int] = None) -> int:
        """Drain the queue batch-wise, running callbacks; returns count.

        Execution order and the budget-exhaustion check are identical to
        :meth:`EventQueue.run`; cancellations that land after an event
        was drained are honoured at delivery time.
        """
        executed = 0
        pending = self._pending
        pos = self._pending_pos
        if pos < len(pending):
            # Remainder left by an external pop() before run() was called.
            batch: Optional[List[Event]] = pending[pos:]
            self._pending = []
            self._pending_pos = 0
        else:
            batch = self._drain_batch()
        drain = self._drain_batch
        unlimited = max_events is None
        while batch is not None:
            for event in batch:
                if event.cancelled:
                    continue
                if not unlimited and executed >= max_events:
                    raise SimulationError(
                        f"event budget exhausted after {executed} events "
                        "(likely a livelock in the simulated system)"
                    )
                event.callback()
                executed += 1
            batch = drain()
        if not unlimited and executed >= max_events:
            raise SimulationError(
                f"event budget exhausted after {executed} events "
                "(likely a livelock in the simulated system)"
            )
        return executed


class FastSMX(SMX):
    """SMX with resident-CTA progress state in parallel arrays.

    ``_consumed`` / ``_total`` / ``_target`` are row-aligned with
    ``resident``; they are authoritative for progress, and
    ``cta.consumed`` is written back only when the engine is about to
    act on the CTA (fired decisions, completion, removal).  Every
    arithmetic statement mirrors the scalar reference statement
    per-element, so the stored float64 values are bit-identical.

    The arrays are plain Python lists, deliberately: the original plan
    (and an earlier revision of this class) kept them as numpy float64
    arrays, but with residency capped at ``max_ctas_per_smx`` (16 in the
    paper's configuration) every per-event operation is a <=16-element
    op, and numpy's per-ufunc dispatch overhead made *each one* slower
    than the list form (measured ~1.7us vs ~0.7us for the bulk advance,
    ~2.2us vs ~1.2us for the horizon min; see DESIGN §13).  numpy stays
    where batches are real — the per-spec dispatch caches and child
    templates below.

    Beyond the layout, two structural wins over the reference SMX:

    * The event horizon ``min(next_target - consumed)`` is cached:
      placements at the same timestamp update it incrementally (``min``
      is order-independent, so the incremental value equals the full
      reduction bit-for-bit), turning the engine's
      reschedule-per-placement pattern from O(residents) into O(1).
    * ``_dec_count`` counts residents with a pending decision, giving
      O(1) rejection for the fired-decision scan (most events concern
      pure child CTAs, which never have decisions) and for the
      completion scan when every resident still has one.
    """

    __slots__ = ("_consumed", "_total", "_target", "_has_dec",
                 "_dec_count", "_slack", "_slack_valid")

    def __init__(self, index: int, config: GPUConfig):
        super().__init__(index, config)
        self._consumed: List[float] = []
        self._total: List[float] = []
        self._target: List[float] = []
        self._has_dec: List[bool] = []
        self._dec_count = 0  # residents with a pending decision
        self._slack = 0.0
        self._slack_valid = False

    # ------------------------------------------------------------------
    # Progress integration
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        last = self._last_update
        if now <= last:
            if now - last < -EPSILON:
                raise SimulationError(
                    f"SMX {self.index} asked to advance backwards "
                    f"({last} -> {now})"
                )
            return
        consumed = self._consumed
        if consumed:
            step = self.scale * (now - last)
            total = self._total
            for i in range(len(consumed)):
                c = consumed[i] + step
                t = total[i]
                consumed[i] = c if c < t else t
            self._slack_valid = False
        self._last_update = now

    def add(self, cta: CTAInstance, now: float) -> None:
        if not self.can_fit(threads=cta.num_threads, regs=cta.regs,
                            shmem=cta.shmem):
            raise SimulationError(f"CTA {cta!r} does not fit on SMX {self.index}")
        self.advance(now)
        cta.smx_index = self.index
        self.resident.append(cta)
        self._consumed.append(0.0)
        self._total.append(cta.total_work)
        self._target.append(cta.next_target)
        has_dec = cta.next_decision < len(cta.decisions)
        self._has_dec.append(has_dec)
        if has_dec:
            self._dec_count += 1
        self.used_threads += cta.num_threads
        self.used_regs += cta.regs
        self.used_shmem += cta.shmem
        self.used_warps += cta.num_warps
        self._total_demand += cta.demand
        if self._slack_valid:
            # New CTA's slack is next_target - 0.0; min() is
            # order-independent, so updating incrementally matches the
            # full reduction bit-for-bit.
            slack = cta.next_target
            if slack < self._slack:
                self._slack = slack

    def remove(self, cta: CTAInstance, now: float) -> None:
        self.advance(now)
        try:
            i = self.resident.index(cta)
        except ValueError:
            raise SimulationError(
                f"CTA {cta!r} not resident on SMX {self.index}"
            ) from None
        cta.consumed = self._consumed[i]
        if self._has_dec[i]:
            self._dec_count -= 1
        del self.resident[i]
        del self._consumed[i]
        del self._total[i]
        del self._target[i]
        del self._has_dec[i]
        self.used_threads -= cta.num_threads
        self.used_regs -= cta.regs
        self.used_shmem -= cta.shmem
        self.used_warps -= cta.num_warps
        self._total_demand -= cta.demand
        if self._total_demand < EPSILON:
            self._total_demand = 0.0
        cta.smx_index = -1
        self._slack_valid = False

    def refresh_demand(self, cta: CTAInstance, now: float) -> None:
        self.advance(now)
        old = cta.demand
        new = cta.refresh_demand()
        self._total_demand += new - old
        if self._total_demand < EPSILON:
            self._total_demand = 0.0
        i = self.resident.index(cta)
        self._total[i] = cta.total_work
        self._target[i] = cta.next_target
        has_dec = cta.next_decision < len(cta.decisions)
        if has_dec != self._has_dec[i]:
            self._dec_count += 1 if has_dec else -1
            self._has_dec[i] = has_dec
        self._slack_valid = False

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def next_event_time(self, now: float) -> Optional[float]:
        if not self.resident:
            return None
        self.advance(now)
        if self._slack_valid:
            slack = self._slack
        else:
            consumed = self._consumed
            target = self._target
            slack = min(
                target[i] - consumed[i] for i in range(len(consumed))
            )
            self._slack = slack
            self._slack_valid = True
        if slack <= 0.0:
            return now
        return now + slack / self.scale

    def ctas_with_fired_decisions(self) -> List[CTAInstance]:
        # O(1) rejection: most SMX events fire on CTAs with no pending
        # decision (pure children) — skip the scan entirely then.
        if self._dec_count == 0:
            return []
        resident = self.resident
        consumed = self._consumed
        fired = []
        for i in range(len(resident)):
            cta = resident[i]
            if (
                cta.next_decision < len(cta.decisions)
                and cta.next_target <= consumed[i] + EPSILON
            ):
                # Sync progress back: pop_fired_decisions thresholds on it.
                cta.consumed = consumed[i]
                fired.append(cta)
        return fired

    def pop_finished(self, now: float) -> List[CTAInstance]:
        self.advance(now)
        resident = self.resident
        n = len(resident)
        # A CTA with a pending decision is never compute_finished, so when
        # every resident still has one there is nothing to scan for.
        if n == 0 or self._dec_count == n:
            return []
        consumed = self._consumed
        total = self._total
        target = self._target
        finished: List[CTAInstance] = []
        rows: List[int] = []
        for i in range(n):
            cta = resident[i]
            if (
                consumed[i] >= total[i] - EPSILON
                and cta.next_decision >= len(cta.decisions)
            ):
                cta.consumed = consumed[i]
                finished.append(cta)
                rows.append(i)
        if not finished:
            return []
        # Compact row-by-row from the highest index so earlier row
        # numbers stay valid (C-level memmoves on plain lists).  Finished
        # CTAs never have a pending decision, so _dec_count is unchanged.
        has_dec = self._has_dec
        for j in range(len(rows) - 1, -1, -1):
            i = rows[j]
            del resident[i]
            del consumed[i]
            del total[i]
            del target[i]
            del has_dec[i]
        # Detach in resident order, subtracting demand sequentially with
        # the reference's per-step underflow clamp — float-identical to
        # calling remove() once per finished CTA.
        for cta in finished:
            self.used_threads -= cta.num_threads
            self.used_regs -= cta.regs
            self.used_shmem -= cta.shmem
            self.used_warps -= cta.num_warps
            self._total_demand -= cta.demand
            if self._total_demand < EPSILON:
                self._total_demand = 0.0
            cta.smx_index = -1
        self._slack_valid = False
        return finished


class FastGMU(GMU):
    """GMU with an O(1) short-circuit for fruitless dispatch scans.

    ``_dispatchable`` counts bound-stream heads in EXECUTING state that
    still have undispatched CTAs — exactly the set
    :meth:`GMU.dispatchable_kernels` yields.  The engine notifies the
    GMU when it consumes a head's last CTA index
    (:meth:`note_cta_taken`); heads enter the set only on the
    PENDING -> EXECUTING transition (every fresh head has all its CTAs
    left).  When the count is zero the round-robin scan — the hottest
    loop on scan-heavy workloads — is skipped without touching the
    cursor, which is also what the reference scan does when it yields
    nothing.
    """

    def __init__(
        self,
        config: GPUConfig,
        *,
        tracer: Tracer = NULL_TRACER,
        bind_policy: str = "fcfs",
        lifo_bind: bool = False,
        reverse_rr: bool = False,
        acs_unguarded: bool = False,
    ):
        super().__init__(
            config,
            tracer=tracer,
            bind_policy=bind_policy,
            lifo_bind=lifo_bind,
            reverse_rr=reverse_rr,
            acs_unguarded=acs_unguarded,
        )
        self._dispatchable = 0

    def _refresh_head(self, swq: int) -> None:
        queue = self._streams.get(swq)
        if queue and queue[0].state is KernelState.PENDING:
            head = queue[0]
            head.state = KernelState.EXECUTING
            if head.next_cta_index < head.num_ctas:
                self._dispatchable += 1

    def note_cta_taken(self, kernel: KernelInstance) -> None:
        """Engine hook: a CTA index was just consumed from ``kernel``."""
        if kernel.next_cta_index >= kernel.num_ctas:
            self._dispatchable -= 1

    def dispatchable_kernels(self) -> Iterator[KernelInstance]:
        if self._dispatchable <= 0:
            return iter(())
        return super().dispatchable_kernels()


class FastMemorySystem(MemorySystem):
    """Memory system with a materialization-free single-region path.

    The engine's footprint calls are overwhelmingly single-region (every
    contiguous child CTA, every serial fallback, every launch header);
    for those the line stream is a ``range`` handed straight to the L2
    instead of an appended list.  A lone region has no consecutive
    duplicates to collapse, and the stride-sampling formula indexes the
    arithmetic sequence directly, so the streamed lines are identical.
    """

    def cta_access(
        self, regions, smx_index: int = -1, now: float = 0.0
    ) -> Tuple[float, float]:
        if len(regions) == 1:
            base, extent = regions[0]
            if extent <= 0:
                lines = ()
            else:
                line_bytes = self.l2.line_bytes
                first = base // line_bytes
                last = (base + extent - 1) // line_bytes
                count = last - first + 1
                max_lines = self.max_lines_per_cta
                if count > max_lines:
                    step = count / max_lines
                    lines = [first + int(i * step) for i in range(max_lines)]
                else:
                    lines = range(first, last + 1)
            return self._access_lines(lines, smx_index, now)
        return self._access_lines(self.region_lines(regions), smx_index, now)


def _spec_dispatch_cache(spec: KernelSpec) -> tuple:
    """Per-spec dispatch constants, cached on the spec instance.

    Everything here is a pure function of the (immutable) spec content:
    per-CTA thread ranges, warp counts, executed-item sums (via an int64
    prefix sum — exact), and for contiguous child grids the per-CTA
    footprint base/extent and uniform per-warp item count.
    """
    cache = spec.__dict__.get("_fast_dispatch")
    if cache is not None:
        return cache
    tpc = spec.threads_per_cta
    num_threads = spec.num_threads
    num_ctas = spec.num_ctas
    thread_items = spec.thread_items
    starts = np.arange(num_ctas, dtype=np.int64) * tpc
    stops = np.minimum(starts + tpc, num_threads)
    sizes = stops - starts
    num_warps = ((sizes + (WARP_SIZE - 1)) // WARP_SIZE).tolist()
    prefix = np.zeros(num_threads + 1, dtype=np.int64)
    np.cumsum(thread_items, out=prefix[1:])
    executed = (prefix[stops] - prefix[starts]).tolist()
    if spec.contiguous_footprint:
        per_warp = np.where(
            sizes > 1, thread_items[starts], thread_items[stops - 1]
        ).tolist()
    else:
        per_warp = None
    if spec.contiguous_footprint and spec.mem_bases is not None:
        mem_bases = spec.mem_bases
        first = mem_bases[starts]
        extents = (
            mem_bases[stops - 1] - first
            + thread_items[stops - 1] * spec.mem_stride
        )
        bases = first.tolist()
        extents = extents.tolist()
    else:
        bases = None
        extents = None
    dec_tids = sorted(spec.child_requests) if spec.child_requests else None
    cache = (
        starts.tolist(),
        stops.tolist(),
        sizes.tolist(),
        num_warps,
        executed,
        per_warp,
        bases,
        extents,
        dec_tids,
    )
    spec._fast_dispatch = cache
    return cache


def _make_cta(
    kernel: KernelInstance,
    cta_index: int,
    *,
    num_threads: int,
    num_warps: int,
    regs: int,
    shmem: int,
    warp_total: List[float],
    warp_issue: List[float],
    decisions: List[PendingDecision],
    demand_scale: float,
) -> CTAInstance:
    """Validation-free :class:`CTAInstance` construction.

    Field-for-field (and float-operation-for-float-operation) what
    ``CTAInstance.__init__`` assigns, minus the three consistency raises —
    all guaranteed-true for CTAs the dispatch path itself materializes
    (warp arrays built to ``num_warps``, positive critical paths, decision
    points derived from warp totals).  The ``decisions`` list is owned by
    the caller and never reused, so aliasing it is safe.
    """
    cta = CTAInstance.__new__(CTAInstance)
    cta.kernel = kernel
    cta.cta_index = cta_index
    cta.num_threads = num_threads
    cta.num_warps = num_warps
    cta.regs = regs
    cta.shmem = shmem
    cta.consumed = 0.0
    cta.warp_total = warp_total
    cta.warp_issue = warp_issue
    cta.warp_base_total = warp_total
    cta.warp_base_issue = warp_issue
    cta._thread_extra = None
    cta._warp_extra = None
    cta.demand_scale = demand_scale
    demand = 0.0
    for total, issue in zip(warp_total, warp_issue):
        demand += min(issue / total, 1.0) if total > 0 else 1.0
    cta.demand = max(demand * demand_scale, 1e-3)
    cta.state = CTAState.RUNNING
    cta.smx_index = -1
    cta.dispatch_time = 0.0
    cta.compute_done_time = None
    cta.outstanding_children = 0
    if decisions:
        decisions.sort(key=_decision_key)
        cta.decisions = decisions
        cta.next_decision = 0
        cta.total_work = max(warp_total)
        cta.next_target = decisions[0].at_consumed
    else:
        cta.decisions = decisions
        cta.next_decision = 0
        cta.total_work = max(warp_total)
        cta.next_target = cta.total_work
    return cta


def _decision_key(d: PendingDecision) -> float:
    return d.at_consumed


class FastSimulator(GPUSimulator):
    """GPU simulator assembled from the fast components.

    Selected via ``RunConfig(engine="fast")`` / ``--engine fast``;
    certified bit-identical to :class:`~repro.sim.engine.GPUSimulator`
    by the golden-trace corpus, the differential validator, and the
    conformance invariants (see module docstring).
    """

    queue_factory = FastEventQueue
    smx_factory = FastSMX
    gmu_factory = FastGMU
    memory_factory = FastMemorySystem

    def _reset(self) -> None:
        super()._reset()
        # One bound callback per SMX instead of a fresh lambda per
        # reschedule (tens of thousands per run).
        self._smx_callbacks = [
            partial(self._on_smx_event, smx) for smx in self.smxs
        ]
        # Child-grid template cache: grids materialized from identical
        # ChildRequests (which recur once per parent thread) share their
        # thread_items array and the whole per-spec dispatch cache; only
        # the absolute footprint bases depend on the request's mem_base.
        self._child_templates: Dict[tuple, tuple] = {}

    # ------------------------------------------------------------------
    # Dispatch loop
    # ------------------------------------------------------------------
    def _dispatch_round(self) -> bool:
        free_slots = (
            self.config.max_ctas_per_smx * len(self.smxs) - self._res_total_ctas
        )
        if free_slots == 0:
            return False
        placed = False
        gmu = self.gmu
        note_taken = gmu.note_cta_taken  # FastGMU; dtbl heads bypass the GMU
        for kernel in gmu.dispatchable_kernels():
            if self._place_cta_of(kernel):
                note_taken(kernel)
                placed = True
                free_slots -= 1
                if free_slots == 0:
                    return placed
        while self._dtbl_pending:
            head = self._dtbl_pending[0]
            if not head.has_undispatched_ctas:
                self._dtbl_pending.popleft()
                continue
            if not self._place_cta_of(head):
                break
            placed = True
        return placed

    def _find_smx(self, *, threads: int, regs: int, shmem: int) -> Optional[SMX]:
        smxs = self.smxs
        n = len(smxs)
        cfg = self.config
        max_ctas = cfg.max_ctas_per_smx
        max_threads = cfg.max_threads_per_smx
        max_regs = cfg.registers_per_smx
        max_shmem = cfg.shared_mem_per_smx
        rr = self._smx_rr
        for offset in range(n):
            index = rr + offset
            if index >= n:
                index -= n
            smx = smxs[index]
            if (
                len(smx.resident) < max_ctas
                and smx.used_threads + threads <= max_threads
                and smx.used_regs + regs <= max_regs
                and smx.used_shmem + shmem <= max_shmem
            ):
                self._smx_rr = (rr + offset + 1) % n
                return smx
        return None

    def _dispatch_cta(self, kernel: KernelInstance, smx: SMX) -> None:
        now = self.queue.now
        spec = kernel.spec
        cache = spec.__dict__.get("_fast_dispatch")
        if cache is None:
            cache = _spec_dispatch_cache(spec)
        (starts, stops, sizes, warps, executed_sums, per_warps, bases,
         extents, dec_tids) = cache
        cta_index = kernel.next_cta_index
        if cta_index >= kernel.num_ctas:
            raise SimulationError(
                f"kernel {spec.name!r} has no CTAs left to dispatch"
            )
        kernel.next_cta_index = cta_index + 1
        record = kernel.record
        if record.first_dispatch_time is None:
            record.first_dispatch_time = now
            if self.tracer.enabled:
                self.tracer.emit(
                    KERNEL_FIRST_DISPATCH,
                    ts=now,
                    kernel_id=kernel.kernel_id,
                    kernel=spec.name,
                    queuing_latency=record.queuing_latency,
                )

        start = starts[cta_index]
        stop = stops[cta_index]
        n = sizes[cta_index]
        items = None
        # Memory footprint of the CTA's unconditional work.
        if spec.mem_bases is None:
            stall = self.memory.stall_cycles(1.0)
        elif bases is not None:
            stall, _ = self.memory.cta_access(
                [(bases[cta_index], extents[cta_index])], smx.index, now
            )
        else:
            items = spec.thread_items[start:stop]
            stall, _ = self.memory.cta_access_arrays(
                spec.mem_bases[start:stop],
                items * spec.mem_stride,
                smx.index,
                now,
            )

        # Per-warp critical path and issue occupancy.
        cost_total = spec.cycles_per_item + spec.accesses_per_item * stall
        issue_frac = spec.cycles_per_item / cost_total if cost_total > 0 else 0.0
        init = self.cta_init_cycles
        num_warps = warps[cta_index]
        if per_warps is not None:
            per_warp = per_warps[cta_index]
            wt = init + per_warp * cost_total
            wi = init + per_warp * cost_total * issue_frac
            warp_total = [wt] * num_warps
            warp_issue = [wi] * num_warps
        else:
            if items is None:
                items = spec.thread_items[start:stop]
            thread_total = items * cost_total
            warp_starts = np.arange(0, n, WARP_SIZE)
            warp_max = np.maximum.reduceat(thread_total, warp_starts)
            warp_total = (init + warp_max).tolist()
            warp_issue = (init + warp_max * issue_frac).tolist()

        decisions: List[PendingDecision] = []
        if dec_tids is not None:
            child_requests = spec.child_requests
            pos = bisect_left(dec_tids, start)
            end = len(dec_tids)
            while pos < end:
                tid = dec_tids[pos]
                if tid >= stop:
                    break
                pos += 1
                warp = (tid - start) // WARP_SIZE
                wt_warp = warp_total[warp]
                for req in child_requests[tid]:
                    decisions.append(
                        PendingDecision(
                            at_consumed=req.at_fraction * wt_warp,
                            warp=warp,
                            tid=tid,
                            request=req,
                        )
                    )

        cta = _make_cta(
            kernel,
            cta_index,
            num_threads=spec.threads_per_cta,
            num_warps=len(warp_total),
            regs=spec.threads_per_cta * spec.regs_per_thread,
            shmem=spec.shmem_per_cta,
            warp_total=warp_total,
            warp_issue=warp_issue,
            decisions=decisions,
            demand_scale=self.latency_hiding,
        )
        if kernel.is_child:
            self.stats.items_in_child += executed_sums[cta_index]
        else:
            self.stats.items_in_parent += executed_sums[cta_index]
        self._place_on_smx(cta, smx, now)

    # ------------------------------------------------------------------
    # Child kernel materialization
    # ------------------------------------------------------------------
    def _fast_child_spec(self, req: ChildRequest, depth: int) -> KernelSpec:
        """``spec_from_request`` with cached grid arrays, validation-free.

        The produced spec is field-for-field what
        :func:`~repro.sim.kernel.spec_from_request` builds (the
        ``__post_init__`` checks it skips are guaranteed-true for specs
        derived from an already-validated :class:`ChildRequest`).  The
        ``thread_items`` array and the attached dispatch cache are shared
        across identical requests — the engine only ever reads them.
        """
        key = (
            req.items,
            req.items_per_thread,
            req.mem_stride,
            req.cta_threads,
            tuple(sorted(req.nested)) if req.nested else (),
        )
        template = self._child_templates.get(key)
        if template is None:
            num_threads = req.num_threads
            items = np.full(num_threads, req.items_per_thread, dtype=np.int64)
            items[-1] = req.items - (num_threads - 1) * req.items_per_thread
            offsets = (
                np.arange(num_threads, dtype=np.int64)
                * req.items_per_thread
                * req.mem_stride
            )
            tpc = min(req.cta_threads, num_threads)
            num_ctas = -(-num_threads // tpc)
            starts = np.arange(num_ctas, dtype=np.int64) * tpc
            stops = np.minimum(starts + tpc, num_threads)
            sizes = stops - starts
            warps = ((sizes + (WARP_SIZE - 1)) // WARP_SIZE).tolist()
            prefix = np.zeros(num_threads + 1, dtype=np.int64)
            np.cumsum(items, out=prefix[1:])
            executed = (prefix[stops] - prefix[starts]).tolist()
            per_warp = np.where(
                sizes > 1, items[starts], items[stops - 1]
            ).tolist()
            # mem_bases = mem_base + offsets, so the per-CTA footprint
            # base is mem_base + offsets[start] and the extent is
            # mem_base-independent.
            rel_bases = offsets[starts].tolist()
            extents = (
                offsets[stops - 1] - offsets[starts]
                + items[stops - 1] * req.mem_stride
            ).tolist()
            dec_tids = sorted(req.nested) if req.nested else None
            template = (
                num_threads,
                items,
                offsets,
                starts.tolist(),
                stops.tolist(),
                sizes.tolist(),
                warps,
                executed,
                per_warp,
                rel_bases,
                extents,
                dec_tids,
            )
            self._child_templates[key] = template
        (num_threads, items, offsets, starts, stops, sizes, warps, executed,
         per_warp, rel_bases, extents, dec_tids) = template
        mem_base = req.mem_base
        if mem_base:
            bases = [mem_base + rel for rel in rel_bases]
        else:
            bases = rel_bases
        spec = KernelSpec.__new__(KernelSpec)
        spec.name = req.name
        spec.threads_per_cta = min(req.cta_threads, num_threads)
        spec.thread_items = items
        spec.regs_per_thread = req.regs_per_thread
        spec.shmem_per_cta = req.shmem_per_cta
        spec.cycles_per_item = req.cycles_per_item
        spec.accesses_per_item = req.accesses_per_item
        spec.mem_bases = mem_base + offsets
        spec.mem_stride = req.mem_stride
        spec.child_requests = {
            tid: list(reqs) for tid, reqs in req.nested.items()
        }
        spec.header_items = 2
        spec.depth = depth
        spec.contiguous_footprint = True
        spec._fast_dispatch = (
            starts, stops, sizes, warps, executed, per_warp, bases, extents,
            dec_tids,
        )
        return spec

    def _make_child_kernel(
        self, parent: KernelInstance, parent_cta: CTAInstance, req: ChildRequest
    ) -> KernelInstance:
        child_spec = self._fast_child_spec(req, parent.spec.depth + 1)
        stream = self.stream_policy.stream_for(
            parent.kernel_id, parent_cta.cta_index
        )
        child = KernelInstance(
            next(self._kernel_ids),
            child_spec,
            stream_id=stream,
            is_child=True,
            parent_cta=parent_cta,
            items_per_thread=req.items_per_thread,
        )
        self._unfinished_kernels += 1
        return child

    # ------------------------------------------------------------------
    # SMX event wiring
    # ------------------------------------------------------------------
    def _reschedule_smx(self, smx: SMX) -> None:
        events = self._smx_events
        i = smx.index
        event = events[i]
        if event is not None:
            event.cancel()
            events[i] = None
        queue = self.queue
        now = queue.now
        when = smx.next_event_time(now)
        if when is not None:
            events[i] = queue.schedule(
                when if when > now else now, self._smx_callbacks[i]
            )

    def _on_smx_event(self, smx: SMX) -> None:
        self._smx_events[smx.index] = None
        now = self.queue.now
        smx.advance(now)
        progressed = False
        for cta in smx.ctas_with_fired_decisions():
            self._process_decisions(cta, smx, now)
            progressed = True
        finished = smx.pop_finished(now)
        if finished:
            progressed = True
            for cta in finished:
                self._detach_cta(cta, smx, now)
            self._record_state()
            for cta in finished:
                self._on_cta_compute_done(cta, now)
            self._dispatch()
        if progressed:
            self._reschedule_smx(smx)
        else:
            # Pure float drift: nudge strictly forward so we cannot spin.
            when = smx.next_event_time(now)
            if when is not None:
                self._smx_events[smx.index] = self.queue.schedule(
                    max(when, now + 1e-3), self._smx_callbacks[smx.index]
                )


#: Engine name -> simulator class; the seam ``Runner`` / the CLI select
#: through.  "default" is the reference per-event engine.
ENGINES: Dict[str, type] = {
    "default": GPUSimulator,
    "fast": FastSimulator,
}


def simulator_class(engine: str) -> type:
    """Resolve an engine name to its simulator class."""
    try:
        return ENGINES[engine]
    except KeyError:
        raise ConfigError(
            f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
        ) from None
