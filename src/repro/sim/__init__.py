"""GPU simulator substrate: config, event engine, SMXs, GMU, memory.

The engine itself (:class:`repro.sim.engine.GPUSimulator`) is re-exported
from the top-level :mod:`repro` package; importing it here would create an
import cycle with :mod:`repro.core.policies`.
"""

from repro.sim.config import (
    WARP_SIZE,
    CacheConfig,
    GPUConfig,
    LaunchOverheadConfig,
    MemoryConfig,
    kepler_k20m,
    small_debug_gpu,
)
from repro.sim.kernel import Application, ChildRequest, KernelSpec

__all__ = [
    "Application",
    "CacheConfig",
    "ChildRequest",
    "GPUConfig",
    "KernelSpec",
    "LaunchOverheadConfig",
    "MemoryConfig",
    "WARP_SIZE",
    "kepler_k20m",
    "small_debug_gpu",
]
