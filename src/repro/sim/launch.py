"""Device-side kernel launch unit.

Launching a child kernel costs ``A*x + b`` cycles for a warp that issues
``x`` launches (Table II; constants measured by Wang et al.).  The runtime
can only service a bounded number of warp launch batches concurrently
(``service_slots``); bursts beyond that queue FCFS.  This is the component
that turns "a majority of running parent threads launch child kernels within
a short period of time" into visible, compounding launch overhead — the
first of the two drawbacks SPAWN attacks.

The marginal per-kernel cost ``A*x`` occupies a service slot (it is real
work for the runtime/microcode); the fixed pipeline latency ``b`` overlaps
with other batches.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Tuple

from repro.errors import LaunchError
from repro.obs.tracer import (
    LAUNCH_BATCH_ARRIVE,
    LAUNCH_BATCH_SERVICE,
    LAUNCH_BATCH_SUBMIT,
    NULL_TRACER,
    Tracer,
)
from repro.sim.config import LaunchOverheadConfig
from repro.sim.events import EventQueue
from repro.sim.instances import KernelInstance

#: Callback invoked when a launched kernel reaches the GMU: (kernel, time).
DeliverFn = Callable[[KernelInstance], None]


class LaunchUnit:
    """Queues warp launch batches and delivers kernels to the GMU."""

    def __init__(
        self,
        config: LaunchOverheadConfig,
        queue: EventQueue,
        deliver: DeliverFn,
        *,
        tracer: Tracer = NULL_TRACER,
    ):
        self.config = config
        self.queue = queue
        self.deliver = deliver
        self.tracer = tracer
        self._busy_slots = 0
        self._waiting: Deque[List[KernelInstance]] = deque()
        # Telemetry
        self.batches_submitted = 0
        self.kernels_submitted = 0
        self.total_queue_delay = 0.0
        self._waiting_since: Deque[float] = deque()

    @property
    def busy_slots(self) -> int:
        return self._busy_slots

    @property
    def backlog(self) -> int:
        return len(self._waiting)

    def submit_batch(self, kernels: List[KernelInstance]) -> None:
        """Submit the launches issued by one warp in one API burst."""
        if not kernels:
            raise LaunchError("empty launch batch")
        now = self.queue.now
        self.batches_submitted += 1
        self.kernels_submitted += len(kernels)
        for kernel in kernels:
            kernel.record.launch_call_time = now
        if self.tracer.enabled:
            self.tracer.emit(
                LAUNCH_BATCH_SUBMIT,
                ts=now,
                kernels=len(kernels),
                kernel_ids=[k.kernel_id for k in kernels],
                busy_slots=self._busy_slots,
                backlog=len(self._waiting),
            )
        if self._busy_slots < self.config.service_slots:
            self._start_service(kernels)
        else:
            self._waiting.append(kernels)
            self._waiting_since.append(now)

    def _start_service(self, kernels: List[KernelInstance]) -> None:
        self._busy_slots += 1
        occupancy = self.config.slope_cycles * len(kernels)
        arrival_delay = occupancy + self.config.base_cycles
        if self.tracer.enabled:
            self.tracer.emit(
                LAUNCH_BATCH_SERVICE,
                ts=self.queue.now,
                kernels=len(kernels),
                busy_slots=self._busy_slots,
                backlog=len(self._waiting),
                service_cycles=occupancy,
            )
        self.queue.schedule_in(occupancy, lambda: self._release_slot())
        self.queue.schedule_in(arrival_delay, lambda ks=kernels: self._arrive(ks))

    def _release_slot(self) -> None:
        self._busy_slots -= 1
        if self._waiting and self._busy_slots < self.config.service_slots:
            batch = self._waiting.popleft()
            queued_at = self._waiting_since.popleft()
            self.total_queue_delay += self.queue.now - queued_at
            self._start_service(batch)

    def _arrive(self, kernels: List[KernelInstance]) -> None:
        if self.tracer.enabled:
            self.tracer.emit(
                LAUNCH_BATCH_ARRIVE,
                ts=self.queue.now,
                kernels=len(kernels),
                kernel_ids=[k.kernel_id for k in kernels],
                busy_slots=self._busy_slots,
                backlog=len(self._waiting),
            )
        for kernel in kernels:
            self.deliver(kernel)

    def stats(self) -> Tuple[int, int, float]:
        """(batches, kernels, total queue delay cycles)."""
        return (self.batches_submitted, self.kernels_submitted, self.total_queue_delay)
