"""Statistics collected during a simulation run.

Everything the paper's evaluation section plots is derived from the fields
here: makespan/speedup (Fig. 5, 15, 21), SMX occupancy (Fig. 16), L2 hit rate
(Fig. 17), child-kernel counts (Fig. 18), concurrency/utilization timelines
(Fig. 6, 19), cumulative launch CDFs (Fig. 20), and child-CTA execution time
distributions (Fig. 12).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional

# ---------------------------------------------------------------------------
# Strict-JSON float handling.
#
# ``json.dumps`` happily emits ``NaN``/``Infinity`` literals, which are NOT
# JSON — any strict parser (and ``json.loads(..., parse_constant=...)``
# hardening) rejects the stored result.  Derived stats can legitimately be
# non-finite (a zero-duration run, a degenerate hit rate), so serialization
# tags them explicitly instead of hoping they never occur:
# ``float("nan")`` <-> ``{"$float": "nan"}``, ditto ``"inf"`` / ``"-inf"``.
# ---------------------------------------------------------------------------
_NONFINITE_DECODE = {
    "nan": float("nan"),
    "inf": float("inf"),
    "-inf": float("-inf"),
}


def encode_json_floats(value):
    """Recursively replace non-finite floats with strict-JSON-safe tags."""
    if isinstance(value, float):
        if math.isfinite(value):
            return value
        if math.isnan(value):
            return {"$float": "nan"}
        return {"$float": "inf" if value > 0 else "-inf"}
    if isinstance(value, dict):
        return {key: encode_json_floats(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [encode_json_floats(item) for item in value]
    return value


def decode_json_floats(value):
    """Inverse of :func:`encode_json_floats` (plain payloads pass through)."""
    if isinstance(value, dict):
        if len(value) == 1 and "$float" in value:
            tag = value["$float"]
            if tag in _NONFINITE_DECODE:
                return _NONFINITE_DECODE[tag]
        return {key: decode_json_floats(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_json_floats(item) for item in value]
    return value


@dataclass
class KernelRecord:
    """Lifecycle timestamps and identity of one kernel instance."""

    kernel_id: int
    name: str
    is_child: bool
    depth: int
    num_ctas: int
    stream_id: int = -1
    launch_call_time: Optional[float] = None
    arrival_time: Optional[float] = None
    first_dispatch_time: Optional[float] = None
    completion_time: Optional[float] = None

    @property
    def queuing_latency(self) -> Optional[float]:
        if self.arrival_time is None or self.first_dispatch_time is None:
            return None
        return self.first_dispatch_time - self.arrival_time

    @property
    def launch_overhead(self) -> Optional[float]:
        if self.launch_call_time is None or self.arrival_time is None:
            return None
        return self.arrival_time - self.launch_call_time


@dataclass
class TraceSample:
    """One point of the concurrency/utilization timeline (Fig. 6 / 19)."""

    time: float
    parent_ctas: int
    child_ctas: int
    utilization: float

    @property
    def total_ctas(self) -> int:
        return self.parent_ctas + self.child_ctas


class SimStats:
    """Mutable statistics sink owned by one simulator instance."""

    def __init__(self, *, trace_interval: float = 1000.0):
        self.trace_interval = trace_interval
        self.makespan: float = 0.0

        # Launch accounting.
        self.child_kernels_launched = 0
        self.child_kernels_declined = 0
        self.child_kernels_reused = 0  # Free Launch thread-reuse conversions
        self.child_kernels_consolidated = 0  # requests buffered by consolidate
        self.child_kernels_aggregated = 0  # requests buffered by aggregate:<g>
        self.merged_kernels_launched = 0  # merged kernels actually submitted
        self.child_ctas_launched = 0
        self.launch_times: List[float] = []  # one entry per launched child

        # Work partitioning (Fig. 5 x-axis).
        self.items_in_parent = 0
        self.items_in_child = 0

        # Per-kernel lifecycle records.
        self.kernels: Dict[int, KernelRecord] = {}

        # Child CTA execution times (Fig. 12) and warp times.
        self.child_cta_exec_times: List[float] = []

        # Occupancy integrals.
        self._warp_cycles = 0.0
        self._reg_cycles = 0.0
        self._shmem_cycles = 0.0
        self._last_state_time = 0.0
        self._current_warps = 0
        self._current_regs = 0
        self._current_shmem = 0
        self._current_parent_ctas = 0
        self._current_child_ctas = 0

        # Capacity (set once by the engine).
        self.total_warp_capacity = 1
        self.total_reg_capacity = 1
        self.total_shmem_capacity = 1

        # Timeline.
        self.trace: List[TraceSample] = []
        self._last_trace_time = -float("inf")

        # Memory results (filled in by the engine at the end of a run).
        self.l2_hits = 0
        self.l2_misses = 0

        # Peak CCQS depth (MetricsMonitor.peak_n, copied by the engine):
        # the deepest the child-CTA queuing system ever got.
        self.peak_ccqs_depth = 0

    # ------------------------------------------------------------------
    # Occupancy / timeline tracking
    # ------------------------------------------------------------------
    def set_capacity(self, warps: int, regs: int, shmem: int) -> None:
        self.total_warp_capacity = max(warps, 1)
        self.total_reg_capacity = max(regs, 1)
        self.total_shmem_capacity = max(shmem, 1)

    def _utilization(self) -> float:
        """Paper's "resource utilization": max of warp/reg/shmem usage."""
        return max(
            self._current_warps / self.total_warp_capacity,
            self._current_regs / self.total_reg_capacity,
            self._current_shmem / self.total_shmem_capacity,
        )

    def record_state(
        self,
        time: float,
        *,
        parent_ctas: int,
        child_ctas: int,
        warps: int,
        regs: int,
        shmem: int,
    ) -> None:
        """Called by the engine whenever the set of resident CTAs changes."""
        dt = time - self._last_state_time
        if dt > 0:
            self._warp_cycles += self._current_warps * dt
            self._reg_cycles += self._current_regs * dt
            self._shmem_cycles += self._current_shmem * dt
        self._last_state_time = time
        self._current_parent_ctas = parent_ctas
        self._current_child_ctas = child_ctas
        self._current_warps = warps
        self._current_regs = regs
        self._current_shmem = shmem
        if time - self._last_trace_time >= self.trace_interval:
            self.trace.append(
                TraceSample(time, parent_ctas, child_ctas, self._utilization())
            )
            self._last_trace_time = time

    def finalize(self, makespan: float) -> None:
        self.record_state(
            makespan,
            parent_ctas=self._current_parent_ctas,
            child_ctas=self._current_child_ctas,
            warps=self._current_warps,
            regs=self._current_regs,
            shmem=self._current_shmem,
        )
        self.makespan = makespan

    # ------------------------------------------------------------------
    # Derived metrics
    # ------------------------------------------------------------------
    @property
    def smx_occupancy(self) -> float:
        """Average active warps per cycle / warp capacity (Fig. 16)."""
        if self.makespan <= 0:
            return 0.0
        return self._warp_cycles / (self.makespan * self.total_warp_capacity)

    @property
    def l2_hit_rate(self) -> float:
        total = self.l2_hits + self.l2_misses
        return self.l2_hits / total if total else 0.0

    @property
    def offload_fraction(self) -> float:
        """Fraction of work items executed inside child kernels (Fig. 5)."""
        total = self.items_in_parent + self.items_in_child
        return self.items_in_child / total if total else 0.0

    @property
    def mean_child_queuing_latency(self) -> float:
        latencies = [
            rec.queuing_latency
            for rec in self.kernels.values()
            if rec.is_child and rec.queuing_latency is not None
        ]
        return sum(latencies) / len(latencies) if latencies else 0.0

    @property
    def mean_child_cta_time(self) -> float:
        times = self.child_cta_exec_times
        return sum(times) / len(times) if times else 0.0

    def launch_cdf(self) -> List[tuple]:
        """(time, cumulative launched child kernels) points (Fig. 20)."""
        return [(t, i + 1) for i, t in enumerate(sorted(self.launch_times))]

    # ------------------------------------------------------------------
    # Serialization (persistent result store / parallel harness)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable snapshot of a *finalized* stats object.

        Round-trips every field the experiments and derived metrics read,
        including the private occupancy integrals — ``from_dict`` must
        reproduce ``summary()`` and the figure inputs bit-identically.
        Non-finite floats are tagged (:func:`encode_json_floats`) so the
        payload is *strict* JSON end to end.
        """
        return encode_json_floats({
            "trace_interval": self.trace_interval,
            "makespan": self.makespan,
            "child_kernels_launched": self.child_kernels_launched,
            "child_kernels_declined": self.child_kernels_declined,
            "child_kernels_reused": self.child_kernels_reused,
            "child_kernels_consolidated": self.child_kernels_consolidated,
            "child_kernels_aggregated": self.child_kernels_aggregated,
            "merged_kernels_launched": self.merged_kernels_launched,
            "child_ctas_launched": self.child_ctas_launched,
            "launch_times": list(self.launch_times),
            "items_in_parent": self.items_in_parent,
            "items_in_child": self.items_in_child,
            "kernels": [asdict(rec) for rec in self.kernels.values()],
            "child_cta_exec_times": list(self.child_cta_exec_times),
            "warp_cycles": self._warp_cycles,
            "reg_cycles": self._reg_cycles,
            "shmem_cycles": self._shmem_cycles,
            "last_state_time": self._last_state_time,
            "capacity": [
                self.total_warp_capacity,
                self.total_reg_capacity,
                self.total_shmem_capacity,
            ],
            "trace": [
                [s.time, s.parent_ctas, s.child_ctas, s.utilization]
                for s in self.trace
            ],
            "l2_hits": self.l2_hits,
            "l2_misses": self.l2_misses,
            "peak_ccqs_depth": self.peak_ccqs_depth,
        })

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimStats":
        """Rebuild a finalized stats object saved with :meth:`to_dict`."""
        payload = decode_json_floats(payload)
        stats = cls(trace_interval=payload["trace_interval"])
        stats.makespan = payload["makespan"]
        stats.child_kernels_launched = payload["child_kernels_launched"]
        stats.child_kernels_declined = payload["child_kernels_declined"]
        stats.child_kernels_reused = payload["child_kernels_reused"]
        stats.child_kernels_consolidated = payload.get(
            "child_kernels_consolidated", 0
        )
        stats.child_kernels_aggregated = payload.get(
            "child_kernels_aggregated", 0
        )
        stats.merged_kernels_launched = payload.get(
            "merged_kernels_launched", 0
        )
        stats.child_ctas_launched = payload["child_ctas_launched"]
        stats.launch_times = list(payload["launch_times"])
        stats.items_in_parent = payload["items_in_parent"]
        stats.items_in_child = payload["items_in_child"]
        stats.kernels = {
            rec["kernel_id"]: KernelRecord(**rec) for rec in payload["kernels"]
        }
        stats.child_cta_exec_times = list(payload["child_cta_exec_times"])
        stats._warp_cycles = payload["warp_cycles"]
        stats._reg_cycles = payload["reg_cycles"]
        stats._shmem_cycles = payload["shmem_cycles"]
        stats._last_state_time = payload["last_state_time"]
        warps, regs, shmem = payload["capacity"]
        stats.set_capacity(warps=warps, regs=regs, shmem=shmem)
        stats.trace = [TraceSample(*sample) for sample in payload["trace"]]
        stats.l2_hits = payload["l2_hits"]
        stats.l2_misses = payload["l2_misses"]
        stats.peak_ccqs_depth = payload["peak_ccqs_depth"]
        return stats

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline metrics, for reports and tests."""
        return {
            "makespan": self.makespan,
            "child_kernels_launched": self.child_kernels_launched,
            "child_kernels_declined": self.child_kernels_declined,
            "child_kernels_reused": self.child_kernels_reused,
            "child_kernels_consolidated": self.child_kernels_consolidated,
            "child_kernels_aggregated": self.child_kernels_aggregated,
            "merged_kernels_launched": self.merged_kernels_launched,
            "child_ctas_launched": self.child_ctas_launched,
            "smx_occupancy": self.smx_occupancy,
            "l2_hit_rate": self.l2_hit_rate,
            "offload_fraction": self.offload_fraction,
            "mean_child_queuing_latency": self.mean_child_queuing_latency,
            "mean_child_cta_time": self.mean_child_cta_time,
            "peak_ccqs_depth": self.peak_ccqs_depth,
        }
