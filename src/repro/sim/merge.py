"""Merged child-kernel construction for consolidate / aggregate schemes.

Both merging schemes buffer admitted :class:`~repro.sim.kernel.ChildRequest`
launches and submit them later as one coarser kernel.  This module builds
that kernel's :class:`~repro.sim.kernel.KernelSpec` so the construction is
shared — and therefore bit-identical — between the default and fast engine
cores (neither overrides it).

**CTA conservation.**  The merged grid must contain exactly as many CTAs as
the constituents would have launched individually (the conformance checker
enforces this), so each constituent's thread block is zero-padded to a
multiple of the CTA size before concatenation:

* ``n_i >= cta_threads``: the constituent's own spec uses
  ``threads_per_cta == cta_threads`` too, so padding to a multiple keeps
  ``ceil(n_i / cta_threads)`` CTAs exactly;
* ``n_i < cta_threads``: the constituent's own spec shrinks its CTA to
  ``n_i`` threads (one CTA); padded to ``cta_threads`` it still occupies
  exactly one CTA of the merged grid.

Zero-item pad threads are inert: they contribute no work items, and their
zero-extent memory regions are masked out of the footprint model
(:func:`repro.sim.memory.region_lines_arrays` skips ``extents <= 0``).

Merged grids set ``contiguous_footprint=False`` so both engines take the
identical per-thread-array dispatch path — the contiguous fast path assumes
one uniform child request, which a merged grid is not.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.sim.kernel import ChildRequest, KernelSpec


def merge_key(req: ChildRequest) -> Tuple:
    """Compatibility key: requests merge only when these fields agree.

    A merged kernel has a single CTA geometry and per-item cost model, so
    requests that disagree on any of them go into separate merged kernels
    (mirroring the real constraint that aggregated launches share one
    kernel function and block shape).
    """
    return (
        req.cta_threads,
        req.items_per_thread,
        req.regs_per_thread,
        req.shmem_per_cta,
        req.cycles_per_item,
        req.accesses_per_item,
        req.mem_stride,
    )


def build_merged_spec(
    requests: Sequence[ChildRequest],
    *,
    depth: int,
    unpadded: bool = False,
) -> KernelSpec:
    """One :class:`KernelSpec` covering every request in ``requests``.

    All requests must share a :func:`merge_key` (the caller groups by it).
    ``unpadded=True`` is a TEST-ONLY seeded bug: constituents are
    concatenated without the conservation padding, so the merged grid can
    repack threads across CTA boundaries and launch *fewer* CTAs than the
    constituents — exactly the error the checker's conservation invariant
    exists to catch.  Never set outside tests.
    """
    if not requests:
        raise ValueError("cannot merge zero requests")
    first = requests[0]
    tpc = first.cta_threads
    items_parts: List[np.ndarray] = []
    bases_parts: List[np.ndarray] = []
    child_requests = {}
    offset = 0
    for req in requests:
        n = req.num_threads
        items = np.full(n, req.items_per_thread, dtype=np.int64)
        items[-1] = req.items - (n - 1) * req.items_per_thread
        bases = (
            req.mem_base
            + np.arange(n, dtype=np.int64)
            * req.items_per_thread
            * req.mem_stride
        )
        pad = 0 if unpadded else (-n) % tpc
        if pad:
            items = np.concatenate([items, np.zeros(pad, dtype=np.int64)])
            bases = np.concatenate([bases, np.zeros(pad, dtype=np.int64)])
        items_parts.append(items)
        bases_parts.append(bases)
        for tid, reqs in req.nested.items():
            child_requests[offset + tid] = list(reqs)
        offset += n + pad
    thread_items = (
        np.concatenate(items_parts) if len(items_parts) > 1 else items_parts[0]
    )
    mem_bases = (
        np.concatenate(bases_parts) if len(bases_parts) > 1 else bases_parts[0]
    )
    return KernelSpec(
        name=f"{first.name}+merge{len(requests)}",
        threads_per_cta=min(tpc, int(thread_items.size)),
        thread_items=thread_items,
        regs_per_thread=first.regs_per_thread,
        shmem_per_cta=first.shmem_per_cta,
        cycles_per_item=first.cycles_per_item,
        accesses_per_item=first.accesses_per_item,
        mem_bases=mem_bases,
        mem_stride=first.mem_stride,
        child_requests=child_requests,
        depth=depth,
        contiguous_footprint=False,
    )
