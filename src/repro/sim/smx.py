"""SMX (streaming multiprocessor) model.

Each SMX is a processor-sharing server over its resident CTAs.  A CTA's
*work* is its critical-path latency in cycles (the slowest of its warps,
stalls included); its *demand* is the issue-slot occupancy of its warps.
When the summed demand of resident CTAs exceeds the SMX's issue capacity,
everything slows down uniformly by ``capacity / total_demand`` —
proportional-share scheduling, which is what a fine-grained GTO warp
scheduler averages out to at the timescales the paper's mechanism operates
on.

This is the component that reproduces the paper's utilization story: a lone
lightweight child CTA leaves most issue slots idle (Fig. 6's low
utilization tail), while a healthy mix of parent and child CTAs keeps the
SMX saturated.

Besides completions, the SMX also surfaces *decision points*: progress
positions at which a resident parent CTA's threads execute their device
launch calls (see :class:`repro.sim.instances.PendingDecision`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.config import GPUConfig
from repro.sim.instances import EPSILON, CTAInstance


class SMX:
    """Resource accounting plus processor-sharing progress for one SMX."""

    __slots__ = ("index", "config", "capacity", "resident", "used_threads",
                 "used_regs", "used_shmem", "used_warps", "_total_demand",
                 "_last_update")

    def __init__(self, index: int, config: GPUConfig):
        self.index = index
        self.config = config
        self.capacity = config.issue_width
        self.resident: List[CTAInstance] = []
        self.used_threads = 0
        self.used_regs = 0
        self.used_shmem = 0
        self.used_warps = 0
        self._total_demand = 0.0
        self._last_update = 0.0

    # ------------------------------------------------------------------
    # Resource accounting
    # ------------------------------------------------------------------
    def can_fit(self, *, threads: int, regs: int, shmem: int) -> bool:
        cfg = self.config
        return (
            len(self.resident) < cfg.max_ctas_per_smx
            and self.used_threads + threads <= cfg.max_threads_per_smx
            and self.used_regs + regs <= cfg.registers_per_smx
            and self.used_shmem + shmem <= cfg.shared_mem_per_smx
        )

    @property
    def has_free_cta_slot(self) -> bool:
        return len(self.resident) < self.config.max_ctas_per_smx

    @property
    def num_resident(self) -> int:
        return len(self.resident)

    @property
    def scale(self) -> float:
        """Current uniform progress rate of resident CTAs (<= 1)."""
        if self._total_demand <= self.capacity:
            return 1.0
        return self.capacity / self._total_demand

    @property
    def compute_utilization(self) -> float:
        """Fraction of issue capacity in use."""
        return min(self._total_demand, self.capacity) / self.capacity

    # ------------------------------------------------------------------
    # Progress integration
    # ------------------------------------------------------------------
    def advance(self, now: float) -> None:
        """Integrate progress of resident CTAs up to ``now``."""
        last = self._last_update
        if now <= last:
            if now - last < -EPSILON:
                raise SimulationError(
                    f"SMX {self.index} asked to advance backwards "
                    f"({last} -> {now})"
                )
            return
        if self.resident:
            step = self.scale * (now - last)
            for cta in self.resident:
                consumed = cta.consumed + step
                total = cta.total_work
                cta.consumed = consumed if consumed < total else total
        self._last_update = now

    def add(self, cta: CTAInstance, now: float) -> None:
        """Place a CTA on this SMX (caller must have checked ``can_fit``)."""
        if not self.can_fit(threads=cta.num_threads, regs=cta.regs, shmem=cta.shmem):
            raise SimulationError(f"CTA {cta!r} does not fit on SMX {self.index}")
        self.advance(now)
        cta.smx_index = self.index
        self.resident.append(cta)
        self.used_threads += cta.num_threads
        self.used_regs += cta.regs
        self.used_shmem += cta.shmem
        self.used_warps += cta.num_warps
        self._total_demand += cta.demand

    def remove(self, cta: CTAInstance, now: float) -> None:
        self.advance(now)
        try:
            self.resident.remove(cta)
        except ValueError:
            raise SimulationError(
                f"CTA {cta!r} not resident on SMX {self.index}"
            ) from None
        self.used_threads -= cta.num_threads
        self.used_regs -= cta.regs
        self.used_shmem -= cta.shmem
        self.used_warps -= cta.num_warps
        self._total_demand -= cta.demand
        if self._total_demand < EPSILON:
            self._total_demand = 0.0
        cta.smx_index = -1

    def refresh_demand(self, cta: CTAInstance, now: float) -> None:
        """Re-derive a resident CTA's demand after its warp work changed.

        The caller must have already advanced this SMX to ``now`` (decision
        processing does), so the demand change applies from ``now`` onward.
        """
        self.advance(now)
        old = cta.demand
        new = cta.refresh_demand()
        self._total_demand += new - old
        if self._total_demand < EPSILON:
            self._total_demand = 0.0

    # ------------------------------------------------------------------
    # Event horizon
    # ------------------------------------------------------------------
    def next_event_time(self, now: float) -> Optional[float]:
        """Earliest completion *or* decision-point crossing, or None.

        All resident CTAs progress at the same rate, so the horizon is
        ``now + min(next_target - consumed) / rate`` — one attribute-only
        pass over the residents (``next_target`` is maintained by
        :class:`~repro.sim.instances.CTAInstance`).
        """
        resident = self.resident
        if not resident:
            return None
        self.advance(now)
        slack = min(c.next_target - c.consumed for c in resident)
        if slack <= 0.0:
            return now
        return now + slack / self.scale

    def ctas_with_fired_decisions(self) -> List[CTAInstance]:
        """Resident CTAs whose next decision point has been crossed."""
        return [
            c
            for c in self.resident
            if c.next_decision < len(c.decisions)
            and c.next_target <= c.consumed + EPSILON
        ]

    def pop_finished(self, now: float) -> List[CTAInstance]:
        """Advance to ``now`` and detach every CTA whose compute is done."""
        self.advance(now)
        finished = [c for c in self.resident if c.compute_finished]
        for cta in finished:
            self.remove(cta, now)
        return finished

    def snapshot(self) -> Tuple[int, int, int, int]:
        """(ctas, warps, regs, shmem) currently in use."""
        return (len(self.resident), self.used_warps, self.used_regs, self.used_shmem)

    # ------------------------------------------------------------------
    # Conformance
    # ------------------------------------------------------------------
    def check_invariants(self) -> List[str]:
        """Internal-consistency audit used by :mod:`repro.check`.

        Verifies that the incrementally maintained resource counters and
        demand sum match a from-scratch recomputation over the resident
        CTAs, and that residency respects the configured caps.  Returns a
        list of human-readable violation messages (empty when healthy).
        """
        problems: List[str] = []
        cfg = self.config
        sums = {
            "used_threads": sum(c.num_threads for c in self.resident),
            "used_warps": sum(c.num_warps for c in self.resident),
            "used_regs": sum(c.regs for c in self.resident),
            "used_shmem": sum(c.shmem for c in self.resident),
        }
        for name, expected in sums.items():
            actual = getattr(self, name)
            if actual != expected:
                problems.append(
                    f"SMX {self.index}: {name}={actual} but residents sum "
                    f"to {expected}"
                )
        demand = sum(c.demand for c in self.resident)
        if abs(self._total_demand - demand) > 1e-6 * max(1.0, demand):
            problems.append(
                f"SMX {self.index}: total_demand={self._total_demand} but "
                f"residents sum to {demand}"
            )
        caps = (
            (len(self.resident), cfg.max_ctas_per_smx, "CTAs"),
            (self.used_threads, cfg.max_threads_per_smx, "threads"),
            (self.used_regs, cfg.registers_per_smx, "registers"),
            (self.used_shmem, cfg.shared_mem_per_smx, "shared memory"),
        )
        for used, cap, what in caps:
            if used > cap:
                problems.append(
                    f"SMX {self.index}: {used} {what} resident, cap {cap}"
                )
        return problems
