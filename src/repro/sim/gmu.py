"""Grid Management Unit: pending kernel pool, SWQ->HWQ binding, dispatch.

Semantics reproduced from the paper's Section II-C:

* Kernels carry a software work queue (SWQ / ``c_stream``) ID.  Kernels in
  the same SWQ execute **sequentially**; kernels in different SWQs may run
  concurrently.
* There are 32 hardware work queues (HWQs), so at most 32 kernels execute
  concurrently.  A SWQ with pending work must be *bound* to a free HWQ
  before its head kernel's CTAs can be dispatched; binding is FCFS.
* Time a kernel spends in the GMU before its first CTA dispatches is the
  paper's *queuing latency*.

The GMU does not pick SMXs itself — the engine walks the executing kernels
round-robin and places CTAs wherever resources allow (RR CTA scheduler,
Table II).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, Optional

from repro.errors import SimulationError
from repro.obs.tracer import HWQ_BIND, HWQ_RELEASE, NULL_TRACER, Tracer
from repro.sim.config import GPUConfig
from repro.sim.instances import KernelInstance, KernelState


class GMU:
    """Pending-kernel pool and HWQ occupancy tracking."""

    def __init__(
        self,
        config: GPUConfig,
        *,
        tracer: Tracer = NULL_TRACER,
        bind_policy: str = "fcfs",
        lifo_bind: bool = False,
        reverse_rr: bool = False,
        acs_unguarded: bool = False,
    ):
        self.config = config
        #: Observability sink; events are stamped with the tracer's bound
        #: clock (the GMU has no clock of its own).
        self.tracer = tracer
        #: SWQ→HWQ binding order.  ``"fcfs"`` is the paper's hardware
        #: (strict arrival order); ``"acs"`` reorders binding by a
        #: dependency-aware priority (ACS-style concurrent-kernel
        #: scheduling, arXiv:2401.12377) while keeping within-stream FIFO
        #: semantics untouched.
        if bind_policy not in ("fcfs", "acs"):
            raise SimulationError(f"unknown bind_policy {bind_policy!r}")
        self.bind_policy = bind_policy
        #: TEST-ONLY deliberate bugs, used by the conformance suite to
        #: prove the checker and the golden-trace diff catch ordering
        #: regressions.  ``lifo_bind`` binds the most recently waiting SWQ
        #: first (violating FCFS); ``reverse_rr`` scans bound streams in
        #: reverse round-robin order; ``acs_unguarded`` reverses a stream's
        #: kernel FIFO when ACS binds it (the same-stream-order guard ACS
        #: must never drop).  Never set outside tests.
        self.lifo_bind = lifo_bind
        self.reverse_rr = reverse_rr
        self.acs_unguarded = acs_unguarded
        #: SWQ id -> FIFO of kernels submitted to that stream.
        self._streams: Dict[int, Deque[KernelInstance]] = {}
        #: SWQ ids currently bound to a HWQ (insertion ordered).
        self._bound: Dict[int, None] = {}
        #: SWQ ids waiting for a HWQ, FCFS.
        self._wait_order: Deque[int] = deque()
        #: Round-robin cursor over bound streams for CTA dispatch.
        self._rr_cursor = 0
        #: Cache of self._bound keys; rebuilt when bindings change.
        self._bound_list: List[int] = []
        # Telemetry.
        self.peak_pending_kernels = 0
        self.kernels_submitted = 0
        self._pending_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_bound(self) -> int:
        return len(self._bound)

    @property
    def num_waiting_streams(self) -> int:
        return len(self._wait_order)

    @property
    def pending_kernels(self) -> int:
        return self._pending_count

    def executing_kernels(self) -> List[KernelInstance]:
        """Head kernels of every bound stream (the <=32 running kernels)."""
        heads = []
        for swq in self._bound:
            queue = self._streams.get(swq)
            if queue:
                heads.append(queue[0])
        return heads

    # ------------------------------------------------------------------
    # Submission / binding
    # ------------------------------------------------------------------
    def submit(self, kernel: KernelInstance) -> None:
        """A kernel arrives in the pending pool (post launch overhead)."""
        swq = kernel.stream_id
        queue = self._streams.setdefault(swq, deque())
        queue.append(kernel)
        self.kernels_submitted += 1
        self._pending_count += 1
        if self._pending_count > self.peak_pending_kernels:
            self.peak_pending_kernels = self._pending_count
        if swq in self._bound:
            self._refresh_head(swq)
        elif swq not in self._wait_order:
            self._wait_order.append(swq)
            self._bind_waiting_streams()

    def _bind_waiting_streams(self) -> None:
        while self._wait_order and len(self._bound) < self.config.num_hwq:
            if self.bind_policy == "acs":
                swq = self._acs_select()
            elif self.lifo_bind:
                swq = self._wait_order.pop()
            else:
                swq = self._wait_order.popleft()
            queue = self._streams.get(swq)
            if not queue:
                continue
            if self.acs_unguarded and len(queue) > 1:
                # TEST-ONLY bug: drop ACS's same-stream-order guard by
                # reversing the stream FIFO at bind time.
                self._streams[swq] = queue = deque(reversed(queue))
            self._bound[swq] = None
            self._bound_list.append(swq)
            if self.tracer.enabled:
                self.tracer.emit(HWQ_BIND, swq=swq, bound=len(self._bound))
            self._refresh_head(swq)

    def _acs_select(self) -> int:
        """Pop the highest-priority waiting SWQ (ACS binding order).

        Deeper head kernels are descendants that suspended ancestors are
        waiting on (their completion unblocks device-synchronized parents),
        so they bind first; among equals the stream whose head has the
        fewest remaining CTAs wins (shortest-job-first drains HWQs
        fastest); FCFS arrival position breaks remaining ties.  Only
        cross-stream binding order changes — within a stream the kernel
        FIFO is untouched.
        """
        best_index = 0
        best_rank = None
        for index, swq in enumerate(self._wait_order):
            queue = self._streams.get(swq)
            if not queue:
                continue
            head = queue[0]
            rank = (head.spec.depth, -head.unfinished_ctas)
            if best_rank is None or rank > best_rank:
                best_rank = rank
                best_index = index
        swq = self._wait_order[best_index]
        del self._wait_order[best_index]
        return swq

    def _refresh_head(self, swq: int) -> None:
        queue = self._streams.get(swq)
        if queue and queue[0].state is KernelState.PENDING:
            queue[0].state = KernelState.EXECUTING

    # ------------------------------------------------------------------
    # Dispatch iteration
    # ------------------------------------------------------------------
    def dispatchable_kernels(self) -> Iterator[KernelInstance]:
        """Bound-stream head kernels with undispatched CTAs, round-robin.

        The cursor persists across calls so successive dispatch rounds
        rotate fairly over streams, like the RR CTA scheduler in Table II.
        This is the dispatch loop's inner scan, so the head checks are
        plain attribute reads (no property dispatch).
        """
        bound = self._bound_list
        if not bound:
            return
        n = len(bound)
        start = self._rr_cursor % n
        streams = self._streams
        executing = KernelState.EXECUTING
        offsets = range(n - 1, -1, -1) if self.reverse_rr else range(n)
        for offset in offsets:
            index = start + offset
            if index >= n:
                index -= n
            queue = streams.get(bound[index])
            if not queue:
                continue
            head = queue[0]
            if head.state is executing and head.next_cta_index < head.num_ctas:
                self._rr_cursor = (index + 1) % n
                yield head

    # ------------------------------------------------------------------
    # Completion / suspension
    # ------------------------------------------------------------------
    def on_kernel_complete(self, kernel: KernelInstance) -> None:
        """Retire the head kernel of its stream; rebind HWQs as needed."""
        self._retire(kernel, KernelState.COMPLETE)

    def on_kernel_suspended(self, kernel: KernelInstance) -> None:
        """A kernel's CTAs all finished computing but descendants live.

        It no longer executes anything, so it stops occupying a HWQ (the
        Kepler GMU suspends such grids back to the pending pool).  Without
        this, nested dynamic parallelism deadlocks: 32 waiting parents
        would starve the grandchildren they are waiting on.
        """
        self._retire(kernel, KernelState.PENDING)

    def _retire(self, kernel: KernelInstance, state: KernelState) -> None:
        swq = kernel.stream_id
        queue = self._streams.get(swq)
        if not queue or queue[0] is not kernel:
            raise SimulationError(
                f"kernel {kernel.spec.name!r} retired but is not the head "
                f"of stream {swq}"
            )
        queue.popleft()
        self._pending_count -= 1
        kernel.state = state
        if queue:
            self._refresh_head(swq)
        else:
            del self._streams[swq]
            if swq in self._bound:
                del self._bound[swq]
                self._bound_list.remove(swq)
                if self.tracer.enabled:
                    self.tracer.emit(HWQ_RELEASE, swq=swq, bound=len(self._bound))
                self._bind_waiting_streams()

    def drained(self) -> bool:
        return not self._streams and not self._wait_order
