"""Optional DRAM bandwidth model.

Table II's memory system has 6 memory controllers (2 partitions each) with
FR-FCFS queues.  Modeling individual transactions is out of scope for an
approximate-cycle simulator, but the *first-order* effect of bounded DRAM
bandwidth — miss latency inflating when the miss rate approaches the peak
transfer rate — is captured here with an M/M/1-style congestion factor over
a sliding utilization window:

    latency_factor = 1 / (1 - min(utilization, cap))

where utilization is (lines missed in the last window) / (window * peak).
The model is disabled by default (``dram_peak_lines_per_cycle = None``);
enable it to study bandwidth-bound workloads.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple

from repro.errors import ConfigError

#: Utilization is clamped below 1.0 so the queueing factor stays finite.
UTILIZATION_CAP = 0.95


class DramBandwidthModel:
    """Sliding-window DRAM utilization -> miss-latency inflation factor."""

    def __init__(self, peak_lines_per_cycle: float, window_cycles: int):
        if peak_lines_per_cycle <= 0:
            raise ConfigError("peak_lines_per_cycle must be positive")
        if window_cycles <= 0:
            raise ConfigError("window_cycles must be positive")
        self.peak = peak_lines_per_cycle
        self.window = float(window_cycles)
        self._events: Deque[Tuple[float, int]] = deque()  # (time, misses)
        self._window_misses = 0
        self.total_misses = 0
        self.peak_utilization = 0.0

    def _expire(self, now: float) -> None:
        horizon = now - self.window
        events = self._events
        while events and events[0][0] < horizon:
            _, misses = events.popleft()
            self._window_misses -= misses

    def utilization(self, now: float) -> float:
        """Fraction of peak bandwidth consumed over the last window."""
        self._expire(now)
        capacity = self.window * self.peak
        return min(self._window_misses / capacity, 1.0)

    def record(self, now: float, misses: int) -> float:
        """Account ``misses`` line transfers at ``now``; returns the factor.

        The returned multiplier applies to the DRAM portion of the stall
        for accesses issued at this instant.
        """
        if misses < 0:
            raise ConfigError("misses must be non-negative")
        if misses:
            self._events.append((now, misses))
            self._window_misses += misses
            self.total_misses += misses
        utilization = self.utilization(now)
        self.peak_utilization = max(self.peak_utilization, utilization)
        return 1.0 / (1.0 - min(utilization, UTILIZATION_CAP))
