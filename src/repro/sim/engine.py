"""The GPU simulator engine.

Event-driven orchestration of the pieces in this package: root kernels enter
the :class:`~repro.sim.gmu.GMU`, CTAs are dispatched round-robin onto
processor-sharing :class:`~repro.sim.smx.SMX` units, device-side launch
calls fire as the parent CTA's execution crosses each request's
``at_fraction`` progress point, go through the active
:class:`~repro.core.policies.LaunchPolicy`, and (if approved) pay the
:class:`~repro.sim.launch.LaunchUnit`'s ``A*x + b`` latency before
re-entering the GMU as child kernels.  Parent CTAs that finish computing
while their children are alive relinquish SMX resources and wait — the
device-synchronization semantics of Section II-C.

Declined launches (SPAWN's throttling, or a static THRESHOLD) extend the
launching warp's timeline by the serial fallback loop, exactly the
work-redistribution effect the paper exploits; approved launches only add
the header reads and the asynchronous API call cost.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, List, Optional

import numpy as np

from repro.core.metrics import MetricsMonitor
from repro.core.policies import (
    AlwaysLaunchPolicy,
    DecisionKind,
    LaunchPolicy,
    LaunchRequest,
)
from repro.errors import SimulationError
from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    KERNEL_ARRIVAL,
    KERNEL_COMPLETE,
    KERNEL_FIRST_DISPATCH,
    KERNEL_LAUNCH_CALL,
    KERNEL_SUSPEND,
    LAUNCH_DECISION,
    LAUNCH_MERGE,
    NULL_TRACER,
    Tracer,
)
from repro.runtime.streams import PerChildStream, StreamPolicy
from repro.sim.config import WARP_SIZE, GPUConfig
from repro.sim.events import Event, EventQueue
from repro.sim.gmu import GMU
from repro.sim.instances import (
    CTAInstance,
    CTAState,
    KernelInstance,
    KernelState,
    PendingDecision,
)
from repro.sim.kernel import Application, ChildRequest, KernelSpec, spec_from_request
from repro.sim.launch import LaunchUnit
from repro.sim.memory import MemorySystem
from repro.sim.merge import build_merged_spec, merge_key
from repro.sim.smx import SMX
from repro.sim.stats import SimStats


class SimResult:
    """Outcome of one simulated application run."""

    def __init__(self, app_name: str, policy_name: str, stats: SimStats):
        self.app_name = app_name
        self.policy_name = policy_name
        self.stats = stats

    @property
    def makespan(self) -> float:
        return self.stats.makespan

    def summary(self) -> Dict[str, float]:
        return self.stats.summary()

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable payload (see :meth:`from_dict`)."""
        return {
            "app_name": self.app_name,
            "policy_name": self.policy_name,
            "stats": self.stats.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "SimResult":
        """Rebuild a result saved with :meth:`to_dict` (disk cache path)."""
        return cls(
            app_name=payload["app_name"],
            policy_name=payload["policy_name"],
            stats=SimStats.from_dict(payload["stats"]),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"SimResult({self.app_name!r}, policy={self.policy_name!r}, "
            f"makespan={self.makespan:.0f})"
        )


class GPUSimulator:
    """Runs one :class:`~repro.sim.kernel.Application` under one policy."""

    #: Component factories, overridable for differential validation
    #: (:mod:`repro.check.reference` swaps in naive reference
    #: implementations) and for seeding deliberate bugs in conformance
    #: tests.  Production code never overrides these.
    queue_factory = EventQueue
    smx_factory = SMX
    gmu_factory = GMU
    memory_factory = MemorySystem

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        policy: Optional[LaunchPolicy] = None,
        stream_policy: Optional[StreamPolicy] = None,
        *,
        tracer: Optional[Tracer] = None,
        trace_interval: float = 1000.0,
        max_events: int = 20_000_000,
        api_call_cycles: float = 40.0,
        cta_init_cycles: float = 50.0,
        dtbl_coalesce_cycles: float = 150.0,
        max_lines_per_cta: int = 4096,
        latency_hiding: float = 0.35,
        bind_policy: str = "fcfs",
        merge_bug: Optional[str] = None,
    ):
        self.config = config or GPUConfig()
        self.policy = policy or AlwaysLaunchPolicy()
        self.stream_policy = stream_policy or PerChildStream()
        #: Structured event tracer (repro.obs); the disabled default makes
        #: every instrumentation site a single attribute check.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.trace_interval = trace_interval
        self.max_events = max_events
        self.api_call_cycles = api_call_cycles
        self.cta_init_cycles = cta_init_cycles
        self.dtbl_coalesce_cycles = dtbl_coalesce_cycles
        self.max_lines_per_cta = max_lines_per_cta
        if not 0 < latency_hiding <= 1:
            raise SimulationError("latency_hiding must be in (0, 1]")
        self.latency_hiding = latency_hiding
        #: SWQ→HWQ binding policy forwarded to the GMU ("fcfs" or "acs").
        self.bind_policy = bind_policy
        if merge_bug not in (None, "unpadded", "cross_warp"):
            raise SimulationError(f"unknown merge_bug {merge_bug!r}")
        #: TEST-ONLY seeded defects in the merge path ("unpadded" breaks
        #: CTA conservation, "cross_warp" breaks warp-scope isolation);
        #: exists so conformance tests can prove the checker catches them.
        self._merge_bug = merge_bug
        # Per-run state, created in _reset().
        self.queue: EventQueue
        self.smxs: List[SMX]
        self.gmu: GMU
        self.launch_unit: LaunchUnit
        self.memory: MemorySystem
        self.metrics: MetricsMonitor
        self.stats: SimStats

    # ------------------------------------------------------------------
    # Run lifecycle
    # ------------------------------------------------------------------
    def run(self, app: Application) -> SimResult:
        app.validate(self.config)
        self._reset()
        self._app = app
        self._host_index = 0
        self._submit_next_root()
        self.queue.run(self.max_events)
        if self._unfinished_kernels:
            raise SimulationError(
                f"simulation drained with {self._unfinished_kernels} kernels "
                "unfinished (deadlock in the modelled system)"
            )
        self.stats.finalize(self._last_completion)
        self.stats.l2_hits = self.memory.l2.hits
        self.stats.l2_misses = self.memory.l2.misses
        self.stats.peak_ccqs_depth = self.metrics.peak_n
        return SimResult(app.name, self.policy.describe(), self.stats)

    def _reset(self) -> None:
        cfg = self.config
        self.queue = self.queue_factory()
        self.tracer.bind_clock(lambda: self.queue.now)
        self.smxs = [self.smx_factory(i, cfg) for i in range(cfg.num_smx)]
        if self.bind_policy != "fcfs":
            # Only pass the kwarg when non-default so partially-applied
            # factories (conformance tests seed bugs via functools.partial)
            # never see a duplicate keyword.
            self.gmu = self.gmu_factory(
                cfg, tracer=self.tracer, bind_policy=self.bind_policy
            )
        else:
            self.gmu = self.gmu_factory(cfg, tracer=self.tracer)
        self.launch_unit = LaunchUnit(
            cfg.launch, self.queue, self._on_kernel_arrival, tracer=self.tracer
        )
        self.memory = self.memory_factory(
            cfg.memory,
            max_lines_per_cta=self.max_lines_per_cta,
            num_smx=cfg.num_smx,
        )
        self.metrics = MetricsMonitor(window_cycles=cfg.metric_window_cycles)
        self.stats = SimStats(trace_interval=self.trace_interval)
        self.stats.set_capacity(
            warps=cfg.max_warps_per_smx * cfg.num_smx,
            regs=cfg.registers_per_smx * cfg.num_smx,
            shmem=cfg.shared_mem_per_smx * cfg.num_smx,
        )
        self.stream_policy.reset()
        self.policy.bind(self.metrics, cfg)
        self.policy.set_audit(self.tracer.enabled)
        self._kernel_ids = itertools.count()
        self._smx_events: List[Optional[Event]] = [None] * cfg.num_smx
        self._smx_rr = 0
        self._dtbl_pending: Deque[KernelInstance] = deque()
        # Merge buffering (consolidate / aggregate): the active policy
        # advertises its scope; non-merging policies leave it None and the
        # whole machinery stays dormant (one attribute check per hook).
        self._merge_scope: Optional[str] = getattr(
            self.policy, "merge_scope", None
        )
        self._merge_batch: Optional[int] = (
            getattr(self.policy, "batch_ctas", None)
            if self._merge_scope == "cta"
            else None
        )
        # (parent CTA -> compat key -> buffered entries) for cta/block
        # scopes; (parent kernel -> compat key -> entries) for grid scope.
        self._cta_merge: Dict[CTAInstance, Dict[tuple, list]] = {}
        self._grid_merge: Dict[KernelInstance, Dict[tuple, list]] = {}
        self._unfinished_kernels = 0
        self._last_completion = 0.0
        self._res_parent_ctas = 0
        self._res_child_ctas = 0
        self._res_total_ctas = 0  # resident CTAs GPU-wide (free-slot math)
        self._res_warps = 0
        self._res_regs = 0
        self._res_shmem = 0
        self._dispatching = False
        # CTA shapes that failed placement this dispatch pass (re-seeded at
        # the top of every _dispatch call).
        self._failed_shapes: set = set()

    def _submit_next_root(self) -> None:
        spec = self._app.kernels[self._host_index]
        kernel = KernelInstance(
            next(self._kernel_ids), spec, stream_id=self._host_index, is_child=False
        )
        kernel.record.launch_call_time = self.queue.now
        if self.tracer.enabled:
            self.tracer.emit(
                KERNEL_LAUNCH_CALL,
                kernel_id=kernel.kernel_id,
                kernel=spec.name,
                is_child=False,
                num_ctas=kernel.num_ctas,
                stream=kernel.stream_id,
            )
        self._unfinished_kernels += 1
        self._on_kernel_arrival(kernel)

    # ------------------------------------------------------------------
    # Kernel arrival and dispatch
    # ------------------------------------------------------------------
    def _on_kernel_arrival(self, kernel: KernelInstance) -> None:
        kernel.record.arrival_time = self.queue.now
        self.stats.kernels[kernel.kernel_id] = kernel.record
        self.gmu.submit(kernel)
        if self.tracer.enabled:
            self.tracer.emit(
                KERNEL_ARRIVAL,
                kernel_id=kernel.kernel_id,
                kernel=kernel.spec.name,
                is_child=kernel.is_child,
                num_ctas=kernel.num_ctas,
                stream=kernel.stream_id,
                pending=self.gmu.pending_kernels,
            )
        self._dispatch()

    def _on_dtbl_arrival(self, kernel: KernelInstance) -> None:
        kernel.record.arrival_time = self.queue.now
        kernel.state = KernelState.EXECUTING
        kernel.via_dtbl = True
        self.stats.kernels[kernel.kernel_id] = kernel.record
        self._dtbl_pending.append(kernel)
        if self.tracer.enabled:
            self.tracer.emit(
                KERNEL_ARRIVAL,
                kernel_id=kernel.kernel_id,
                kernel=kernel.spec.name,
                is_child=kernel.is_child,
                num_ctas=kernel.num_ctas,
                stream=kernel.stream_id,
                via_dtbl=True,
            )
        self._dispatch()

    def _dispatch(self) -> None:
        """Place as many CTAs as resources allow (RR over kernels and SMXs)."""
        if self._dispatching:
            # Nested completion notifications re-enter here; the outer loop
            # picks up any newly dispatchable work.
            return
        self._dispatching = True
        # Within one dispatch pass resources only shrink, so a CTA shape
        # that failed to fit once cannot fit later in the same pass.
        self._failed_shapes = set()
        try:
            while self._dispatch_round():
                pass
        finally:
            self._dispatching = False

    def _dispatch_round(self) -> bool:
        free_slots = (
            self.config.max_ctas_per_smx * len(self.smxs) - self._res_total_ctas
        )
        if free_slots == 0:
            return False
        placed = False
        for kernel in self.gmu.dispatchable_kernels():
            if self._place_cta_of(kernel):
                placed = True
                free_slots -= 1
                if free_slots == 0:
                    return placed
        while self._dtbl_pending:
            head = self._dtbl_pending[0]
            if not head.has_undispatched_ctas:
                self._dtbl_pending.popleft()
                continue
            if not self._place_cta_of(head):
                break
            placed = True
        return placed

    def _place_cta_of(self, kernel: KernelInstance) -> bool:
        spec = kernel.spec
        shape = (
            spec.threads_per_cta,
            spec.threads_per_cta * spec.regs_per_thread,
            spec.shmem_per_cta,
        )
        if shape in self._failed_shapes:
            return False
        smx = self._find_smx(threads=shape[0], regs=shape[1], shmem=shape[2])
        if smx is None:
            self._failed_shapes.add(shape)
            return False
        self._dispatch_cta(kernel, smx)
        return True

    def _find_smx(self, *, threads: int, regs: int, shmem: int) -> Optional[SMX]:
        n = len(self.smxs)
        max_ctas = self.config.max_ctas_per_smx
        for offset in range(n):
            smx = self.smxs[(self._smx_rr + offset) % n]
            if len(smx.resident) >= max_ctas:
                continue
            if smx.can_fit(threads=threads, regs=regs, shmem=shmem):
                self._smx_rr = (self._smx_rr + offset + 1) % n
                return smx
        return None

    # ------------------------------------------------------------------
    # CTA dispatch: footprint, timing, decision points
    # ------------------------------------------------------------------
    def _dispatch_cta(self, kernel: KernelInstance, smx: SMX) -> None:
        now = self.queue.now
        spec = kernel.spec
        cta_index = kernel.take_next_cta_index()
        threads = spec.cta_thread_range(cta_index)
        start, stop = threads.start, threads.stop
        if kernel.record.first_dispatch_time is None:
            kernel.record.first_dispatch_time = now
            if self.tracer.enabled:
                self.tracer.emit(
                    KERNEL_FIRST_DISPATCH,
                    ts=now,
                    kernel_id=kernel.kernel_id,
                    kernel=spec.name,
                    queuing_latency=kernel.record.queuing_latency,
                )

        items = spec.thread_items[start:stop]
        # Memory footprint of the CTA's unconditional work.
        if spec.mem_bases is None:
            stall = self.memory.stall_cycles(1.0)
        elif spec.contiguous_footprint:
            base = int(spec.mem_bases[start])
            extent = (
                int(spec.mem_bases[stop - 1])
                - base
                + int(items[-1]) * spec.mem_stride
            )
            stall, _ = self.memory.cta_access([(base, extent)], smx.index, now)
        else:
            bases = spec.mem_bases[start:stop]
            stall, _ = self.memory.cta_access_arrays(
                bases, items * spec.mem_stride, smx.index, now
            )

        # Per-warp critical path and issue occupancy.
        cost_total = spec.cycles_per_item + spec.accesses_per_item * stall
        issue_frac = spec.cycles_per_item / cost_total if cost_total > 0 else 0.0
        n = stop - start
        init = self.cta_init_cycles
        num_warps = (n + WARP_SIZE - 1) // WARP_SIZE
        if spec.contiguous_footprint:
            # Uniform child grid: every warp's max is items_per_thread
            # (the remainder thread is never alone with a smaller count
            # unless it is the only thread in the CTA).
            per_warp = int(items[0]) if n > 1 else int(items[-1])
            wt = init + per_warp * cost_total
            wi = init + per_warp * cost_total * issue_frac
            warp_total = [wt] * num_warps
            warp_issue = [wi] * num_warps
        else:
            thread_total = items * cost_total
            warp_starts = np.arange(0, n, WARP_SIZE)
            warp_max = np.maximum.reduceat(thread_total, warp_starts)
            warp_total = (init + warp_max).tolist()
            warp_issue = (init + warp_max * issue_frac).tolist()

        decisions: List[PendingDecision] = []
        if spec.child_requests:
            for tid in range(start, stop):
                reqs = spec.child_requests.get(tid)
                if not reqs:
                    continue
                warp = (tid - start) // WARP_SIZE
                for req in reqs:
                    decisions.append(
                        PendingDecision(
                            at_consumed=req.at_fraction * warp_total[warp],
                            warp=warp,
                            tid=tid,
                            request=req,
                        )
                    )

        cta = CTAInstance(
            kernel,
            cta_index,
            num_threads=spec.threads_per_cta,
            num_warps=len(warp_total),
            regs=spec.threads_per_cta * spec.regs_per_thread,
            shmem=spec.shmem_per_cta,
            warp_total=warp_total,
            warp_issue=warp_issue,
            decisions=decisions,
            demand_scale=self.latency_hiding,
        )
        executed = int(items.sum())
        if kernel.is_child:
            self.stats.items_in_child += executed
        else:
            self.stats.items_in_parent += executed
        self._place_on_smx(cta, smx, now)

    def _place_on_smx(self, cta: CTAInstance, smx: SMX, now: float) -> None:
        smx.add(cta, now)
        cta.dispatch_time = now
        if self.tracer.enabled:
            self.tracer.emit(
                CTA_DISPATCH,
                ts=now,
                kernel_id=cta.kernel.kernel_id,
                kernel=cta.kernel.spec.name,
                cta_index=cta.cta_index,
                smx=smx.index,
                is_child=cta.is_child,
                warps=cta.num_warps,
                threads=cta.num_threads,
                regs=cta.regs,
                shmem=cta.shmem,
            )
        if cta.is_child:
            self.metrics.on_cta_started(now)
            self._res_child_ctas += 1
        else:
            self._res_parent_ctas += 1
        self._res_total_ctas += 1
        self._res_warps += cta.num_warps
        self._res_regs += cta.regs
        self._res_shmem += cta.shmem
        self._record_state()
        self._reschedule_smx(smx)

    # ------------------------------------------------------------------
    # Launch decisions (fired on the progress axis)
    # ------------------------------------------------------------------
    def _process_decisions(self, cta: CTAInstance, smx: SMX, now: float) -> None:
        fired = cta.pop_fired_decisions()
        if not fired:
            return
        kernel = cta.kernel
        spec = kernel.spec
        batches: Dict[int, List[KernelInstance]] = {}
        # Warp-scope aggregation groups within ONE decision pass: requests
        # fired together by the same warp merge; nothing is buffered across
        # passes (a warp's lanes launch in lockstep or not at all).
        warp_groups: Dict[tuple, list] = {}
        for decision in fired:
            req = decision.request
            kind = self.policy.decide(
                LaunchRequest(
                    time=now,
                    items=req.items,
                    num_ctas=req.num_ctas,
                    items_per_thread=req.items_per_thread,
                    depth=spec.depth + 1,
                )
            )
            if kind is DecisionKind.SERIAL:
                if self.tracer.enabled:
                    self._trace_decision(kind, decision, req, cta, now, None)
                self._apply_serial(cta, decision, req)
                continue
            if kind is DecisionKind.REUSE:
                if self.tracer.enabled:
                    self._trace_decision(kind, decision, req, cta, now, None)
                self._apply_reuse(cta, req)
                continue
            if kind is DecisionKind.CONSOLIDATE or kind is DecisionKind.AGGREGATE:
                if self.tracer.enabled:
                    self._trace_decision(kind, decision, req, cta, now, None)
                if kind is DecisionKind.CONSOLIDATE:
                    self.stats.child_kernels_consolidated += 1
                else:
                    self.stats.child_kernels_aggregated += 1
                # The parent still pays the launch API cost and waits on
                # the eventual merged kernel; only kernel creation is
                # deferred to the flush point.
                cta.outstanding_children += 1
                self._apply_launch_cost(cta, decision, req)
                self._buffer_merge(cta, decision, req, now, warp_groups)
                continue
            child = self._make_child_kernel(kernel, cta, req)
            if self.tracer.enabled:
                self._trace_decision(kind, decision, req, cta, now, child)
            self.metrics.advance(now)
            self.metrics.on_ctas_admitted(child.num_ctas)
            self.stats.child_kernels_launched += 1
            self.stats.child_ctas_launched += child.num_ctas
            self.stats.launch_times.append(now)
            cta.outstanding_children += 1
            self._apply_launch_cost(cta, decision, req)
            if kind is DecisionKind.COALESCE:
                child.record.launch_call_time = now
                self.queue.schedule_in(
                    self.dtbl_coalesce_cycles,
                    lambda k=child: self._on_dtbl_arrival(k),
                )
            else:
                batches.setdefault(decision.warp, []).append(child)
        for (warp, _mkey), entries in warp_groups.items():
            merged = self._flush_merge_group(entries, now)
            batches.setdefault(warp, []).append(merged)
        for batch in batches.values():
            self.launch_unit.submit_batch(batch)
        smx.refresh_demand(cta, now)

    def _trace_decision(
        self,
        kind: DecisionKind,
        decision: PendingDecision,
        req: ChildRequest,
        cta: CTAInstance,
        now: float,
        child: Optional[KernelInstance],
    ) -> None:
        """Emit one launch-decision event, with the SPAWN audit payload.

        ``policy.decision_audit()`` contributes the monitored inputs
        (``n``, ``n_con``, ``t_cta``, ``t_warp``) and the Equation 1/2
        estimates when the active policy has a prediction model; the audit
        layer joins launched decisions with the child's completion event.
        """
        args: Dict[str, object] = {
            "verdict": kind.value,
            "items": req.items,
            "num_ctas": req.num_ctas,
            "depth": cta.kernel.spec.depth + 1,
            "parent_kernel_id": cta.kernel.kernel_id,
            "cta_index": cta.cta_index,
            "smx": cta.smx_index,
            "warp": decision.warp,
            "tid": decision.tid,
        }
        if child is not None:
            args["child_kernel_id"] = child.kernel_id
        audit = self.policy.decision_audit()
        if audit is not None:
            args.update(audit)
        self.tracer.emit(LAUNCH_DECISION, ts=now, **args)

    def _apply_serial(
        self, cta: CTAInstance, decision: PendingDecision, req: ChildRequest
    ) -> None:
        """The parent thread performs the offloadable work in a loop."""
        stall, _ = self.memory.cta_access(
            [(req.mem_base, req.items * req.mem_stride)],
            cta.smx_index,
            self.queue.now,
        )
        total = req.items * (req.cycles_per_item + req.accesses_per_item * stall)
        issue = req.items * req.cycles_per_item
        cta.extend_thread(decision.warp, decision.tid, total, issue)
        self.stats.items_in_parent += req.items
        self.stats.child_kernels_declined += 1

    def _apply_reuse(self, cta: CTAInstance, req: ChildRequest) -> None:
        """Free Launch: spread the child's work over the parent CTA's lanes.

        Every warp of the parent CTA picks up an equal share of the items;
        shares from successive reused children accumulate (the reuse queue
        drains work through the same resident threads).
        """
        stall, _ = self.memory.cta_access(
            [(req.mem_base, req.items * req.mem_stride)],
            cta.smx_index,
            self.queue.now,
        )
        per_lane = -(-req.items // cta.num_threads)  # ceil: SIMT lockstep
        total = per_lane * (req.cycles_per_item + req.accesses_per_item * stall)
        issue = per_lane * req.cycles_per_item
        for warp in range(cta.num_warps):
            # A per-warp sentinel "thread" accumulates reuse shares so that
            # successive reused children stack instead of overlapping.
            cta.extend_thread(warp, -(warp + 1), total, issue)
        self.stats.items_in_parent += req.items
        self.stats.child_kernels_reused += 1

    def _apply_launch_cost(
        self, cta: CTAInstance, decision: PendingDecision, req: ChildRequest
    ) -> None:
        """Header reads plus the asynchronous launch API call."""
        header = min(cta.kernel.spec.header_items, req.items)
        stall, _ = self.memory.cta_access(
            [(req.mem_base, header * req.mem_stride)],
            cta.smx_index,
            self.queue.now,
        )
        total = (
            header * (req.cycles_per_item + req.accesses_per_item * stall)
            + self.api_call_cycles
        )
        issue = header * req.cycles_per_item + self.api_call_cycles
        cta.extend_thread(decision.warp, decision.tid, total, issue)

    def _make_child_kernel(
        self, parent: KernelInstance, parent_cta: CTAInstance, req: ChildRequest
    ) -> KernelInstance:
        child_spec = spec_from_request(req, depth=parent.spec.depth + 1)
        stream = self.stream_policy.stream_for(parent.kernel_id, parent_cta.cta_index)
        child = KernelInstance(
            next(self._kernel_ids),
            child_spec,
            stream_id=stream,
            is_child=True,
            parent_cta=parent_cta,
            items_per_thread=req.items_per_thread,
        )
        self._unfinished_kernels += 1
        return child

    # ------------------------------------------------------------------
    # Merged launches (consolidate / aggregate)
    # ------------------------------------------------------------------
    def _buffer_merge(
        self,
        cta: CTAInstance,
        decision: PendingDecision,
        req: ChildRequest,
        now: float,
        warp_groups: Dict[tuple, list],
    ) -> None:
        """Buffer one admitted request until its scope's flush point."""
        scope = self._merge_scope
        mkey = merge_key(req)
        entry = (cta, decision, req)
        if scope == "warp":
            warp = 0 if self._merge_bug == "cross_warp" else decision.warp
            warp_groups.setdefault((warp, mkey), []).append(entry)
            return
        if scope == "grid":
            bucket = self._grid_merge.setdefault(cta.kernel, {})
            bucket.setdefault(mkey, []).append(entry)
            return
        # "cta" (consolidate) and "block" (aggregate:block) buffer per
        # parent CTA.  Consolidate additionally flushes a compat group the
        # moment it accumulates batch_ctas child CTAs, so the batch size
        # caps merged-kernel granularity.
        bucket = self._cta_merge.setdefault(cta, {})
        entries = bucket.setdefault(mkey, [])
        entries.append(entry)
        if self._merge_batch is not None:
            total = sum(e[2].num_ctas for e in entries)
            if total >= self._merge_batch:
                del bucket[mkey]
                merged = self._flush_merge_group(entries, now)
                self.launch_unit.submit_batch([merged])

    def _flush_merge_group(self, entries: list, now: float) -> KernelInstance:
        """Turn one compat group of buffered requests into a merged kernel.

        Shared between engines (the fast core does not override it), so the
        construction, stats, and trace events are bit-identical by design.
        """
        reqs = [entry[2] for entry in entries]
        leader = entries[0][0]
        parent = leader.kernel
        spec = build_merged_spec(
            reqs,
            depth=parent.spec.depth + 1,
            unpadded=self._merge_bug == "unpadded",
        )
        stream = self.stream_policy.stream_for(parent.kernel_id, leader.cta_index)
        child = KernelInstance(
            next(self._kernel_ids),
            spec,
            stream_id=stream,
            is_child=True,
            items_per_thread=reqs[0].items_per_thread,
        )
        counts: Dict[CTAInstance, int] = {}
        for parent_cta, _, _ in entries:
            counts[parent_cta] = counts.get(parent_cta, 0) + 1
        child.merged_parents = list(counts.items())
        self._unfinished_kernels += 1
        self.metrics.advance(now)
        self.metrics.on_ctas_admitted(child.num_ctas)
        self.stats.merged_kernels_launched += 1
        self.stats.child_ctas_launched += child.num_ctas
        self.stats.launch_times.append(now)
        if self.tracer.enabled:
            self.tracer.emit(
                LAUNCH_MERGE,
                ts=now,
                child_kernel_id=child.kernel_id,
                kernel=spec.name,
                scope=self._merge_scope,
                num_ctas=child.num_ctas,
                num_requests=len(reqs),
                stream=stream,
                src=[
                    [c.kernel.kernel_id, c.cta_index, d.warp, d.tid, r.num_ctas]
                    for c, d, r in entries
                ],
            )
        return child

    def _flush_cta_merge(self, cta: CTAInstance, now: float) -> None:
        bucket = self._cta_merge.pop(cta, None)
        if not bucket:
            return
        children = [
            self._flush_merge_group(entries, now) for entries in bucket.values()
        ]
        self.launch_unit.submit_batch(children)

    def _flush_grid_merge(self, kernel: KernelInstance, now: float) -> None:
        bucket = self._grid_merge.pop(kernel, None)
        if not bucket:
            return
        children = [
            self._flush_merge_group(entries, now) for entries in bucket.values()
        ]
        self.launch_unit.submit_batch(children)

    # ------------------------------------------------------------------
    # Completion handling
    # ------------------------------------------------------------------
    def _reschedule_smx(self, smx: SMX) -> None:
        event = self._smx_events[smx.index]
        if event is not None:
            event.cancel()
            self._smx_events[smx.index] = None
        when = smx.next_event_time(self.queue.now)
        if when is not None:
            self._smx_events[smx.index] = self.queue.schedule(
                max(when, self.queue.now),
                lambda s=smx: self._on_smx_event(s),
            )

    def _on_smx_event(self, smx: SMX) -> None:
        self._smx_events[smx.index] = None
        now = self.queue.now
        smx.advance(now)
        progressed = False
        for cta in smx.ctas_with_fired_decisions():
            self._process_decisions(cta, smx, now)
            progressed = True
        finished = smx.pop_finished(now)
        if finished:
            progressed = True
            for cta in finished:
                self._detach_cta(cta, smx, now)
            self._record_state()
            for cta in finished:
                self._on_cta_compute_done(cta, now)
            self._dispatch()
        if progressed:
            self._reschedule_smx(smx)
        else:
            # Pure float drift: nudge strictly forward so we cannot spin.
            when = smx.next_event_time(now)
            if when is not None:
                self._smx_events[smx.index] = self.queue.schedule(
                    max(when, now + 1e-3), lambda s=smx: self._on_smx_event(s)
                )

    def _detach_cta(self, cta: CTAInstance, smx: SMX, now: float) -> None:
        if cta.is_child:
            self._res_child_ctas -= 1
        else:
            self._res_parent_ctas -= 1
        self._res_total_ctas -= 1
        self._res_warps -= cta.num_warps
        self._res_regs -= cta.regs
        self._res_shmem -= cta.shmem
        cta.compute_done_time = now
        if self.tracer.enabled:
            self.tracer.emit(
                CTA_FINISH,
                ts=now,
                kernel_id=cta.kernel.kernel_id,
                cta_index=cta.cta_index,
                smx=smx.index,
                is_child=cta.is_child,
                exec_time=now - cta.dispatch_time,
            )

    def _on_cta_compute_done(self, cta: CTAInstance, now: float) -> None:
        kernel = cta.kernel
        kernel.computing_ctas -= 1
        if cta.is_child:
            exec_time = cta.exec_time
            self.stats.child_cta_exec_times.append(exec_time)
            self.metrics.on_cta_finished(now, exec_time, kernel.items_per_thread)
        if self._merge_scope is not None:
            # cta/block scopes flush this CTA's remaining buffers now (the
            # CTA can issue no further launches); grid scope flushes when
            # the whole grid has finished computing.
            self._flush_cta_merge(cta, now)
            if kernel.computing_ctas == 0:
                self._flush_grid_merge(kernel, now)
        if cta.outstanding_children == 0:
            self._cta_fully_done(cta)
        else:
            # Device-synchronization: resources already relinquished; the
            # CTA completes when its children (and their descendants) do.
            cta.state = CTAState.WAITING_CHILDREN
        if (
            kernel.computing_ctas == 0
            and kernel.unfinished_ctas > 0
            and not kernel.hwq_released
            and not kernel.via_dtbl
        ):
            # Every CTA is done computing; the kernel only waits on
            # descendants now, so it releases its HWQ (grid suspension).
            kernel.hwq_released = True
            if self.tracer.enabled:
                self.tracer.emit(
                    KERNEL_SUSPEND,
                    ts=now,
                    kernel_id=kernel.kernel_id,
                    kernel=kernel.spec.name,
                    stream=kernel.stream_id,
                )
            self.gmu.on_kernel_suspended(kernel)
            self._dispatch()

    def _cta_fully_done(self, cta: CTAInstance) -> None:
        cta.state = CTAState.DONE
        if cta.kernel.cta_finished():
            self._on_kernel_complete(cta.kernel)

    def _on_kernel_complete(self, kernel: KernelInstance) -> None:
        now = self.queue.now
        kernel.record.completion_time = now
        self._unfinished_kernels -= 1
        self._last_completion = now
        if self.tracer.enabled:
            self.tracer.emit(
                KERNEL_COMPLETE,
                ts=now,
                kernel_id=kernel.kernel_id,
                kernel=kernel.spec.name,
                is_child=kernel.is_child,
                stream=kernel.stream_id,
                via_dtbl=kernel.via_dtbl,
                suspended=kernel.hwq_released and not kernel.via_dtbl,
            )
        if kernel.via_dtbl:
            if kernel in self._dtbl_pending:
                self._dtbl_pending.remove(kernel)
            kernel.state = KernelState.COMPLETE
        elif kernel.hwq_released:
            kernel.state = KernelState.COMPLETE
        else:
            kernel.hwq_released = True
            self.gmu.on_kernel_complete(kernel)
        parent_cta = kernel.parent_cta
        if kernel.merged_parents is not None:
            # A merged kernel answers to every contributing parent CTA:
            # each sees as many completions as requests it contributed.
            for contributor, count in kernel.merged_parents:
                contributor.outstanding_children -= count
                if (
                    contributor.state is CTAState.WAITING_CHILDREN
                    and contributor.outstanding_children == 0
                ):
                    self._cta_fully_done(contributor)
        elif parent_cta is not None:
            parent_cta.outstanding_children -= 1
            if (
                parent_cta.state is CTAState.WAITING_CHILDREN
                and parent_cta.outstanding_children == 0
            ):
                self._cta_fully_done(parent_cta)
        elif self._host_index + 1 < len(self._app.kernels):
            self._host_index += 1
            self._submit_next_root()
        self._dispatch()

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _record_state(self) -> None:
        self.stats.record_state(
            self.queue.now,
            parent_ctas=self._res_parent_ctas,
            child_ctas=self._res_child_ctas,
            warps=self._res_warps,
            regs=self._res_regs,
            shmem=self._res_shmem,
        )
