"""Runtime state for kernels and CTAs inside the simulator.

:class:`KernelSpec` (static description) becomes a :class:`KernelInstance`
when submitted to the GPU; each dispatched CTA becomes a
:class:`CTAInstance`.  These objects carry the mutable bookkeeping the GMU,
SMXs, and SPAWN metrics operate on.

CTA progress model: a CTA's *consumed* work advances uniformly (all its
warps progress together under processor sharing); warp ``w`` finishes when
``consumed >= warp_total[w]``, so the CTA's compute completes at
``max(warp_total)``.  Launch decisions are *pending events on the progress
axis*: decision ``d`` fires when ``consumed`` crosses ``d.at_consumed``.
A decision that keeps the work in the parent (SERIAL) extends its warp's
``warp_total``, lengthening the CTA exactly the way a serial fallback loop
lengthens a real parent thread.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.errors import SimulationError
from repro.sim.kernel import ChildRequest, KernelSpec
from repro.sim.stats import KernelRecord

#: Completion slack on the progress axis.
EPSILON = 1e-6


class KernelState(enum.Enum):
    PENDING = "pending"  # in the GMU but its stream not yet bound to a HWQ
    EXECUTING = "executing"  # head of a bound stream; CTAs dispatchable
    COMPLETE = "complete"


class CTAState(enum.Enum):
    RUNNING = "running"  # resident on an SMX
    WAITING_CHILDREN = "waiting"  # compute done, resources relinquished
    DONE = "done"


class KernelInstance:
    """One submitted kernel grid and its dispatch/completion bookkeeping."""

    __slots__ = (
        "kernel_id",
        "spec",
        "stream_id",
        "is_child",
        "parent_cta",
        "state",
        "num_ctas",
        "next_cta_index",
        "unfinished_ctas",
        "record",
        "items_per_thread",
        "via_dtbl",
        "computing_ctas",
        "hwq_released",
        "merged_parents",
    )

    def __init__(
        self,
        kernel_id: int,
        spec: KernelSpec,
        stream_id: int,
        *,
        is_child: bool,
        parent_cta: Optional["CTAInstance"] = None,
        items_per_thread: int = 1,
    ):
        self.kernel_id = kernel_id
        self.spec = spec
        self.stream_id = stream_id
        self.is_child = is_child
        self.parent_cta = parent_cta
        self.state = KernelState.PENDING
        self.num_ctas = spec.num_ctas  # cached: hot in the dispatch loop
        self.next_cta_index = 0
        self.unfinished_ctas = self.num_ctas
        self.items_per_thread = items_per_thread
        #: True when the kernel's CTAs were coalesced via DTBL and never
        #: entered the GMU / a hardware work queue.
        self.via_dtbl = False
        #: CTAs still executing compute (not merely waiting on children).
        self.computing_ctas = self.num_ctas
        #: True once the kernel released its HWQ (completed or suspended).
        self.hwq_released = False
        #: Merged kernels (consolidate/aggregate) track every contributing
        #: parent CTA with its request count here; ``parent_cta`` stays
        #: None because no single CTA owns the kernel.
        self.merged_parents: Optional[List[tuple]] = None
        self.record = KernelRecord(
            kernel_id=kernel_id,
            name=spec.name,
            is_child=is_child,
            depth=spec.depth,
            num_ctas=self.num_ctas,
            stream_id=stream_id,
        )

    @property
    def has_undispatched_ctas(self) -> bool:
        return self.next_cta_index < self.num_ctas

    def take_next_cta_index(self) -> int:
        if not self.has_undispatched_ctas:
            raise SimulationError(
                f"kernel {self.spec.name!r} has no CTAs left to dispatch"
            )
        index = self.next_cta_index
        self.next_cta_index += 1
        return index

    def cta_finished(self) -> bool:
        """Mark one CTA fully done; True if the whole kernel completed."""
        if self.unfinished_ctas <= 0:
            raise SimulationError(
                f"kernel {self.spec.name!r} finished more CTAs than it has"
            )
        self.unfinished_ctas -= 1
        return self.unfinished_ctas == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"KernelInstance(id={self.kernel_id}, name={self.spec.name!r}, "
            f"state={self.state.value})"
        )


class PendingDecision:
    """A launch call that fires when the CTA's progress crosses a point."""

    __slots__ = ("at_consumed", "warp", "tid", "request")

    def __init__(
        self, at_consumed: float, warp: int, tid: int, request: ChildRequest
    ):
        self.at_consumed = at_consumed
        self.warp = warp
        self.tid = tid  # global thread index within the kernel grid
        self.request = request

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PendingDecision(at_consumed={self.at_consumed}, "
            f"warp={self.warp}, tid={self.tid})"
        )


class CTAInstance:
    """One CTA resident on (or relinquished from) an SMX."""

    __slots__ = (
        "kernel",
        "cta_index",
        "num_threads",
        "num_warps",
        "regs",
        "shmem",
        "consumed",
        "warp_total",
        "warp_issue",
        "demand",
        "state",
        "smx_index",
        "dispatch_time",
        "compute_done_time",
        "outstanding_children",
        "decisions",
        "next_decision",
        "next_target",
        "total_work",
        "warp_base_total",
        "warp_base_issue",
        "_thread_extra",
        "_warp_extra",
        "demand_scale",
    )

    def __init__(
        self,
        kernel: KernelInstance,
        cta_index: int,
        *,
        num_threads: int,
        num_warps: int,
        regs: int,
        shmem: int,
        warp_total: List[float],
        warp_issue: List[float],
        decisions: Optional[List[PendingDecision]] = None,
        demand_scale: float = 1.0,
    ):
        if len(warp_total) != num_warps or len(warp_issue) != num_warps:
            raise SimulationError("warp arrays must match num_warps")
        if any(t <= 0 for t in warp_total):
            raise SimulationError("warp_total entries must be positive")
        self.kernel = kernel
        self.cta_index = cta_index
        self.num_threads = num_threads
        self.num_warps = num_warps
        self.regs = regs
        self.shmem = shmem
        self.consumed = 0.0
        self.warp_total = warp_total
        self.warp_issue = warp_issue
        # Decision-time extensions: serial fallbacks within one thread
        # accumulate (the thread loops), but across threads of a warp they
        # overlap in SIMT lockstep, so a warp's extension is the MAX over
        # its threads.  warp_total = warp_base_total + that max.  The base
        # snapshots and per-thread maps are materialized lazily on the first
        # ``extend_thread`` call — most CTAs (all pure children) are never
        # extended, and until then warp_total is the base.
        self.warp_base_total = warp_total
        self.warp_base_issue = warp_issue
        self._thread_extra: Optional[dict] = None  # tid -> [total, issue]
        self._warp_extra: Optional[dict] = None  # warp -> [max total, issue]
        #: Inter-warp latency hiding: only this fraction of a warp's issue
        #: occupancy contends for SMX issue slots (stalled warps yield).
        self.demand_scale = demand_scale
        self.demand = self._compute_demand()
        self.state = CTAState.RUNNING
        self.smx_index = -1
        self.dispatch_time = 0.0
        self.compute_done_time: Optional[float] = None
        self.outstanding_children = 0
        self.decisions = sorted(decisions or [], key=lambda d: d.at_consumed)
        self.next_decision = 0
        #: Critical-path length in cycles; maintained by ``extend_thread``.
        self.total_work = max(warp_total)
        for d in self.decisions:
            if d.at_consumed > self.total_work + EPSILON:
                raise SimulationError(
                    "decision point beyond the CTA's base critical path"
                )
        #: The progress point of the CTA's next event: its first unfired
        #: decision if any remain, else the critical-path end.  Maintained
        #: by ``pop_fired_decisions`` / ``extend_thread`` so the SMX event
        #: horizon is a plain attribute read per resident CTA.
        self.next_target = (
            self.decisions[0].at_consumed if self.decisions else self.total_work
        )

    # -- progress geometry ------------------------------------------------
    @property
    def remaining(self) -> float:
        return max(0.0, self.total_work - self.consumed)

    def _compute_demand(self) -> float:
        demand = 0.0
        for total, issue in zip(self.warp_total, self.warp_issue):
            demand += min(issue / total, 1.0) if total > 0 else 1.0
        return max(demand * self.demand_scale, 1e-3)

    def refresh_demand(self) -> float:
        """Recompute demand after warp work changed; returns the new value."""
        self.demand = self._compute_demand()
        return self.demand

    def extend_thread(
        self, warp: int, tid: int, total_cycles: float, issue_cycles: float
    ) -> None:
        """Add serial-fallback / header work to one thread's timeline.

        The warp's critical path grows to the max extended thread (SIMT
        lockstep: divergent serial loops overlap across the warp's lanes).
        """
        if total_cycles < 0 or issue_cycles < 0:
            raise SimulationError("cannot extend a thread by negative work")
        if self._thread_extra is None:
            # First extension: snapshot the (still pristine) base timelines.
            self._thread_extra = {}
            self._warp_extra = {}
            self.warp_base_total = list(self.warp_total)
            self.warp_base_issue = list(self.warp_issue)
        extra = self._thread_extra.setdefault(tid, [0.0, 0.0])
        extra[0] += total_cycles
        extra[1] += issue_cycles
        warp_extra = self._warp_extra.setdefault(warp, [0.0, 0.0])
        if extra[0] > warp_extra[0]:
            warp_extra[0] = extra[0]
            warp_extra[1] = extra[1]
            self.warp_total[warp] = self.warp_base_total[warp] + warp_extra[0]
            self.warp_issue[warp] = self.warp_base_issue[warp] + warp_extra[1]
            if self.warp_total[warp] > self.total_work:
                self.total_work = self.warp_total[warp]
                if self.next_decision >= len(self.decisions):
                    self.next_target = self.total_work

    # -- decision iteration ------------------------------------------------
    @property
    def next_decision_point(self) -> Optional[float]:
        if self.next_decision < len(self.decisions):
            return self.decisions[self.next_decision].at_consumed
        return None

    def pop_fired_decisions(self) -> List[PendingDecision]:
        """Decisions whose progress point has been crossed."""
        fired: List[PendingDecision] = []
        decisions = self.decisions
        n = len(decisions)
        threshold = self.consumed + EPSILON
        while self.next_decision < n:
            decision = decisions[self.next_decision]
            if decision.at_consumed <= threshold:
                fired.append(decision)
                self.next_decision += 1
            else:
                break
        if fired:
            self.next_target = (
                decisions[self.next_decision].at_consumed
                if self.next_decision < n
                else self.total_work
            )
        return fired

    @property
    def compute_finished(self) -> bool:
        return (
            self.consumed >= self.total_work - EPSILON
            and self.next_decision >= len(self.decisions)
        )

    @property
    def is_child(self) -> bool:
        return self.kernel.is_child

    @property
    def exec_time(self) -> float:
        if self.compute_done_time is None:
            raise SimulationError("CTA exec_time read before compute completed")
        return self.compute_done_time - self.dispatch_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CTAInstance({self.kernel.spec.name!r}#{self.cta_index}, "
            f"consumed={self.consumed:.0f}/{self.total_work:.0f}, "
            f"state={self.state.value})"
        )
