"""Kernel, CTA, and per-thread work descriptions.

The simulator models GPU work at the granularity the paper's mechanism
operates on: kernels are grids of CTAs, CTAs are groups of warps, and every
thread carries an integer number of *work items* (edges to traverse, columns
to multiply, candidate locations to score, ...).  A work item costs
``cycles_per_item`` compute cycles plus ``accesses_per_item`` memory accesses
whose stall time depends on the L2 behaviour at execution time.

Dynamic parallelism enters through :class:`ChildRequest`: a parent thread may
carry a description of the child kernel it *would* launch for its local
workload.  Whether the launch actually happens is decided at runtime by the
active :class:`~repro.core.policies.LaunchPolicy` (Baseline-DP always
launches above a static THRESHOLD; SPAWN consults the CCQS model).  When the
launch is declined, the thread performs the same ``items`` serially — one
item per loop iteration, which is why the paper's Equation 2 estimates the
serial time as ``workload x t_warp``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.errors import ConfigError, ResourceError, WorkloadError
from repro.sim.config import WARP_SIZE, GPUConfig


@dataclass
class ChildRequest:
    """A potential device-side kernel launch attached to one parent thread.

    ``items`` is the amount of offloadable work.  If launched, the child
    kernel has ``ceil(items / items_per_thread)`` threads organised into CTAs
    of ``cta_threads`` threads.  If declined, the parent thread executes the
    same ``items`` serially at the child's per-item cost.

    ``nested`` maps child-thread indices to their own :class:`ChildRequest`
    lists, which is how nested launching applications (AMR) are expressed.

    ``at_fraction`` places the launch *call* within the parent thread's
    execution: 0.0 means the thread evaluates the launch as soon as its CTA
    starts (the BFS pattern — read workload, compare, launch), while a
    grid-stride parent that processes many units sequentially spreads its
    calls across (0, 1).  This is what spaces launch decisions out in time
    and lets SPAWN's monitored metrics converge mid-run (Section IV-A,
    "Accuracy").
    """

    name: str
    items: int
    cta_threads: int
    items_per_thread: int = 1
    regs_per_thread: int = 16
    shmem_per_cta: int = 0
    cycles_per_item: float = 20.0
    accesses_per_item: float = 1.0
    mem_base: int = 0
    mem_stride: int = 4
    at_fraction: float = 0.0
    nested: Dict[int, List["ChildRequest"]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.items <= 0:
            raise WorkloadError(f"child request {self.name!r} with items <= 0")
        if self.cta_threads <= 0 or self.items_per_thread <= 0:
            raise WorkloadError("child CTA dimensions must be positive")
        if self.cycles_per_item < 0 or self.accesses_per_item < 0:
            raise WorkloadError("per-item costs must be non-negative")
        if not 0.0 <= self.at_fraction <= 1.0:
            raise WorkloadError("at_fraction must be within [0, 1]")
        self.nested = normalize_requests(self.nested)
        for tid in self.nested:
            if tid < 0 or tid >= self.num_threads:
                raise WorkloadError(
                    f"nested request bound to thread {tid} outside child grid"
                )

    @property
    def num_threads(self) -> int:
        return math.ceil(self.items / self.items_per_thread)

    @property
    def num_ctas(self) -> int:
        return math.ceil(self.num_threads / self.cta_threads)

    def with_cta_threads(self, cta_threads: int) -> "ChildRequest":
        """Copy of this request with a different CTA size (Fig. 7 sweeps)."""
        return ChildRequest(
            name=self.name,
            items=self.items,
            cta_threads=cta_threads,
            items_per_thread=self.items_per_thread,
            regs_per_thread=self.regs_per_thread,
            shmem_per_cta=self.shmem_per_cta,
            cycles_per_item=self.cycles_per_item,
            accesses_per_item=self.accesses_per_item,
            mem_base=self.mem_base,
            mem_stride=self.mem_stride,
            at_fraction=self.at_fraction,
            nested={
                tid: [req.with_cta_threads(cta_threads) for req in reqs]
                for tid, reqs in self.nested.items()
            },
        )


def normalize_requests(mapping) -> Dict[int, List[ChildRequest]]:
    """Accept {tid: request} or {tid: [requests...]} and return the latter."""
    normalized: Dict[int, List[ChildRequest]] = {}
    for tid, value in mapping.items():
        if isinstance(value, ChildRequest):
            normalized[tid] = [value]
        else:
            reqs = list(value)
            if not reqs or not all(isinstance(r, ChildRequest) for r in reqs):
                raise WorkloadError(
                    f"thread {tid}: child requests must be ChildRequest instances"
                )
            normalized[tid] = reqs
    return normalized


@dataclass
class KernelSpec:
    """Static description of one kernel grid.

    ``thread_items[t]`` is the work thread ``t`` always performs itself
    (reading its vertex record, comparing against THRESHOLD, the serial loop
    for small workloads in a flat variant, ...).  ``child_requests`` attaches
    offloadable work to individual threads.
    """

    name: str
    threads_per_cta: int
    thread_items: np.ndarray
    regs_per_thread: int = 24
    shmem_per_cta: int = 0
    cycles_per_item: float = 20.0
    accesses_per_item: float = 1.0
    mem_bases: Optional[np.ndarray] = None
    mem_stride: int = 4
    child_requests: Dict[int, List[ChildRequest]] = field(default_factory=dict)
    #: Items of the offloadable range the parent touches even when it
    #: launches a child (frontier/header reads) — the source of the
    #: parent<->child locality the paper's Fig. 17 discussion relies on.
    header_items: int = 2
    #: Nesting depth: 0 for host-launched kernels, >=1 for device-launched.
    depth: int = 0
    #: True when per-thread regions tile one contiguous range in thread
    #: order (child grids materialized from a ChildRequest).  Lets the
    #: engine hand the cache model one region instead of one per thread.
    contiguous_footprint: bool = False

    def __post_init__(self) -> None:
        self.thread_items = np.asarray(self.thread_items, dtype=np.int64)
        if self.thread_items.ndim != 1 or self.thread_items.size == 0:
            raise WorkloadError(f"kernel {self.name!r} needs a 1-D non-empty grid")
        if np.any(self.thread_items < 0):
            raise WorkloadError("thread_items must be non-negative")
        if self.threads_per_cta <= 0:
            raise WorkloadError("threads_per_cta must be positive")
        if self.mem_bases is not None:
            self.mem_bases = np.asarray(self.mem_bases, dtype=np.int64)
            if self.mem_bases.shape != self.thread_items.shape:
                raise WorkloadError("mem_bases must align with thread_items")
        self.child_requests = normalize_requests(self.child_requests)
        for tid in self.child_requests:
            if tid < 0 or tid >= self.num_threads:
                raise WorkloadError(
                    f"child request bound to thread {tid} outside kernel grid"
                )

    @property
    def num_threads(self) -> int:
        return int(self.thread_items.size)

    @property
    def num_ctas(self) -> int:
        return math.ceil(self.num_threads / self.threads_per_cta)

    @property
    def warps_per_cta(self) -> int:
        return math.ceil(self.threads_per_cta / WARP_SIZE)

    def cta_thread_range(self, cta_index: int) -> range:
        """Global thread indices covered by CTA ``cta_index``."""
        if not 0 <= cta_index < self.num_ctas:
            raise WorkloadError(
                f"CTA index {cta_index} outside grid of {self.num_ctas}"
            )
        start = cta_index * self.threads_per_cta
        stop = min(start + self.threads_per_cta, self.num_threads)
        return range(start, stop)

    def check_fits(self, config: GPUConfig) -> None:
        """Raise :class:`ResourceError` if a CTA can never fit on one SMX."""
        if self.threads_per_cta > config.max_threads_per_smx:
            raise ResourceError(
                f"kernel {self.name!r}: {self.threads_per_cta} threads/CTA "
                f"exceeds SMX thread limit {config.max_threads_per_smx}"
            )
        regs = self.threads_per_cta * self.regs_per_thread
        if regs > config.registers_per_smx:
            raise ResourceError(
                f"kernel {self.name!r}: CTA needs {regs} registers, SMX has "
                f"{config.registers_per_smx}"
            )
        if self.shmem_per_cta > config.shared_mem_per_smx:
            raise ResourceError(
                f"kernel {self.name!r}: CTA needs {self.shmem_per_cta}B shared "
                f"memory, SMX has {config.shared_mem_per_smx}B"
            )

    def total_child_items(self) -> int:
        """Offloadable work items attached to this kernel's threads."""
        return sum(
            req.items for reqs in self.child_requests.values() for req in reqs
        )

    def num_child_requests(self) -> int:
        return sum(len(reqs) for reqs in self.child_requests.values())

    def with_child_cta_threads(self, cta_threads: int) -> "KernelSpec":
        """Copy with every (transitively nested) child CTA resized (Fig. 7)."""
        return KernelSpec(
            name=self.name,
            threads_per_cta=self.threads_per_cta,
            thread_items=self.thread_items.copy(),
            regs_per_thread=self.regs_per_thread,
            shmem_per_cta=self.shmem_per_cta,
            cycles_per_item=self.cycles_per_item,
            accesses_per_item=self.accesses_per_item,
            mem_bases=None if self.mem_bases is None else self.mem_bases.copy(),
            mem_stride=self.mem_stride,
            child_requests={
                tid: [req.with_cta_threads(cta_threads) for req in reqs]
                for tid, reqs in self.child_requests.items()
            },
            header_items=self.header_items,
            depth=self.depth,
            contiguous_footprint=self.contiguous_footprint,
        )

    def total_items(self) -> int:
        """All work items: unconditional plus offloadable."""
        return int(self.thread_items.sum()) + self.total_child_items()


def spec_from_request(
    req: ChildRequest, *, depth: int, name_suffix: str = ""
) -> KernelSpec:
    """Materialize a :class:`KernelSpec` for a launched :class:`ChildRequest`.

    Child threads each carry ``items_per_thread`` items (the last thread may
    carry the remainder) and read from the parent's offloaded memory range so
    the cache model observes parent->child reuse.
    """
    num_threads = req.num_threads
    items = np.full(num_threads, req.items_per_thread, dtype=np.int64)
    remainder = req.items - (num_threads - 1) * req.items_per_thread
    items[-1] = remainder
    bases = (
        req.mem_base
        + np.arange(num_threads, dtype=np.int64)
        * req.items_per_thread
        * req.mem_stride
    )
    return KernelSpec(
        name=req.name + name_suffix,
        threads_per_cta=min(req.cta_threads, num_threads),
        thread_items=items,
        regs_per_thread=req.regs_per_thread,
        shmem_per_cta=req.shmem_per_cta,
        cycles_per_item=req.cycles_per_item,
        accesses_per_item=req.accesses_per_item,
        mem_bases=bases,
        mem_stride=req.mem_stride,
        child_requests=dict(req.nested),
        depth=depth,
        contiguous_footprint=True,
    )


@dataclass
class Application:
    """A host program: kernels launched sequentially with host sync between.

    ``flat_items`` lets a workload report the total amount of real work so
    the harness can compute the fraction executed inside child kernels
    (the x-axis of the paper's Fig. 5).
    """

    name: str
    kernels: Sequence[KernelSpec]
    flat_items: int = 0

    def __post_init__(self) -> None:
        if not self.kernels:
            raise WorkloadError(f"application {self.name!r} has no kernels")
        if self.flat_items < 0:
            raise WorkloadError("flat_items must be non-negative")

    def validate(self, config: GPUConfig) -> None:
        for spec in self.kernels:
            spec.check_fits(config)


def uses_dynamic_parallelism(app: Application) -> bool:
    """True if any kernel in the application can launch children."""
    return any(spec.child_requests for spec in app.kernels)
