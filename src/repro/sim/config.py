"""GPU configuration (the paper's Table II).

The default :class:`GPUConfig` mirrors the simulated system of the paper: a
Kepler-class GPU (NVIDIA K20m-like) with 13 SMXs, 16 CTAs/SMX (208 concurrent
CTAs GPU-wide), 32 hardware work queues, and the measured device-side launch
latency model ``A*x + b`` with ``A = 1721`` and ``b = 20210`` cycles.

All limits are expressed in the same units the paper uses: cycles for time,
bytes for shared memory, 32-bit registers for the register file.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

from repro.errors import ConfigError

#: Threads per warp on every generation of NVIDIA hardware the paper targets.
WARP_SIZE = 32


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one set-associative cache level."""

    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.line_bytes <= 0 or self.associativity <= 0:
            raise ConfigError("cache dimensions must be positive")
        if self.size_bytes % (self.line_bytes * self.associativity):
            raise ConfigError(
                "cache size must be a multiple of line_bytes * associativity"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class LaunchOverheadConfig:
    """Device-side kernel launch latency model (Table II, bottom row).

    The latency for a warp that launches ``x`` child kernels is
    ``slope_cycles * x + base_cycles`` — the linear model Wang et al. measured
    and the paper adopts.  ``service_slots`` bounds how many warp launch
    batches the runtime can process concurrently; bursts beyond it queue,
    which is how "a large number of API calls cannot be serviced
    simultaneously" manifests.
    """

    slope_cycles: int = 1721
    base_cycles: int = 20210
    service_slots: int = 32

    def __post_init__(self) -> None:
        if self.slope_cycles < 0 or self.base_cycles < 0:
            raise ConfigError("launch latency coefficients must be non-negative")
        if self.service_slots <= 0:
            raise ConfigError("launch service_slots must be positive")

    def latency(self, num_kernels: int) -> int:
        """Latency in cycles for a warp batch launching ``num_kernels``."""
        if num_kernels <= 0:
            raise ConfigError("launch latency queried for a non-positive batch")
        return self.slope_cycles * num_kernels + self.base_cycles


def _default_l1() -> "CacheConfig":
    """Table II's per-SMX L1 D-cache: 16KB, 4-way, 128B lines."""
    return CacheConfig(size_bytes=16 * 1024, line_bytes=128, associativity=4)


@dataclass(frozen=True)
class MemoryConfig:
    """Latency/geometry of the memory hierarchy below the SMXs.

    The per-SMX L1 D-cache of Table II is modeled when ``l1_enabled`` is
    True; by default only the shared L2 is simulated (the paper's Fig. 17
    reports L2 behaviour, and at this reproduction's workload scale the L1
    mostly shifts absolute stall cycles without changing any scheme
    ordering — see DESIGN.md).
    """

    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=1536 * 1024, line_bytes=128, associativity=8
        )
    )
    l1: CacheConfig = field(default_factory=_default_l1)
    l1_enabled: bool = False
    l1_hit_cycles: int = 28
    l2_hit_cycles: int = 120
    dram_cycles: int = 320
    #: Memory-level parallelism: how many outstanding misses a warp overlaps.
    #: Stall cycles per access are divided by this factor.
    mlp: float = 4.0
    #: Optional DRAM bandwidth model (Table II: 6 MCs, 2 partitions each).
    #: Peak line transfers per cycle across all memory controllers; None
    #: disables bandwidth modeling (latency-only DRAM).
    dram_peak_lines_per_cycle: float = None
    #: Averaging window for DRAM utilization, cycles.
    dram_window_cycles: int = 4096

    def __post_init__(self) -> None:
        if self.l1_hit_cycles <= 0 or self.l2_hit_cycles <= 0 or self.dram_cycles <= 0:
            raise ConfigError("memory latencies must be positive")
        if self.dram_cycles < self.l2_hit_cycles:
            raise ConfigError("DRAM latency must be >= L2 hit latency")
        if self.l2_hit_cycles < self.l1_hit_cycles:
            raise ConfigError("L2 hit latency must be >= L1 hit latency")
        if self.l1.line_bytes != self.l2.line_bytes:
            raise ConfigError("L1 and L2 must share a line size")
        if self.mlp <= 0:
            raise ConfigError("mlp must be positive")
        if self.dram_peak_lines_per_cycle is not None:
            if self.dram_peak_lines_per_cycle <= 0:
                raise ConfigError("dram_peak_lines_per_cycle must be positive")
        if self.dram_window_cycles <= 0:
            raise ConfigError("dram_window_cycles must be positive")

    def stall_cycles(self, hit_rate: float, dram_factor: float = 1.0) -> float:
        """Average pipeline stall per memory access at a given L2 hit rate.

        ``dram_factor`` inflates the miss latency under DRAM bandwidth
        congestion (see :mod:`repro.sim.dram`).
        """
        if not 0.0 <= hit_rate <= 1.0:
            raise ConfigError(f"hit rate {hit_rate} outside [0, 1]")
        raw = hit_rate * self.l2_hit_cycles + (
            1.0 - hit_rate
        ) * self.dram_cycles * dram_factor
        return raw / self.mlp

    def stall_cycles_two_level(
        self, l1_rate: float, l2_rate: float, dram_factor: float = 1.0
    ) -> float:
        """Average stall per access with the L1 in front of the L2.

        ``l1_rate`` is the L1 hit rate over all accesses; ``l2_rate`` is the
        L2 hit rate over the L1 *misses*.
        """
        for rate in (l1_rate, l2_rate):
            if not 0.0 <= rate <= 1.0:
                raise ConfigError(f"hit rate {rate} outside [0, 1]")
        miss1 = 1.0 - l1_rate
        raw = (
            l1_rate * self.l1_hit_cycles
            + miss1 * l2_rate * self.l2_hit_cycles
            + miss1 * (1.0 - l2_rate) * self.dram_cycles * dram_factor
        )
        return raw / self.mlp


@dataclass(frozen=True)
class GPUConfig:
    """Whole-GPU configuration; defaults reproduce the paper's Table II."""

    num_smx: int = 13
    clock_mhz: int = 1400
    max_threads_per_smx: int = 2048
    max_ctas_per_smx: int = 16
    max_warps_per_smx: int = 64
    registers_per_smx: int = 64 * 1024 // 4  # 64KB register file, 32-bit regs
    shared_mem_per_smx: int = 48 * 1024  # bytes
    num_hwq: int = 32
    #: Per-SMX issue capacity in warp-instructions per cycle; 5-stage dual
    #: warp scheduler (GTO) approximated as a processor-sharing capacity.
    issue_width: float = 2.0
    #: Max useful issue rate a single warp can sustain (ILP cap).
    per_warp_issue_rate: float = 0.25
    launch: LaunchOverheadConfig = field(default_factory=LaunchOverheadConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: CCQS bound from the Kepler pending-work limit used by SPAWN.
    max_pending_child_ctas: int = 65536
    #: SPAWN metric window (cycles); averages are computed per window and
    #: the paper sizes it so the average is a 10-bit shift.
    metric_window_cycles: int = 1024

    def __post_init__(self) -> None:
        positive_fields = (
            "num_smx",
            "clock_mhz",
            "max_threads_per_smx",
            "max_ctas_per_smx",
            "max_warps_per_smx",
            "registers_per_smx",
            "shared_mem_per_smx",
            "num_hwq",
            "max_pending_child_ctas",
            "metric_window_cycles",
        )
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigError(f"{name} must be positive")
        if self.issue_width <= 0 or self.per_warp_issue_rate <= 0:
            raise ConfigError("issue rates must be positive")
        if self.max_warps_per_smx * WARP_SIZE != self.max_threads_per_smx:
            raise ConfigError(
                "max_threads_per_smx must equal max_warps_per_smx * WARP_SIZE"
            )

    @property
    def max_concurrent_ctas(self) -> int:
        """GPU-wide CTA concurrency limit (208 on the paper's config)."""
        return self.num_smx * self.max_ctas_per_smx

    @property
    def max_concurrent_kernels(self) -> int:
        """Concurrent-kernel limit, set by the number of HWQs."""
        return self.num_hwq

    def replace(self, **kwargs) -> "GPUConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **kwargs)


def kepler_k20m() -> GPUConfig:
    """The paper's simulated system (Table II)."""
    return GPUConfig()


def small_debug_gpu() -> GPUConfig:
    """A tiny configuration that makes unit tests fast and limits easy to hit."""
    return GPUConfig(
        num_smx=2,
        max_threads_per_smx=256,
        max_ctas_per_smx=4,
        max_warps_per_smx=8,
        registers_per_smx=4096,
        shared_mem_per_smx=8 * 1024,
        num_hwq=4,
        launch=LaunchOverheadConfig(slope_cycles=100, base_cycles=500, service_slots=2),
        max_pending_child_ctas=256,
        metric_window_cycles=128,
    )
