"""Single-Source Shortest Path — Table I ``SSSP-citation``/``SSSP-graph500``.

Worklist Bellman-Ford: each round relaxes the out-edges of every vertex
whose distance changed in the previous round, so vertices re-activate and
the total number of (potential) child launches well exceeds BFS on the same
graph.  SSSP launches *many small* child kernels — the regime where launch
overhead dominates, which is why DTBL beats SPAWN here in the paper's
Fig. 21 and why SPAWN's bootstrap mispredicts on graph500 (Section V-B).
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.sim.kernel import Application
from repro.workloads._traversal import TraversalCosts, build_round_kernels
from repro.workloads.base import REGISTRY, Benchmark
from repro.workloads.graphs import CSRGraph, citation_graph, graph500_graph, sssp_rounds

MIN_OFFLOAD = 16

#: Relaxation touches the neighbour's distance as well as the edge weight.
COSTS = TraversalCosts(cycles_per_edge=20.0, accesses_per_edge=2.0)


@functools.lru_cache(maxsize=None)
def _graph(input_name: str, seed: int) -> CSRGraph:
    if input_name == "citation":
        return citation_graph(num_vertices=12000, edges_per_vertex=6, seed=seed)
    if input_name == "graph500":
        return graph500_graph(scale=14, edge_factor=16, seed=seed)
    raise ValueError(f"unknown SSSP input {input_name!r}")


@functools.lru_cache(maxsize=None)
def _rounds(input_name: str, seed: int):
    graph = _graph(input_name, seed)
    source = int(np.argmax(graph.degrees))
    return tuple(sssp_rounds(graph, source, seed=seed))


def build(
    input_name: str,
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the SSSP application for one input and variant."""
    graph = _graph(input_name, seed)
    return build_round_kernels(
        f"SSSP-{input_name}",
        graph,
        _rounds(input_name, seed),
        dp=(variant == "dp"),
        min_offload=MIN_OFFLOAD,
        cta_threads=cta_threads or 64,
        costs=COSTS,
    )


def _register(input_name: str, input_label: str) -> Benchmark:
    return REGISTRY.register(
        Benchmark(
            name=f"SSSP-{input_name}",
            application="Single Source Shortest Path",
            input_name=input_label,
            build_flat=lambda seed, i=input_name: build(i, variant="flat", seed=seed),
            build_dp=lambda seed, cta, i=input_name: build(
                i, variant="dp", seed=seed, cta_threads=cta
            ),
            default_threshold=MIN_OFFLOAD,
            sweep_thresholds=(16, 32, 64, 128, 256, 512, 1024),
            default_cta_threads=64,
            description="Worklist Bellman-Ford; child kernel per heavy active vertex.",
        )
    )


_register("citation", "Citation Network")
_register("graph500", "Graph 500")
