"""Workloads: the paper's Table I benchmarks with synthetic inputs.

Importing :mod:`repro.workloads` (or calling
:func:`repro.workloads.base.all_benchmarks`) registers all benchmarks in
:data:`repro.workloads.base.REGISTRY`.
"""

from repro.workloads.base import (
    REGISTRY,
    AddressAllocator,
    Benchmark,
    BenchmarkRegistry,
    all_benchmarks,
    benchmark_names,
    get_benchmark,
)

#: The 13 benchmarks of Table I, in the paper's order.
TABLE1_NAMES = (
    "AMR",
    "BFS-citation",
    "BFS-graph500",
    "SSSP-citation",
    "SSSP-graph500",
    "JOIN-uniform",
    "JOIN-gaussian",
    "GC-citation",
    "GC-graph500",
    "Mandel",
    "MM-small",
    "MM-large",
    "SA-thaliana",
)

__all__ = [
    "REGISTRY",
    "AddressAllocator",
    "Benchmark",
    "BenchmarkRegistry",
    "TABLE1_NAMES",
    "all_benchmarks",
    "benchmark_names",
    "get_benchmark",
]
