"""Mandelbrot Set — Table I ``Mandel``.

Mariani-Silver style subdivision: the image is tiled into blocks; a parent
thread samples its block cheaply and, if the block straddles the set
boundary (high, varied iteration counts), launches a child kernel that
evaluates every pixel.  Interior/exterior blocks are filled serially.  The
per-block iteration counts come from an actual escape-time computation, so
the work distribution is the real one: a compute-bound workload (few memory
accesses per item), unlike the graph benchmarks.

One work *item* is :data:`ITERS_PER_ITEM` escape iterations of one pixel.
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.sim.kernel import Application, ChildRequest, KernelSpec
from repro.workloads.base import REGISTRY, AddressAllocator, Benchmark

WIDTH = 512
HEIGHT = 512
BLOCK = 16  # pixels per block side
MAX_ITERS = 256
ITERS_PER_ITEM = 4
CYCLES_PER_ITEM = 8.0
ACCESSES_PER_ITEM = 0.1  # compute-bound
PIXEL_BYTES = 4
MIN_OFFLOAD = 24
THREADS_PER_CTA = 128
#: Progressive-rendering passes; one host kernel each.
PASSES = 2


@functools.lru_cache(maxsize=None)
def _block_items(seed: int) -> np.ndarray:
    """Per-block work items from a real escape-time computation.

    ``seed`` jitters the viewport slightly so different seeds give
    different (but statistically identical) workloads.
    """
    rng = np.random.default_rng(seed)
    cx = -0.6 + rng.uniform(-0.02, 0.02)
    cy = 0.0 + rng.uniform(-0.02, 0.02)
    scale = 1.4
    xs = np.linspace(cx - scale, cx + scale, WIDTH)
    ys = np.linspace(cy - scale, cy + scale, HEIGHT)
    c = xs[None, :] + 1j * ys[:, None]
    z = np.zeros_like(c)
    iters = np.zeros(c.shape, dtype=np.int64)
    live = np.ones(c.shape, dtype=bool)
    for _ in range(MAX_ITERS):
        z[live] = z[live] * z[live] + c[live]
        escaped = live & (np.abs(z) > 2.0)
        live &= ~escaped
        iters[live] += 1
        if not live.any():
            break
    # Sum iterations per block, convert to items.
    blocks_y = HEIGHT // BLOCK
    blocks_x = WIDTH // BLOCK
    per_block = iters.reshape(blocks_y, BLOCK, blocks_x, BLOCK).sum(axis=(1, 3))
    items = np.maximum(per_block.ravel() // ITERS_PER_ITEM, 1)
    return items.astype(np.int64)


def build(
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the Mandelbrot application."""
    block_items = _block_items(seed)
    num_blocks = block_items.size
    pixels_per_block = BLOCK * BLOCK
    alloc = AddressAllocator()
    img_base = alloc.alloc(WIDTH * HEIGHT * PIXEL_BYTES)
    bases = img_base + np.arange(num_blocks, dtype=np.int64) * pixels_per_block * PIXEL_BYTES
    cta = cta_threads or THREADS_PER_CTA
    if variant != "dp":
        spec = KernelSpec(
            name="Mandel-blocks",
            threads_per_cta=128,
            thread_items=block_items,
            cycles_per_item=CYCLES_PER_ITEM,
            accesses_per_item=ACCESSES_PER_ITEM,
            mem_bases=bases,
            mem_stride=PIXEL_BYTES,
        )
        return Application(
            name="Mandel", kernels=[spec], flat_items=int(block_items.sum())
        )

    # Progressive rendering: the image is produced in sequential passes.
    blocks_per_pass = num_blocks // PASSES
    kernels = []
    for p in range(PASSES):
        lo = p * blocks_per_pass
        hi = num_blocks if p == PASSES - 1 else lo + blocks_per_pass
        tile = block_items[lo:hi]
        offload = tile > MIN_OFFLOAD
        # The border sample costs ~one item per block edge pixel row.
        items = np.where(offload, 4, tile)
        requests = {
            int(tid): ChildRequest(
                name=f"Mandel-b{lo + tid}",
                items=int(tile[tid]),
                cta_threads=cta,
                items_per_thread=max(1, int(tile[tid]) // pixels_per_block),
                cycles_per_item=CYCLES_PER_ITEM,
                accesses_per_item=ACCESSES_PER_ITEM,
                mem_base=int(bases[lo + tid]),
                mem_stride=PIXEL_BYTES,
            )
            for tid in np.flatnonzero(offload)
        }
        kernels.append(
            KernelSpec(
                name=f"Mandel-blocks{p}",
                threads_per_cta=128,
                thread_items=items,
                cycles_per_item=CYCLES_PER_ITEM,
                accesses_per_item=ACCESSES_PER_ITEM,
                mem_bases=bases[lo:hi],
                mem_stride=PIXEL_BYTES,
                child_requests=requests,
            )
        )
    return Application(
        name="Mandel", kernels=kernels, flat_items=int(block_items.sum())
    )


REGISTRY.register(
    Benchmark(
        name="Mandel",
        application="Mandelbrot Set",
        input_name="N/A",
        build_flat=lambda seed: build(variant="flat", seed=seed),
        build_dp=lambda seed, cta: build(variant="dp", seed=seed, cta_threads=cta),
        default_threshold=MIN_OFFLOAD,
        sweep_thresholds=(24, 48, 96, 256, 512, 1024, 4096),
        default_cta_threads=THREADS_PER_CTA,
        description="Mariani-Silver subdivision; child kernel per boundary block.",
    )
)
