"""Benchmark abstraction: the paper's Table I as a registry.

Every benchmark is an ``<application, input>`` pair that can materialize

* a **flat** variant — the non-DP implementation: one thread per work unit,
  all of the unit's work done serially in that thread (the paper's
  normalization baseline); and
* a **dp** variant — parent kernels whose heavy threads carry
  :class:`~repro.sim.kernel.ChildRequest` launch candidates.  Which
  candidates actually launch is the runtime policy's business
  (Baseline-DP / Offline-Search thresholds, SPAWN, DTBL).

``min_offload_items`` is the *structural* lower bound below which the DP
source simply has no launch site (offloading a handful of items cannot fill
a warp — Section III-A2's intra-warp inefficiency note); the swept
THRESHOLD of Fig. 5 sits on top of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Tuple

from repro.errors import HarnessError, WorkloadError
from repro.sim.kernel import Application


class AddressAllocator:
    """Hands out disjoint byte ranges of the simulated address space.

    Workloads allocate one region per data structure (vertex array, edge
    array, matrix, ...) so the L2 model sees realistic, non-overlapping
    footprints with genuine parent<->child sharing inside each region.
    """

    def __init__(self, *, alignment: int = 128):
        if alignment <= 0:
            raise WorkloadError("alignment must be positive")
        self.alignment = alignment
        self._next = 0

    def alloc(self, nbytes: int) -> int:
        """Reserve ``nbytes`` and return the region's base address."""
        if nbytes <= 0:
            raise WorkloadError("allocation must be positive")
        base = self._next
        padded = -(-nbytes // self.alignment) * self.alignment
        self._next = base + padded
        return base

    @property
    def allocated_bytes(self) -> int:
        return self._next


#: A variant builder: (seed, child CTA size override) -> Application.
Builder = Callable[[int, Optional[int]], Application]


@dataclass(frozen=True)
class Benchmark:
    """One row of Table I."""

    name: str  # e.g. "BFS-graph500"
    application: str  # e.g. "Breadth-First Search"
    input_name: str  # e.g. "Graph 500"
    build_flat: Callable[[int], Application]
    build_dp: Builder
    #: THRESHOLD used by the unmodified (Baseline-DP) source code.
    default_threshold: int
    #: THRESHOLD values swept for Fig. 5 / Offline-Search.
    sweep_thresholds: Tuple[int, ...]
    #: Child CTA size the application requests (c_cta).
    default_cta_threads: int = 64
    description: str = ""

    def flat(self, seed: int = 1) -> Application:
        return self.build_flat(seed)

    def dp(self, seed: int = 1, cta_threads: Optional[int] = None) -> Application:
        return self.build_dp(seed, cta_threads)


class BenchmarkRegistry:
    """Name -> :class:`Benchmark` mapping with Table I ordering."""

    def __init__(self) -> None:
        self._benchmarks: Dict[str, Benchmark] = {}

    def register(self, benchmark: Benchmark) -> Benchmark:
        if benchmark.name in self._benchmarks:
            raise HarnessError(f"duplicate benchmark {benchmark.name!r}")
        self._benchmarks[benchmark.name] = benchmark
        return benchmark

    def get(self, name: str) -> Benchmark:
        try:
            return self._benchmarks[name]
        except KeyError:
            known = ", ".join(self._benchmarks)
            raise HarnessError(
                f"unknown benchmark {name!r}; known: {known}"
            ) from None

    def names(self) -> Tuple[str, ...]:
        return tuple(self._benchmarks)

    def __iter__(self):
        return iter(self._benchmarks.values())

    def __len__(self) -> int:
        return len(self._benchmarks)

    def __contains__(self, name: str) -> bool:
        return name in self._benchmarks


#: The global Table I registry; populated by the workload modules on import.
REGISTRY = BenchmarkRegistry()


def get_benchmark(name: str) -> Benchmark:
    """Look up a benchmark, importing the workload modules on first use."""
    _ensure_loaded()
    return REGISTRY.get(name)


def all_benchmarks() -> Tuple[Benchmark, ...]:
    _ensure_loaded()
    return tuple(REGISTRY)


def benchmark_names() -> Tuple[str, ...]:
    _ensure_loaded()
    return REGISTRY.names()


def _ensure_loaded() -> None:
    # Import for registration side effects; idempotent.
    from repro.workloads import (  # noqa: F401
        amr,
        bfs,
        graph_coloring,
        join,
        mandelbrot,
        matmul,
        selfsim,
        seqalign,
        sssp,
    )
