"""Sequence Alignment — Table I ``SA-thaliana`` (plus ``SA-elegans``, Fig. 21).

Read mapping in the BitMapper style: reads are divided into sections, each
parent thread owns one section and, for every read in it, verifies the
read's candidate locations against the reference.  Candidate counts are
heavy-tailed (repetitive genome regions), so a thread with a repetitive
read launches a child kernel whose threads verify one candidate each.

The parent thread walks its section sequentially, so launch calls are
spread across its execution (``at_fraction`` ramps over the section) — and
child kernels have several CTAs, which is why SA is bottlenecked by the
CTA-concurrency limit in the paper's DTBL comparison (Fig. 21).
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.sim.kernel import Application, ChildRequest, KernelSpec
from repro.workloads.base import REGISTRY, AddressAllocator, Benchmark

LOOKUP_ITEMS_PER_READ = 6  # seed lookup/filtering done by the parent itself
#: Reads arrive in batches (streamed from storage); one host kernel each.
BATCHES = 3
CYCLES_PER_CAND = 40.0  # verify = banded comparison over the read length
ACCESSES_PER_CAND = 1.0
CAND_BYTES = 64  # reference window touched per candidate
MIN_OFFLOAD = 2
CHILD_CTA = 32

#: (num_reads, zipf exponent, candidate cap) per input genome.
_INPUTS = {
    "thaliana": (3072, 1.25, 2048),
    "elegans": (2048, 1.35, 1024),
}


@functools.lru_cache(maxsize=None)
def _candidates(input_name: str, seed: int) -> np.ndarray:
    try:
        reads, exponent, cap = _INPUTS[input_name]
    except KeyError:
        raise ValueError(f"unknown SA input {input_name!r}") from None
    rng = np.random.default_rng(seed + 47)
    cands = np.minimum(rng.zipf(exponent, size=reads), cap)
    return cands.astype(np.int64)


def build(
    input_name: str,
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the SA application for one genome input."""
    cands = _candidates(input_name, seed)
    reads = cands.size
    alloc = AddressAllocator()
    ref_base = alloc.alloc(int(cands.sum()) * CAND_BYTES)
    offsets = np.zeros(reads, dtype=np.int64)
    np.cumsum(cands[:-1], out=offsets[1:])
    read_bases = ref_base + offsets * CAND_BYTES
    cta = cta_threads or CHILD_CTA
    name = f"SA-{input_name}"

    if variant != "dp":
        # Flat port: one thread per read, candidates verified serially.
        spec = KernelSpec(
            name=f"{name}-reads",
            threads_per_cta=128,
            thread_items=LOOKUP_ITEMS_PER_READ + cands,
            cycles_per_item=CYCLES_PER_CAND,
            accesses_per_item=ACCESSES_PER_CAND,
            mem_bases=read_bases,
            mem_stride=CAND_BYTES,
        )
        return Application(name=name, kernels=[spec], flat_items=int(cands.sum()))

    reads_per_batch = reads // BATCHES
    kernels = []
    for batch in range(BATCHES):
        lo = batch * reads_per_batch
        hi = reads if batch == BATCHES - 1 else lo + reads_per_batch
        items = np.full(hi - lo, LOOKUP_ITEMS_PER_READ, dtype=np.int64)
        requests = {}
        for read_idx in range(lo, hi):
            c = int(cands[read_idx])
            if c > MIN_OFFLOAD:
                requests[read_idx - lo] = ChildRequest(
                    name=f"{name}-read{read_idx}",
                    items=c,
                    cta_threads=cta,
                    cycles_per_item=CYCLES_PER_CAND,
                    accesses_per_item=ACCESSES_PER_CAND,
                    mem_base=int(read_bases[read_idx]),
                    mem_stride=CAND_BYTES,
                )
            else:
                items[read_idx - lo] += c
        kernels.append(
            KernelSpec(
                name=f"{name}-batch{batch}",
                threads_per_cta=64,
                thread_items=items,
                cycles_per_item=CYCLES_PER_CAND,
                accesses_per_item=ACCESSES_PER_CAND,
                mem_bases=read_bases[lo:hi],
                mem_stride=CAND_BYTES,
                child_requests=requests,
            )
        )
    return Application(name=name, kernels=kernels, flat_items=int(cands.sum()))


def _register(input_name: str, input_label: str) -> Benchmark:
    return REGISTRY.register(
        Benchmark(
            name=f"SA-{input_name}",
            application="Sequence Alignment",
            input_name=input_label,
            build_flat=lambda seed, i=input_name: build(i, variant="flat", seed=seed),
            build_dp=lambda seed, cta, i=input_name: build(
                i, variant="dp", seed=seed, cta_threads=cta
            ),
            default_threshold=MIN_OFFLOAD,
            sweep_thresholds=(2, 4, 8, 16, 32, 64, 128),
            default_cta_threads=CHILD_CTA,
            description="Read mapping; child kernel per repetitive read.",
        )
    )


_register("thaliana", "Arabidopsis Thaliana")
_register("elegans", "Caenorhabditis Elegans")
