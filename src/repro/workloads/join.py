"""Relational Join — Table I ``JOIN-uniform``/``JOIN-gaussian``.

Hash-join probe phase: one parent thread per R-side bucket, whose work is
the number of matching S-side tuples.  With *uniform* data every bucket
matches about the same number of tuples — the workload is balanced, DP adds
only overhead, and the preferred distribution keeps (nearly) everything in
the parent threads (the paper's Observation 2).  With *gaussian* (skewed)
data a minority of buckets carry long match lists and benefit modestly from
child kernels (Observation 4's 4% case).
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.sim.kernel import Application, ChildRequest, KernelSpec
from repro.workloads.base import REGISTRY, AddressAllocator, Benchmark

NUM_BUCKETS = 1024
MIN_OFFLOAD = 64
CYCLES_PER_MATCH = 36.0
ACCESSES_PER_MATCH = 0.25
TUPLE_BYTES = 8
THREADS_PER_CTA = 64
BOOKKEEPING_PER_BUCKET = 16  # hash + R-tuple read done by the parent itself
#: The probe runs as sequential partition passes (memory-footprint-sized
#: batches, standard for GPU hash joins); each pass is one host kernel.
PASSES = 2


@functools.lru_cache(maxsize=None)
def _matches(input_name: str, seed: int) -> np.ndarray:
    """Matching S-tuples per R bucket."""
    rng = np.random.default_rng(seed + 17)
    if input_name == "uniform":
        m = rng.integers(1408, 1664, size=NUM_BUCKETS)
    elif input_name == "gaussian":
        # Product of two gaussian-distributed key frequencies: lognormal-ish
        # tail over a balanced core.
        m = np.round(np.exp(rng.normal(7.0, 0.5, size=NUM_BUCKETS))).astype(np.int64)
        m = np.clip(m, 64, 4096)
    else:
        raise ValueError(f"unknown JOIN input {input_name!r}")
    return m.astype(np.int64)


def build(
    input_name: str,
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the join probe kernel for one data distribution."""
    matches = _matches(input_name, seed)
    alloc = AddressAllocator()
    s_base = alloc.alloc(int(matches.sum()) * TUPLE_BYTES)
    offsets = np.zeros(NUM_BUCKETS, dtype=np.int64)
    np.cumsum(matches[:-1], out=offsets[1:])
    bucket_bases = s_base + offsets * TUPLE_BYTES
    cta = cta_threads or 64
    name = f"JOIN-{input_name}"

    if variant != "dp":
        # Flat port: one thread per bucket, matches probed serially.
        spec = KernelSpec(
            name=f"{name}-probe",
            threads_per_cta=THREADS_PER_CTA,
            thread_items=BOOKKEEPING_PER_BUCKET + matches,
            cycles_per_item=CYCLES_PER_MATCH,
            accesses_per_item=ACCESSES_PER_MATCH,
            mem_bases=bucket_bases,
            mem_stride=TUPLE_BYTES,
        )
        return Application(name=name, kernels=[spec], flat_items=int(matches.sum()))

    buckets_per_pass = NUM_BUCKETS // PASSES
    kernels = []
    for p in range(PASSES):
        lo = p * buckets_per_pass
        hi = NUM_BUCKETS if p == PASSES - 1 else lo + buckets_per_pass
        items = np.full(hi - lo, BOOKKEEPING_PER_BUCKET, dtype=np.int64)
        requests = {}
        for bucket in range(lo, hi):
            m = int(matches[bucket])
            if m > MIN_OFFLOAD:
                requests[bucket - lo] = ChildRequest(
                    name=f"{name}-b{bucket}",
                    items=m,
                    cta_threads=cta,
                    cycles_per_item=CYCLES_PER_MATCH,
                    accesses_per_item=ACCESSES_PER_MATCH,
                    mem_base=int(bucket_bases[bucket]),
                    mem_stride=TUPLE_BYTES,
                )
            else:
                items[bucket - lo] += m
        kernels.append(
            KernelSpec(
                name=f"{name}-probe{p}",
                threads_per_cta=THREADS_PER_CTA,
                thread_items=items,
                cycles_per_item=CYCLES_PER_MATCH,
                accesses_per_item=ACCESSES_PER_MATCH,
                mem_bases=bucket_bases[lo:hi],
                mem_stride=TUPLE_BYTES,
                child_requests=requests,
            )
        )
    return Application(name=name, kernels=kernels, flat_items=int(matches.sum()))


def _register(input_name: str, input_label: str) -> Benchmark:
    return REGISTRY.register(
        Benchmark(
            name=f"JOIN-{input_name}",
            application="Relational Join",
            input_name=input_label,
            build_flat=lambda seed, i=input_name: build(i, variant="flat", seed=seed),
            build_dp=lambda seed, cta, i=input_name: build(
                i, variant="dp", seed=seed, cta_threads=cta
            ),
            default_threshold=MIN_OFFLOAD,
            sweep_thresholds=(64, 512, 1024, 1536, 2048, 4096),
            default_cta_threads=64,
            description="Hash-join probe; child kernel per heavy bucket.",
        )
    )


_register("uniform", "Uniform Data")
_register("gaussian", "Gaussian Data")
