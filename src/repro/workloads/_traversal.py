"""Shared machinery for the level-synchronous graph benchmarks.

BFS, SSSP, and Graph Coloring all share one structure: the host launches one
kernel per round, each round's kernel has a thread per active vertex, and a
thread's work is proportional to its vertex degree.  In the DP variant a
thread whose degree exceeds the structural offload minimum carries a
:class:`~repro.sim.kernel.ChildRequest` over its adjacency range; otherwise
(and in the flat variant) it walks its edges serially — the Fig. 1 workload
imbalance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import WorkloadError
from repro.sim.kernel import Application, ChildRequest, KernelSpec
from repro.workloads.base import AddressAllocator
from repro.workloads.graphs import CSRGraph

#: Bytes per edge entry (int32 neighbour id).
EDGE_BYTES = 4


@dataclass(frozen=True)
class TraversalCosts:
    """Per-application cost model for one edge of traversal work."""

    cycles_per_edge: float = 16.0
    accesses_per_edge: float = 1.0
    #: Fixed per-vertex bookkeeping items (read vertex record, flags).
    bookkeeping_items: int = 1
    threads_per_cta: int = 256
    regs_per_thread: int = 24
    child_regs_per_thread: int = 16
    header_items: int = 2
    #: Grid-stride factor: active vertices handled by one parent thread.
    #: Spreads the launch calls across the thread's execution, which is
    #: what lets SPAWN's windowed metrics observe a live system.
    vertices_per_thread: int = 4


def build_round_kernels(
    app_name: str,
    graph: CSRGraph,
    rounds: Sequence[np.ndarray],
    *,
    dp: bool,
    min_offload: int,
    cta_threads: int,
    costs: TraversalCosts,
) -> Application:
    """Materialize one kernel per round over the given active-vertex sets.

    Each parent thread owns ``vertices_per_thread`` consecutive active
    vertices and walks them in a loop; a heavy vertex becomes a child
    launch call placed at its loop position (``at_fraction``), a light one
    is traversed serially in place.
    """
    if not rounds:
        raise WorkloadError(f"{app_name}: no traversal rounds")
    alloc = AddressAllocator()
    edge_base = alloc.alloc(graph.num_edges * EDGE_BYTES)
    indptr = graph.indptr
    degrees = graph.degrees
    vpt = costs.vertices_per_thread
    kernels: List[KernelSpec] = []
    flat_items = 0
    for round_idx, active in enumerate(rounds):
        active = np.asarray(active, dtype=np.int64)
        if active.size == 0:
            continue
        deg = degrees[active]
        flat_items += int(deg.sum()) + costs.bookkeeping_items * active.size
        if not dp:
            # The flat port is the natural data-parallel one: one thread
            # per active vertex, edges walked serially in that thread.
            kernels.append(
                KernelSpec(
                    name=f"{app_name}-round{round_idx}",
                    threads_per_cta=min(costs.threads_per_cta, active.size),
                    thread_items=costs.bookkeeping_items + deg,
                    regs_per_thread=costs.regs_per_thread,
                    cycles_per_item=costs.cycles_per_edge,
                    accesses_per_item=costs.accesses_per_edge,
                    mem_bases=edge_base + indptr[active] * EDGE_BYTES,
                    mem_stride=EDGE_BYTES,
                    header_items=costs.header_items,
                )
            )
            continue
        num_threads = -(-active.size // vpt)
        items = np.zeros(num_threads, dtype=np.int64)
        bases = np.zeros(num_threads, dtype=np.int64)
        requests: dict = {}
        for tid in range(num_threads):
            chunk = active[tid * vpt : (tid + 1) * vpt]
            chunk_deg = degrees[chunk]
            bases[tid] = edge_base + indptr[chunk[0]] * EDGE_BYTES
            serial_edges = 0
            reqs = []
            for k, v in enumerate(chunk):
                d = int(chunk_deg[k])
                if dp and d > min_offload:
                    reqs.append(
                        ChildRequest(
                            name=f"{app_name}-r{round_idx}-v{int(v)}",
                            items=d,
                            cta_threads=cta_threads,
                            regs_per_thread=costs.child_regs_per_thread,
                            cycles_per_item=costs.cycles_per_edge,
                            accesses_per_item=costs.accesses_per_edge,
                            mem_base=int(edge_base + indptr[v] * EDGE_BYTES),
                            mem_stride=EDGE_BYTES,
                            at_fraction=(k + 0.5) / len(chunk),
                        )
                    )
                else:
                    serial_edges += d
            items[tid] = costs.bookkeeping_items * len(chunk) + serial_edges
            if reqs:
                requests[tid] = reqs
        kernels.append(
            KernelSpec(
                name=f"{app_name}-round{round_idx}",
                threads_per_cta=min(costs.threads_per_cta, num_threads),
                thread_items=items,
                regs_per_thread=costs.regs_per_thread,
                cycles_per_item=costs.cycles_per_edge,
                accesses_per_item=costs.accesses_per_edge,
                mem_bases=bases,
                mem_stride=EDGE_BYTES,
                child_requests=requests,
                header_items=costs.header_items,
            )
        )
    return Application(name=app_name, kernels=kernels, flat_items=flat_items)
