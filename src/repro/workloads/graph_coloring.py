"""Graph Coloring — Table I ``GC-citation``/``GC-graph500``.

Jones-Plassmann greedy colouring: each round, every still-uncoloured vertex
checks its neighbours' states (degree-proportional work) and colours itself
if it wins the priority comparison.  Rounds shrink slowly, so the same heavy
vertices re-do conflict checks for many rounds.  GC-citation launches few
child kernels (< 2300 in the paper) and parent threads retain substantial
work, so Baseline-DP ~= flat there (the paper's Observation 4 outlier).
"""

from __future__ import annotations

import functools
from typing import Optional

from repro.sim.kernel import Application
from repro.workloads._traversal import TraversalCosts, build_round_kernels
from repro.workloads.base import REGISTRY, Benchmark
from repro.workloads.graphs import CSRGraph, citation_graph, coloring_rounds, graph500_graph

MIN_OFFLOAD = 24

#: Conflict check reads the neighbour's colour and priority.
COSTS = TraversalCosts(cycles_per_edge=14.0, accesses_per_edge=2.0, vertices_per_thread=2)

#: Cap on simulated colouring rounds; later rounds are tiny and repeat the
#: same behaviour while tripling simulation time.
MAX_ROUNDS = 16


@functools.lru_cache(maxsize=None)
def _graph(input_name: str, seed: int) -> CSRGraph:
    if input_name == "citation":
        return citation_graph(num_vertices=4000, edges_per_vertex=4, seed=seed)
    if input_name == "graph500":
        return graph500_graph(scale=12, edge_factor=12, seed=seed)
    raise ValueError(f"unknown GC input {input_name!r}")


@functools.lru_cache(maxsize=None)
def _rounds(input_name: str, seed: int):
    graph = _graph(input_name, seed)
    return tuple(coloring_rounds(graph, seed=seed)[:MAX_ROUNDS])


def build(
    input_name: str,
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the Graph Coloring application for one input and variant."""
    graph = _graph(input_name, seed)
    return build_round_kernels(
        f"GC-{input_name}",
        graph,
        _rounds(input_name, seed),
        dp=(variant == "dp"),
        min_offload=MIN_OFFLOAD,
        cta_threads=cta_threads or 64,
        costs=COSTS,
    )


def _register(input_name: str, input_label: str) -> Benchmark:
    return REGISTRY.register(
        Benchmark(
            name=f"GC-{input_name}",
            application="Graph Coloring",
            input_name=input_label,
            build_flat=lambda seed, i=input_name: build(i, variant="flat", seed=seed),
            build_dp=lambda seed, cta, i=input_name: build(
                i, variant="dp", seed=seed, cta_threads=cta
            ),
            default_threshold=MIN_OFFLOAD,
            sweep_thresholds=(24, 48, 96, 192, 384, 1024, 4096),
            default_cta_threads=64,
            description="Jones-Plassmann colouring; child kernel per heavy uncoloured vertex.",
        )
    )


_register("citation", "Citation Network")
_register("graph500", "Graph 500")
