"""Self-similar-density workloads (Quezada et al., arXiv:2206.02255).

Dynamic-parallelism benchmark generators whose work density follows a
*self-similar* (fractal) distribution: a multiplicative cascade splits the
domain's total work mass recursively, applying the same random splitting
law at every scale, so hot spots cluster inside hot spots — the structure
DP subdivision schemes are built for.  The ``concentration`` parameter of
the Beta splitting law tunes burstiness: low values concentrate almost all
mass in a few deep branches (sparse, spiky density), values near 1 spread
it (dense, milder skew).

The parent kernel owns one domain segment per thread.  In the DP variant a
segment heavier than :data:`MIN_OFFLOAD` becomes a child launch site (the
parent pays a small probe cost); lighter segments are processed serially.
Child grids re-read the parent's segment region, so the L2 model sees the
genuine parent/child footprint sharing.

Two registered benchmarks (deliberately NOT part of ``TABLE1_NAMES`` — the
paper's Table I is a closed set):

* ``SelfSim-dense``  — milder cascade, most segments carry real work;
* ``SelfSim-sparse`` — aggressive cascade, a few towering hot spots.
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.sim.kernel import Application, ChildRequest, KernelSpec
from repro.workloads.base import REGISTRY, AddressAllocator, Benchmark

#: Segments below this many items have no launch site in the DP source.
MIN_OFFLOAD = 64

#: Cascade depth: the domain has ``2**LEVELS`` segments.
LEVELS = 12

#: Work items the parent spends probing a segment it offloads.
PROBE_ITEMS = 2

CYCLES_PER_ITEM = 12.0
ACCESSES_PER_ITEM = 0.6
ITEM_BYTES = 8
THREADS_PER_CTA = 128
CHILD_ITEMS_PER_THREAD = 8


@functools.lru_cache(maxsize=None)
def cascade_items(
    levels: int, total_items: int, concentration: float, seed: int
) -> np.ndarray:
    """Per-segment work items from a binary multiplicative cascade.

    Starting from one interval holding ``total_items`` of mass, each level
    splits every interval in two, giving the left child a Beta(c, c)
    fraction of the parent's mass.  Applying the identical law at every
    level is what makes the resulting density self-similar: zooming into
    any subtree shows the same statistical structure as the whole.
    """
    if levels < 1:
        raise ValueError("cascade needs at least one level")
    if total_items < 1:
        raise ValueError("cascade needs positive total work")
    if concentration <= 0:
        raise ValueError("concentration must be positive")
    rng = np.random.default_rng(seed)
    mass = np.array([float(total_items)])
    for _ in range(levels):
        left = rng.beta(concentration, concentration, size=mass.size)
        mass = np.stack([mass * left, mass * (1.0 - left)], axis=1).ravel()
    # Every segment does at least one item (reading its header); the
    # cascade's skew survives the floor because mass is conserved up to it.
    items = np.maximum(mass.astype(np.int64), 1)
    return items


def build(
    flavor: str,
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build one self-similar application (``flavor``: dense or sparse)."""
    if flavor == "dense":
        total, concentration = 300_000, 0.45
    elif flavor == "sparse":
        total, concentration = 150_000, 0.15
    else:
        raise ValueError(f"unknown self-similar flavor {flavor!r}")
    items = cascade_items(LEVELS, total, concentration, seed)
    num_segments = items.size
    alloc = AddressAllocator()
    domain_base = alloc.alloc(int(items.sum()) * ITEM_BYTES)
    bases = domain_base + np.concatenate(
        ([0], np.cumsum(items[:-1]))
    ).astype(np.int64) * ITEM_BYTES
    name = f"SelfSim-{flavor}"
    if variant != "dp":
        spec = KernelSpec(
            name=f"{name}-segments",
            threads_per_cta=THREADS_PER_CTA,
            thread_items=items,
            cycles_per_item=CYCLES_PER_ITEM,
            accesses_per_item=ACCESSES_PER_ITEM,
            mem_bases=bases,
            mem_stride=ITEM_BYTES,
        )
        return Application(
            name=name, kernels=[spec], flat_items=int(items.sum())
        )

    cta = cta_threads or THREADS_PER_CTA
    offload = items > MIN_OFFLOAD
    parent_items = np.where(offload, PROBE_ITEMS, items)
    requests = {
        int(tid): ChildRequest(
            name=f"{name}-seg{tid}",
            items=int(items[tid]),
            cta_threads=cta,
            items_per_thread=CHILD_ITEMS_PER_THREAD,
            cycles_per_item=CYCLES_PER_ITEM,
            accesses_per_item=ACCESSES_PER_ITEM,
            mem_base=int(bases[tid]),
            mem_stride=ITEM_BYTES,
        )
        for tid in np.flatnonzero(offload)
    }
    spec = KernelSpec(
        name=f"{name}-segments",
        threads_per_cta=THREADS_PER_CTA,
        thread_items=parent_items,
        cycles_per_item=CYCLES_PER_ITEM,
        accesses_per_item=ACCESSES_PER_ITEM,
        mem_bases=bases,
        mem_stride=ITEM_BYTES,
        child_requests=requests,
    )
    # The parent probe replaces the offloaded work rather than adding to
    # it, so flat and DP variants agree on total work: offloaded segments
    # run their items in the child, probes are accounted as parent items.
    flat_items = int(items.sum())
    return Application(
        name=name, kernels=[spec], flat_items=flat_items
    )


def _register(flavor: str, label: str, description: str) -> Benchmark:
    return REGISTRY.register(
        Benchmark(
            name=f"SelfSim-{flavor}",
            application="Self-Similar Density",
            input_name=label,
            build_flat=lambda seed, f=flavor: build(f, variant="flat", seed=seed),
            build_dp=lambda seed, cta, f=flavor: build(
                f, variant="dp", seed=seed, cta_threads=cta
            ),
            default_threshold=MIN_OFFLOAD,
            sweep_thresholds=(64, 128, 256, 512, 1024, 2048),
            default_cta_threads=THREADS_PER_CTA,
            description=description,
        )
    )


_register(
    "dense",
    "Cascade c=0.45",
    "Binary multiplicative cascade, mild skew; child kernel per hot segment.",
)
_register(
    "sparse",
    "Cascade c=0.15",
    "Aggressive cascade, few towering hot spots; child kernel per hot segment.",
)
