"""Breadth-First Search (BFS) — Table I rows ``BFS-citation``/``BFS-graph500``.

Level-synchronous BFS: the host launches one kernel per frontier level; each
thread owns one frontier vertex and traverses its adjacency list.  In the DP
variant, high-degree vertices launch a child kernel over their edges
(Fig. 3's code structure); the rest loop serially.  This is the paper's
motivating application (Fig. 1) and its deep-dive subject (Figs. 6, 19, 20).
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.sim.kernel import Application
from repro.workloads._traversal import TraversalCosts, build_round_kernels
from repro.workloads.base import REGISTRY, Benchmark
from repro.workloads.graphs import CSRGraph, bfs_levels, citation_graph, graph500_graph

#: Degree below which the DP source has no launch site (a child kernel over
#: a handful of edges cannot fill a warp).
MIN_OFFLOAD = 16

COSTS = TraversalCosts(cycles_per_edge=16.0, accesses_per_edge=1.0)


@functools.lru_cache(maxsize=None)
def _graph(input_name: str, seed: int) -> CSRGraph:
    if input_name == "citation":
        return citation_graph(num_vertices=12000, edges_per_vertex=6, seed=seed)
    if input_name == "graph500":
        return graph500_graph(scale=14, edge_factor=16, seed=seed)
    raise ValueError(f"unknown BFS input {input_name!r}")


@functools.lru_cache(maxsize=None)
def _levels(input_name: str, seed: int):
    graph = _graph(input_name, seed)
    source = int(np.argmax(graph.degrees))
    return tuple(bfs_levels(graph, source))


def build(
    input_name: str,
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the BFS application for one input and variant."""
    graph = _graph(input_name, seed)
    return build_round_kernels(
        f"BFS-{input_name}",
        graph,
        _levels(input_name, seed),
        dp=(variant == "dp"),
        min_offload=MIN_OFFLOAD,
        cta_threads=cta_threads or 64,
        costs=COSTS,
    )


def _register(input_name: str, input_label: str) -> Benchmark:
    return REGISTRY.register(
        Benchmark(
            name=f"BFS-{input_name}",
            application="Breadth-First Search",
            input_name=input_label,
            build_flat=lambda seed, i=input_name: build(i, variant="flat", seed=seed),
            build_dp=lambda seed, cta, i=input_name: build(
                i, variant="dp", seed=seed, cta_threads=cta
            ),
            default_threshold=MIN_OFFLOAD,
            sweep_thresholds=(16, 32, 64, 128, 256, 512, 1024),
            default_cta_threads=64,
            description="Level-synchronous BFS; child kernel per heavy frontier vertex.",
        )
    )


_register("citation", "Citation Network")
_register("graph500", "Graph 500")
