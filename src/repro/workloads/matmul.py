"""Sparse-dense Matrix Multiplication — Table I ``MM-small``/``MM-large``.

The paper's in-house MM: each parent thread multiplies one row of a sparse
multiplicand against a dense multiplier; in the DP version the thread
launches a child kernel whose threads each take one multiplier column.  Row
populations (nnz) follow a lognormal distribution — sparse matrices with a
pronounced row-length skew — so a *small number of heavyweight* child
kernels are launched and the benchmark prefers offloading nearly everything
(the paper's Observation 3).

One work *item* is a block of :data:`NNZ_PER_ITEM` multiply-accumulates of
one output element; a row's total work is ``columns * nnz / NNZ_PER_ITEM``.
"""

from __future__ import annotations

import functools
from typing import Optional

import numpy as np

from repro.sim.kernel import Application, ChildRequest, KernelSpec
from repro.workloads.base import REGISTRY, AddressAllocator, Benchmark

COLUMNS = 128  # dense multiplier width
NNZ_PER_ITEM = 8
CYCLES_PER_ITEM = 12.0
ACCESSES_PER_ITEM = 1.5
VALUE_BYTES = 8  # index + value
MIN_OFFLOAD = 64
CHILD_CTA = 128
#: Rows are processed in sequential tiles (blocked SpMM); one kernel each.
PASSES = 3

#: (rows, lognormal mean, lognormal sigma, nnz cap) per input.
_INPUTS = {
    "small": (2048, 3.0, 1.0, 256),
    "large": (4096, 3.3, 1.1, 384),
}


@functools.lru_cache(maxsize=None)
def _row_nnz(input_name: str, seed: int) -> np.ndarray:
    try:
        rows, mu, sigma, cap = _INPUTS[input_name]
    except KeyError:
        raise ValueError(f"unknown MM input {input_name!r}") from None
    rng = np.random.default_rng(seed + 31)
    nnz = np.round(np.exp(rng.normal(mu, sigma, size=rows))).astype(np.int64)
    return np.clip(nnz, 2, cap)


def build(
    input_name: str,
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the MM application for one sparse input."""
    nnz = _row_nnz(input_name, seed)
    rows = nnz.size
    row_items = np.maximum(COLUMNS * nnz // NNZ_PER_ITEM, 1)
    alloc = AddressAllocator()
    a_base = alloc.alloc(int(nnz.sum()) * VALUE_BYTES)  # sparse rows
    offsets = np.zeros(rows, dtype=np.int64)
    np.cumsum(nnz[:-1], out=offsets[1:])
    bases = a_base + offsets * VALUE_BYTES
    cta = cta_threads or CHILD_CTA
    name = f"MM-{input_name}"
    if variant != "dp":
        spec = KernelSpec(
            name=f"{name}-rows",
            threads_per_cta=128,
            thread_items=row_items,
            cycles_per_item=CYCLES_PER_ITEM,
            accesses_per_item=ACCESSES_PER_ITEM,
            mem_bases=bases,
            mem_stride=VALUE_BYTES,
        )
        return Application(name=name, kernels=[spec], flat_items=int(row_items.sum()))

    rows_per_pass = rows // PASSES
    kernels = []
    for p in range(PASSES):
        lo = p * rows_per_pass
        hi = rows if p == PASSES - 1 else lo + rows_per_pass
        tile_items = row_items[lo:hi]
        offload = tile_items > MIN_OFFLOAD
        items = np.where(offload, 2, tile_items)
        requests = {
            int(tid): ChildRequest(
                name=f"{name}-row{lo + tid}",
                items=int(tile_items[tid]),
                cta_threads=cta,
                # One child thread per multiplier column.
                items_per_thread=max(1, int(tile_items[tid]) // COLUMNS),
                regs_per_thread=24,
                cycles_per_item=CYCLES_PER_ITEM,
                accesses_per_item=ACCESSES_PER_ITEM,
                mem_base=int(bases[lo + tid]),
                mem_stride=VALUE_BYTES,
            )
            for tid in np.flatnonzero(offload)
        }
        kernels.append(
            KernelSpec(
                name=f"{name}-rows{p}",
                threads_per_cta=128,
                thread_items=items,
                cycles_per_item=CYCLES_PER_ITEM,
                accesses_per_item=ACCESSES_PER_ITEM,
                mem_bases=bases[lo:hi],
                mem_stride=VALUE_BYTES,
                child_requests=requests,
            )
        )
    return Application(name=name, kernels=kernels, flat_items=int(row_items.sum()))


def _register(input_name: str, input_label: str) -> Benchmark:
    return REGISTRY.register(
        Benchmark(
            name=f"MM-{input_name}",
            application="Matrix Multiplication",
            input_name=input_label,
            build_flat=lambda seed, i=input_name: build(i, variant="flat", seed=seed),
            build_dp=lambda seed, cta, i=input_name: build(
                i, variant="dp", seed=seed, cta_threads=cta
            ),
            default_threshold=MIN_OFFLOAD,
            sweep_thresholds=(64, 256, 1024, 4096, 16384),
            default_cta_threads=CHILD_CTA,
            description="Sparse row x dense matrix; heavyweight child kernel per row.",
        )
    )


_register("small", "Small sparse matrix")
_register("large", "Large sparse matrix")
