"""Synthetic graph generators standing in for the paper's graph inputs.

The paper uses the DIMACS-10 *Citation Network* and *Graph 500* inputs
[Sanders & Schulz 2012].  Neither ships with this reproduction, so we
generate graphs whose degree structure matches what the DP mechanism cares
about:

* ``citation_graph`` — a preferential-attachment graph: a moderate power-law
  tail, most vertices low-degree, some hubs.  Citation networks are the
  canonical preferential-attachment instance.
* ``graph500_graph`` — an RMAT/Kronecker graph with the Graph500 parameters
  (a=0.57, b=0.19, c=0.19), giving the much heavier-tailed, skewed degree
  distribution that makes BFS-graph500 launch tens of thousands of child
  kernels in the paper.

Both return CSR adjacency (``indptr``, ``indices``) over ``num_vertices``
vertices, deduplicated and symmetrized, ready for level-synchronous
traversals.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class CSRGraph:
    """Compressed sparse row adjacency."""

    indptr: np.ndarray  # int64, len = num_vertices + 1
    indices: np.ndarray  # int64, len = num_edges

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices)

    def degree(self, v: int) -> int:
        return int(self.indptr[v + 1] - self.indptr[v])

    @property
    def degrees(self) -> np.ndarray:
        return np.diff(self.indptr)

    def neighbors(self, v: int) -> np.ndarray:
        return self.indices[self.indptr[v] : self.indptr[v + 1]]


def _csr_from_edges(num_vertices: int, src: np.ndarray, dst: np.ndarray) -> CSRGraph:
    """Symmetrize, dedup, and pack an edge list into CSR."""
    keep = src != dst
    src, dst = src[keep], dst[keep]
    all_src = np.concatenate([src, dst])
    all_dst = np.concatenate([dst, src])
    keys = all_src * np.int64(num_vertices) + all_dst
    keys = np.unique(keys)
    all_src = keys // num_vertices
    all_dst = keys % num_vertices
    indptr = np.zeros(num_vertices + 1, dtype=np.int64)
    counts = np.bincount(all_src, minlength=num_vertices)
    np.cumsum(counts, out=indptr[1:])
    return CSRGraph(indptr=indptr, indices=all_dst.astype(np.int64))


def citation_graph(
    num_vertices: int = 6000, edges_per_vertex: int = 5, seed: int = 1
) -> CSRGraph:
    """Preferential-attachment graph with citation-like degree skew.

    Vertices arrive one at a time and attach ``edges_per_vertex`` edges to
    earlier vertices, preferring high-degree targets (Barabasi-Albert via
    the repeated-endpoint trick: sampling uniformly from the running edge
    list is proportional to degree).
    """
    if num_vertices <= edges_per_vertex:
        raise WorkloadError("num_vertices must exceed edges_per_vertex")
    rng = np.random.default_rng(seed)
    m = edges_per_vertex
    # The repeated-endpoint pool: each inserted edge contributes both ends.
    pool = np.empty(2 * m * num_vertices, dtype=np.int64)
    pool_size = 0
    src_list = np.empty(m * num_vertices, dtype=np.int64)
    dst_list = np.empty(m * num_vertices, dtype=np.int64)
    edge_count = 0
    # Seed clique over the first m+1 vertices.
    for v in range(1, m + 1):
        src_list[edge_count] = v
        dst_list[edge_count] = v - 1
        pool[pool_size] = v
        pool[pool_size + 1] = v - 1
        pool_size += 2
        edge_count += 1
    for v in range(m + 1, num_vertices):
        picks = rng.integers(0, pool_size, size=m)
        targets = pool[picks]
        for t in targets:
            src_list[edge_count] = v
            dst_list[edge_count] = t
            pool[pool_size] = v
            pool[pool_size + 1] = t
            pool_size += 2
            edge_count += 1
    return _csr_from_edges(
        num_vertices, src_list[:edge_count], dst_list[:edge_count]
    )


def graph500_graph(
    scale: int = 13,
    edge_factor: int = 16,
    seed: int = 1,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
) -> CSRGraph:
    """RMAT graph with the Graph500 generator parameters.

    ``2**scale`` vertices and ``edge_factor * 2**scale`` directed edge
    samples before dedup/symmetrization.  The recursive quadrant choice is
    vectorized: one random quadrant draw per (edge, bit).
    """
    if scale <= 0 or edge_factor <= 0:
        raise WorkloadError("scale and edge_factor must be positive")
    if not 0 < a + b + c < 1:
        raise WorkloadError("RMAT probabilities must sum below 1")
    rng = np.random.default_rng(seed)
    n = 1 << scale
    num_edges = edge_factor * n
    src = np.zeros(num_edges, dtype=np.int64)
    dst = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        r = rng.random(num_edges)
        # Quadrant thresholds: a | b | c | d.
        go_right = (r >= a) & (r < a + b) | (r >= a + b + c)
        go_down = r >= a + b
        src = (src << 1) | go_down.astype(np.int64)
        dst = (dst << 1) | go_right.astype(np.int64)
    return _csr_from_edges(n, src, dst)


def bfs_levels(graph: CSRGraph, source: int = 0) -> list:
    """Level-synchronous BFS; returns a list of frontier vertex arrays.

    Level 0 is ``[source]``; traversal covers only the source's component
    (like the paper's benchmarks, which BFS from a fixed root).
    """
    if not 0 <= source < graph.num_vertices:
        raise WorkloadError("BFS source outside graph")
    visited = np.zeros(graph.num_vertices, dtype=bool)
    visited[source] = True
    frontier = np.array([source], dtype=np.int64)
    levels = [frontier]
    while True:
        nxt = []
        for v in frontier:
            nbrs = graph.neighbors(int(v))
            fresh = nbrs[~visited[nbrs]]
            if fresh.size:
                visited[fresh] = True
                nxt.append(np.unique(fresh))
        if not nxt:
            return levels
        frontier = np.unique(np.concatenate(nxt))
        levels.append(frontier)


def sssp_rounds(graph: CSRGraph, source: int = 0, seed: int = 1, max_rounds: int = 64) -> list:
    """Bellman-Ford rounds; returns the active vertex set per round.

    Edge weights are deterministic pseudo-random ints in [1, 16).  A vertex
    is active in round ``k`` if its distance changed in round ``k-1`` —
    the standard GPU worklist formulation.  SSSP re-relaxes vertices, so
    the same vertex can appear in several rounds (more child launches than
    BFS, matching the paper's SSSP behaviour).
    """
    rng = np.random.default_rng(seed)
    # Deterministic per-edge weights.
    weights = rng.integers(1, 16, size=graph.num_edges).astype(np.int64)
    dist = np.full(graph.num_vertices, np.iinfo(np.int64).max // 2, dtype=np.int64)
    dist[source] = 0
    active = np.array([source], dtype=np.int64)
    rounds = [active]
    for _ in range(max_rounds):
        changed = []
        for v in active:
            v = int(v)
            lo, hi = graph.indptr[v], graph.indptr[v + 1]
            nbrs = graph.indices[lo:hi]
            cand = dist[v] + weights[lo:hi]
            better = cand < dist[nbrs]
            if better.any():
                upd = nbrs[better]
                # np.minimum.at handles duplicate neighbors correctly.
                np.minimum.at(dist, upd, cand[better])
                changed.append(np.unique(upd))
        if not changed:
            break
        active = np.unique(np.concatenate(changed))
        rounds.append(active)
    return rounds


def coloring_rounds(graph: CSRGraph, seed: int = 1) -> list:
    """Jones-Plassmann style greedy colouring rounds.

    Each round colours the vertices whose random priority beats all
    uncoloured neighbours; returns the list of per-round *remaining*
    (uncoloured, hence conflict-checking) vertex arrays — those are the
    threads that do degree-proportional work each round.
    """
    rng = np.random.default_rng(seed)
    priority = rng.permutation(graph.num_vertices)
    uncolored = np.ones(graph.num_vertices, dtype=bool)
    rounds = []
    while uncolored.any():
        remaining = np.flatnonzero(uncolored)
        rounds.append(remaining)
        to_color = []
        for v in remaining:
            nbrs = graph.neighbors(int(v))
            live = nbrs[uncolored[nbrs]]
            if live.size == 0 or priority[v] > priority[live].max():
                to_color.append(v)
        uncolored[np.array(to_color, dtype=np.int64)] = False
    return rounds
