"""Adaptive Mesh Refinement — Table I ``AMR`` (combustion simulation input).

Time-stepped AMR: each step, a kernel advances every coarse cell; cells
whose error estimate exceeds the refinement criterion launch a child kernel
over their fine sub-grid, and the very hottest cells' children refine once
more — the nested launching pattern the paper calls out.  Refinement depth
(and hence child size) follows the error magnitude, so child kernels range
from tens to thousands of items and several of them carry multiple CTAs at
once: AMR hits the concurrent-CTA limit, and the preferred distribution
keeps all but the heaviest refinements inside the parent threads (the
paper's Observation 2 and the 4-8%-offload optimum of Fig. 5).

The synthetic "error field" is a smoothed random field: a combustion front
occupying a minority of the domain with a sharp intensity ramp.
"""

from __future__ import annotations

import functools
from typing import List, Optional

import numpy as np

from repro.sim.kernel import Application, ChildRequest, KernelSpec
from repro.workloads.base import REGISTRY, AddressAllocator, Benchmark

GRID = 128  # coarse cells per side -> 16384 coarse cells
BASE_ITEMS = 12  # advance/flux work per coarse cell
REFINE_FRACTION = 0.06  # of coarse cells refine at all
DEEP_FRACTION = 0.05  # of refined cells whose children refine again
MAX_FINE_ITEMS = 1536  # hottest cell's refinement work
MIN_FINE_ITEMS = 12
DEEP_ITEMS = 256  # work of one second-level refinement
TIME_STEPS = 3
CYCLES_PER_ITEM = 18.0
ACCESSES_PER_ITEM = 1.2
CELL_BYTES = 32
MIN_OFFLOAD = 8
CHILD_CTA = 64


@functools.lru_cache(maxsize=None)
def _error_field(seed: int) -> np.ndarray:
    """Smooth pseudo-error per coarse cell (combustion front shape)."""
    rng = np.random.default_rng(seed + 7)
    field = rng.random((GRID, GRID))
    for _ in range(2):
        field = (
            field
            + np.roll(field, 1, axis=0)
            + np.roll(field, -1, axis=0)
            + np.roll(field, 1, axis=1)
            + np.roll(field, -1, axis=1)
        ) / 5.0
    return field.ravel()


@functools.lru_cache(maxsize=None)
def _refinement(seed: int):
    """(refined cell ids, per-cell fine items, per-cell deep children)."""
    error = _error_field(seed)
    threshold = np.quantile(error, 1.0 - REFINE_FRACTION)
    refined = np.flatnonzero(error >= threshold)
    # Map error rank within the refined set onto a steep work ramp so the
    # hottest cells refine much deeper than the marginal ones.
    rank = np.argsort(np.argsort(error[refined]))  # 0 .. len-1
    frac = (rank + 1) / len(refined)
    fine = (MIN_FINE_ITEMS + (MAX_FINE_ITEMS - MIN_FINE_ITEMS) * frac**10).astype(
        np.int64
    )
    rng = np.random.default_rng(seed + 11)
    deep_mask = frac > (1.0 - DEEP_FRACTION)
    deep_count = np.where(deep_mask, rng.integers(1, 4, size=len(refined)), 0)
    return refined, fine, deep_count


def build(
    *,
    variant: str = "dp",
    seed: int = 1,
    cta_threads: Optional[int] = None,
) -> Application:
    """Build the AMR application."""
    cells = GRID * GRID
    refined, fine, deep_count = _refinement(seed)
    cta = cta_threads or CHILD_CTA

    alloc = AddressAllocator()
    coarse_base = alloc.alloc(cells * CELL_BYTES)
    fine_base = alloc.alloc(int(fine.sum()) * CELL_BYTES * TIME_STEPS)
    deep_base = alloc.alloc(int(deep_count.sum()) * DEEP_ITEMS * CELL_BYTES * TIME_STEPS)

    bases = coarse_base + np.arange(cells, dtype=np.int64) * CELL_BYTES
    fine_offsets = np.zeros(len(refined), dtype=np.int64)
    np.cumsum(fine[:-1], out=fine_offsets[1:])

    kernels: List[KernelSpec] = []
    flat_items = 0
    deep_cursor = 0
    for step in range(TIME_STEPS):
        requests = {}
        items = np.full(cells, BASE_ITEMS, dtype=np.int64)
        step_flat = BASE_ITEMS * cells
        for idx, cid in enumerate(refined):
            cid = int(cid)
            child_items = int(fine[idx])
            nested = {}
            for d in range(int(deep_count[idx])):
                # Second-level refinement launched from the child's thread d.
                nested[d] = ChildRequest(
                    name=f"AMR-s{step}-c{cid}-d{d}",
                    items=DEEP_ITEMS,
                    cta_threads=cta,
                    cycles_per_item=CYCLES_PER_ITEM,
                    accesses_per_item=ACCESSES_PER_ITEM,
                    mem_base=int(deep_base + (deep_cursor + d) * DEEP_ITEMS * CELL_BYTES),
                    mem_stride=CELL_BYTES,
                    at_fraction=0.5,
                )
            deep_cursor += int(deep_count[idx])
            requests[cid] = ChildRequest(
                name=f"AMR-s{step}-c{cid}",
                items=child_items,
                cta_threads=cta,
                cycles_per_item=CYCLES_PER_ITEM,
                accesses_per_item=ACCESSES_PER_ITEM,
                mem_base=int(fine_base + fine_offsets[idx] * CELL_BYTES),
                mem_stride=CELL_BYTES,
                nested=nested,
            )
            step_flat += child_items + int(deep_count[idx]) * DEEP_ITEMS
        if variant == "dp":
            kernels.append(
                KernelSpec(
                    name=f"AMR-step{step}",
                    threads_per_cta=64,
                    thread_items=items,
                    cycles_per_item=CYCLES_PER_ITEM,
                    accesses_per_item=ACCESSES_PER_ITEM,
                    mem_bases=bases,
                    mem_stride=CELL_BYTES,
                    child_requests=requests,
                )
            )
        else:
            flat_thread_items = items.copy()
            for cid, req in requests.items():
                extra = req.items + sum(
                    r.items for rs in req.nested.values() for r in rs
                )
                flat_thread_items[cid] += extra
            kernels.append(
                KernelSpec(
                    name=f"AMR-step{step}",
                    threads_per_cta=64,
                    thread_items=flat_thread_items,
                    cycles_per_item=CYCLES_PER_ITEM,
                    accesses_per_item=ACCESSES_PER_ITEM,
                    mem_bases=bases,
                    mem_stride=CELL_BYTES,
                )
            )
        flat_items += step_flat
    return Application(name="AMR", kernels=kernels, flat_items=flat_items)


REGISTRY.register(
    Benchmark(
        name="AMR",
        application="Adaptive Mesh Refinement",
        input_name="Combustion Simulation",
        build_flat=lambda seed: build(variant="flat", seed=seed),
        build_dp=lambda seed, cta: build(variant="dp", seed=seed, cta_threads=cta),
        default_threshold=MIN_OFFLOAD,
        sweep_thresholds=(8, 32, 64, 128, 512, 1024, 2048),
        default_cta_threads=CHILD_CTA,
        description="Time-stepped AMR with nested refinement child kernels.",
    )
)
