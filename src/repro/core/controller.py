"""The SPAWN controller — Algorithm 1 of the paper.

At every device-side kernel launch call the controller estimates:

* ``t_child  = t_overhead + (n + x) * t_cta / n_con``   (Equation 1)
* ``t_parent = workload * t_warp``                      (Equation 2)

and launches the child kernel only if ``t_child <= t_parent`` and the CCQS
has capacity; otherwise the parent thread performs the workload serially.
Before any child CTA has completed (``t_cta == 0``) the controller always
launches — the bootstrap path of Algorithm 1, lines 2-3, which is also the
root cause of the paper's SSSP-graph500 pathology (all launches happen
before the first metric update arrives).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.ccqs import CCQS
from repro.errors import ConfigError


@dataclass
class DecisionTrace:
    """One controller decision, kept for introspection and tests.

    Besides the verdict and both Equation 1/2 estimates, the trace snapshots
    the monitored inputs the estimates were computed from (``n_con``,
    ``t_cta``, ``t_warp``) so the observability layer can audit prediction
    quality after the run.  ``bootstrap`` marks the unconditional launches
    of Algorithm 1 lines 2-3, which carry no prediction.
    """

    time: float
    launched: bool
    x: int
    n_before: int
    t_child: float
    t_parent: float
    n_con: int = 0
    t_cta: float = 0.0
    t_warp: float = 0.0
    bootstrap: bool = False


@dataclass
class SpawnController:
    """Implements Algorithm 1 over a live CCQS model."""

    ccqs: CCQS
    #: Launch overhead charged to a prospective child (cycles); the paper
    #: uses the measured single-launch latency, i.e. A*1 + b.
    launch_overhead_cycles: float
    keep_trace: bool = False
    #: When True (standalone use) the controller performs Algorithm 1's
    #: ``n <- n + x`` itself on launch.  The simulator engine admits CTAs
    #: centrally for every policy, so it constructs controllers with False.
    auto_admit: bool = True
    launched: int = 0
    declined: int = 0
    trace: List[DecisionTrace] = field(default_factory=list)
    #: Record ``last_decision`` on every verdict so the observability layer
    #: can audit it, without the memory cost of the full ``keep_trace``
    #: history.  Off by default: the per-decision allocation is measurable
    #: on decision-heavy workloads, and untraced runs must pay nothing.
    record_decisions: bool = False
    #: Most recent decision (populated when ``record_decisions`` or
    #: ``keep_trace`` is set).
    last_decision: Optional[DecisionTrace] = None

    def __post_init__(self) -> None:
        if self.launch_overhead_cycles < 0:
            raise ConfigError("launch_overhead_cycles must be non-negative")

    def decide(self, *, time: float, num_ctas: int, workload_items: int) -> bool:
        """Return True to launch the child kernel, False to run serially.

        ``num_ctas`` is Algorithm 1's ``x``; ``workload_items`` is the number
        of serial loop iterations the parent thread would need (one item per
        iteration, each costing about one child-warp execution time).
        """
        metrics = self.ccqs.metrics
        metrics.advance(time)

        if metrics.tcta == 0:
            # Initialization: no child CTA has finished yet, so there is no
            # throughput estimate.  Algorithm 1 launches unconditionally.
            self._commit(time, True, num_ctas, 0.0, 0.0, bootstrap=True)
            return True

        t_child = self.launch_overhead_cycles + self.ccqs.estimated_drain_time(num_ctas)
        t_parent = workload_items * metrics.twarp

        launch = t_child <= t_parent and self.ccqs.has_capacity(num_ctas)
        self._commit(time, launch, num_ctas, t_child, t_parent)
        return launch

    def _commit(
        self,
        time: float,
        launch: bool,
        x: int,
        t_child: float,
        t_parent: float,
        *,
        bootstrap: bool = False,
    ) -> None:
        if self.record_decisions or self.keep_trace:
            metrics = self.ccqs.metrics
            self.last_decision = DecisionTrace(
                time,
                launch,
                x,
                self.ccqs.n,
                t_child,
                t_parent,
                n_con=metrics.ncon,
                t_cta=metrics.tcta,
                t_warp=metrics.twarp,
                bootstrap=bootstrap,
            )
            if self.keep_trace:
                self.trace.append(self.last_decision)
        if launch:
            if self.auto_admit:
                self.ccqs.admit(x)
            self.launched += 1
        else:
            self.declined += 1

    @property
    def decisions(self) -> int:
        return self.launched + self.declined
