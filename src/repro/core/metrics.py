"""Monitored metrics backing the SPAWN controller (Section IV-B).

The hardware monitors four quantities:

* ``n``      — child CTAs currently in the CCQS (pending + running);
* ``t_cta``  — historical average child-CTA execution time, updated when a
  child CTA finishes and leaves the CCQS;
* ``n_con``  — average number of concurrently *executing* child CTAs,
  computed over a 1024-cycle window; the paper obtains the average with a
  10-bit right shift, which we reproduce with integer arithmetic;
* ``t_warp`` — average child *warp* execution time, also windowed, used by
  Equation 2 to price one serial loop iteration in a parent thread.

Everything is event-driven: instead of adding to an accumulator every cycle
we integrate ``concurrency x dt`` between events, which is numerically
identical to the per-cycle accumulation the paper describes.
"""

from __future__ import annotations

from repro.errors import SimulationError


class WindowedConcurrencyAverage:
    """Time-weighted average of an integer level over fixed windows.

    Mirrors the hardware scheme: accumulate the level each cycle for
    ``window`` cycles, then shift right by ``log2(window)`` to produce the
    average used during the *next* window.
    """

    def __init__(self, window: int):
        if window <= 0 or window & (window - 1):
            raise SimulationError("window must be a positive power of two")
        self.window = window
        self._shift = window.bit_length() - 1
        self._level = 0
        self._acc = 0.0
        self._window_start = 0.0
        self._last_time = 0.0
        self._current_average = 0
        self.windows_completed = 0

    @property
    def level(self) -> int:
        return self._level

    @property
    def average(self) -> int:
        """Average from the last completed window (hardware register)."""
        return self._current_average

    def _integrate(self, now: float) -> None:
        if now < self._last_time:
            raise SimulationError("time moved backwards in metric window")
        self._acc += self._level * (now - self._last_time)
        self._last_time = now

    def advance(self, now: float) -> None:
        """Close any windows that have fully elapsed by ``now``."""
        while now - self._window_start >= self.window:
            boundary = self._window_start + self.window
            self._integrate(boundary)
            # Hardware: ncon >> 10.  _acc over one window is level*cycles.
            self._current_average = int(self._acc) >> self._shift
            self._acc = 0.0
            self._window_start = boundary
            self.windows_completed += 1
        self._integrate(now)

    def change(self, now: float, delta: int) -> None:
        self.advance(now)
        self._level += delta
        if self._level < 0:
            raise SimulationError("concurrency level went negative")


class RunningMean:
    """Cumulative mean (the "historical average" of Section IV-A)."""

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def add(self, value: float) -> None:
        self.count += 1
        self.total += value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class MetricsMonitor:
    """All monitored metrics, updated by the engine, read by SPAWN."""

    def __init__(self, *, window_cycles: int = 1024):
        self.n = 0  # child CTAs in the CCQS
        self._ncon = WindowedConcurrencyAverage(window_cycles)
        self._tcta = RunningMean()
        self._twarp = RunningMean()
        self.peak_n = 0

    # -- CCQS population ------------------------------------------------
    def on_ctas_admitted(self, count: int) -> None:
        """SPAWN admits ``x`` CTAs at decision time (Algorithm 1, line 8)."""
        if count <= 0:
            raise SimulationError("admitted CTA count must be positive")
        self.n += count
        self.peak_n = max(self.peak_n, self.n)

    def on_cta_started(self, now: float) -> None:
        """A child CTA began executing on an SMX."""
        self._ncon.change(now, +1)

    def on_cta_finished(self, now: float, exec_time: float, items_per_thread: int) -> None:
        """A child CTA finished and left the CCQS."""
        if self.n <= 0:
            raise SimulationError("child CTA finished with empty CCQS")
        self.n -= 1
        self._ncon.change(now, -1)
        self._tcta.add(exec_time)
        # A serial parent loop iteration processes one item; a child warp
        # spans the CTA's execution while covering items_per_thread items.
        self._twarp.add(exec_time / max(items_per_thread, 1))

    # -- Reads ----------------------------------------------------------
    def advance(self, now: float) -> None:
        self._ncon.advance(now)

    @property
    def tcta(self) -> float:
        return self._tcta.mean

    @property
    def twarp(self) -> float:
        return self._twarp.mean

    @property
    def ncon(self) -> int:
        return self._ncon.average

    @property
    def current_concurrency(self) -> int:
        return self._ncon.level

    @property
    def completed_child_ctas(self) -> int:
        return self._tcta.count
