"""The paper's contribution: CCQS, monitored metrics, SPAWN, policies."""

from repro.core.ccqs import CCQS
from repro.core.controller import DecisionTrace, SpawnController
from repro.core.metrics import MetricsMonitor, RunningMean, WindowedConcurrencyAverage
from repro.core.policies import (
    AlwaysLaunchPolicy,
    DecisionKind,
    DTBLPolicy,
    FreeLaunchPolicy,
    LaunchPolicy,
    LaunchRequest,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)

__all__ = [
    "AlwaysLaunchPolicy",
    "CCQS",
    "DecisionKind",
    "DecisionTrace",
    "DTBLPolicy",
    "FreeLaunchPolicy",
    "LaunchPolicy",
    "LaunchRequest",
    "MetricsMonitor",
    "NeverLaunchPolicy",
    "RunningMean",
    "SpawnController",
    "SpawnPolicy",
    "StaticThresholdPolicy",
    "WindowedConcurrencyAverage",
]
