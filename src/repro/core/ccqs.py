"""Child CTA Queuing System (CCQS) model — Section IV-A, Figure 11.

CCQS abstracts the GMU as a FCFS queue of child CTAs ("jobs") and the SMXs
as a server.  Its throughput is ``T = n_con / t_cta`` (average concurrent
child CTAs over average child CTA execution time), so a new kernel with
``x`` CTAs arriving when ``n`` CTAs are already in the system is estimated
to finish after ``(n + x) / T`` cycles of queuing plus service.

The class wraps a :class:`~repro.core.metrics.MetricsMonitor` and adds the
capacity bound (65,536 pending child CTAs on Kepler) that Algorithm 1
checks before admitting a launch.
"""

from __future__ import annotations

from repro.core.metrics import MetricsMonitor
from repro.errors import ConfigError


class CCQS:
    """Queue-plus-server estimate of child-kernel completion time."""

    def __init__(self, metrics: MetricsMonitor, *, max_queue_size: int = 65536):
        if max_queue_size <= 0:
            raise ConfigError("CCQS max_queue_size must be positive")
        self.metrics = metrics
        self.max_queue_size = max_queue_size

    @property
    def n(self) -> int:
        """Jobs (child CTAs) currently in the system."""
        return self.metrics.n

    def has_capacity(self, x: int) -> bool:
        """Can ``x`` more CTAs be admitted without exceeding the queue bound?"""
        return self.n + x <= self.max_queue_size

    def throughput(self) -> float:
        """CTAs retired per cycle; 0.0 while no child CTA has completed."""
        tcta = self.metrics.tcta
        if tcta <= 0:
            return 0.0
        ncon = max(self.metrics.ncon, 1)
        return ncon / tcta

    def estimated_drain_time(self, x: int) -> float:
        """``(n + x) / T`` — queuing latency plus service time (Equation 1).

        Returns 0.0 while the system has no throughput estimate yet (the
        Algorithm 1 bootstrap path launches unconditionally in that case).
        """
        t = self.throughput()
        if t <= 0:
            return 0.0
        return (self.n + x) / t

    def admit(self, x: int) -> None:
        """Record ``x`` CTAs entering the system (Algorithm 1, line 8)."""
        self.metrics.on_ctas_admitted(x)
