"""Launch policies: who decides whether a child kernel launch goes ahead.

The simulator routes every device-side launch call through a
:class:`LaunchPolicy`.  The schemes of the paper's evaluation map onto
policies as follows:

* **Baseline-DP** — :class:`StaticThresholdPolicy` at the application's
  native THRESHOLD (launch whenever the local workload exceeds it);
* **Offline-Search** — the best-performing :class:`StaticThresholdPolicy`
  over an exhaustive threshold sweep (done by the harness);
* **SPAWN** — :class:`SpawnPolicy`, Algorithm 1 over live CCQS metrics;
* **DTBL** (Wang et al., ISCA'15) — :class:`DTBLPolicy`: the child's CTAs
  are coalesced onto an already-running aggregated kernel, paying no
  per-kernel launch overhead and consuming no HWQ, but still queuing
  against the CTA concurrency limit;
* the **flat** scheme does not use a policy at all (the application has no
  child requests).
"""

from __future__ import annotations

import abc
import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.ccqs import CCQS
from repro.core.controller import SpawnController
from repro.core.metrics import MetricsMonitor
from repro.errors import ConfigError
from repro.sim.config import GPUConfig


class DecisionKind(enum.Enum):
    LAUNCH = "launch"  # real device-side kernel launch (pays A*x + b)
    SERIAL = "serial"  # parent thread loops over the workload itself
    COALESCE = "coalesce"  # DTBL: CTAs appended to an aggregated kernel
    REUSE = "reuse"  # Free Launch: work spread over the parent CTA's threads
    CONSOLIDATE = "consolidate"  # buffered into a coarser merged kernel
    AGGREGATE = "aggregate"  # merged with co-scheduled requests at a granularity


@dataclass(frozen=True)
class LaunchRequest:
    """One thread's launch call, as seen by the policy."""

    time: float
    items: int  # the thread's local workload
    num_ctas: int  # x: CTAs the child kernel would have
    items_per_thread: int
    depth: int  # nesting depth of the would-be child


class LaunchPolicy(abc.ABC):
    """Decides the fate of each launch request during a run."""

    name: str = "abstract"

    def bind(self, metrics: MetricsMonitor, config: GPUConfig) -> None:
        """Called by the engine before a run; default needs nothing."""

    @abc.abstractmethod
    def decide(self, request: LaunchRequest) -> DecisionKind:
        """Classify one launch request."""

    def set_audit(self, enabled: bool) -> None:
        """Ask the policy to retain per-decision internals for auditing.

        Called by the engine once per run, after :meth:`bind`, with the
        tracer's enabled state — retaining internals costs an allocation
        per decision, so untraced runs keep it off.  Default: no-op.
        """

    def decision_audit(self) -> Optional[Dict[str, object]]:
        """Internals of the most recent :meth:`decide`, for the tracer.

        Policies with a prediction model (SPAWN) return the monitored
        inputs and both time estimates (when :meth:`set_audit` enabled
        retention); threshold-style policies have no model, so the default
        is ``None`` and the observability layer records only the verdict.
        """
        return None

    def describe(self) -> str:
        return self.name


class AlwaysLaunchPolicy(LaunchPolicy):
    """Launch every child request — the most aggressive DP behaviour."""

    name = "always-launch"

    def decide(self, request: LaunchRequest) -> DecisionKind:
        return DecisionKind.LAUNCH


class NeverLaunchPolicy(LaunchPolicy):
    """Decline everything: the DP source runs like its flat variant."""

    name = "never-launch"

    def decide(self, request: LaunchRequest) -> DecisionKind:
        return DecisionKind.SERIAL


class StaticThresholdPolicy(LaunchPolicy):
    """Launch iff the thread's local workload exceeds a fixed THRESHOLD.

    This is exactly the programmer-visible knob of Section II-B; sweeping it
    produces the x-axis of Fig. 5 and its best point is Offline-Search.
    """

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ConfigError("threshold must be non-negative")
        self.threshold = threshold
        self.name = f"threshold-{threshold}"

    def decide(self, request: LaunchRequest) -> DecisionKind:
        if request.items > self.threshold:
            return DecisionKind.LAUNCH
        return DecisionKind.SERIAL


class SpawnPolicy(LaunchPolicy):
    """The paper's contribution: Algorithm 1 over live CCQS metrics."""

    name = "spawn"

    def __init__(self, *, max_queue_size: int = 65536, keep_trace: bool = False):
        self.max_queue_size = max_queue_size
        self.keep_trace = keep_trace
        self.controller: SpawnController | None = None
        self._audit_enabled = False

    def bind(self, metrics: MetricsMonitor, config: GPUConfig) -> None:
        ccqs = CCQS(metrics, max_queue_size=self.max_queue_size)
        self.controller = SpawnController(
            ccqs=ccqs,
            launch_overhead_cycles=float(config.launch.latency(1)),
            keep_trace=self.keep_trace,
            record_decisions=self._audit_enabled,
            # The engine admits launched CTAs to the shared metrics monitor
            # for every policy; avoid double-counting n here.
            auto_admit=False,
        )

    def set_audit(self, enabled: bool) -> None:
        self._audit_enabled = enabled
        if self.controller is not None:
            self.controller.record_decisions = enabled

    def decide(self, request: LaunchRequest) -> DecisionKind:
        if self.controller is None:
            raise ConfigError("SpawnPolicy used before bind()")
        launch = self.controller.decide(
            time=request.time,
            num_ctas=request.num_ctas,
            workload_items=request.items,
        )
        return DecisionKind.LAUNCH if launch else DecisionKind.SERIAL

    def decision_audit(self) -> Optional[Dict[str, object]]:
        if self.controller is None or self.controller.last_decision is None:
            return None
        d = self.controller.last_decision
        return {
            "n": d.n_before,
            "n_con": d.n_con,
            "t_cta": d.t_cta,
            "t_warp": d.t_warp,
            "t_child": d.t_child,
            "t_parent": d.t_parent,
            "bootstrap": d.bootstrap,
        }


class FreeLaunchPolicy(LaunchPolicy):
    """Free Launch (Chen & Shen, MICRO'15): child launches become thread reuse.

    The compiler transformation replaces every child kernel launch with code
    that distributes the child's work across the already-running parent
    threads: no launch overhead, no new CTAs, but the work competes for the
    parent kernel's own occupancy.  Cited by the paper as the prior
    software-only answer to launch overhead.
    """

    def __init__(self, threshold: int = 0):
        if threshold < 0:
            raise ConfigError("threshold must be non-negative")
        self.threshold = threshold
        self.name = f"free-launch-{threshold}"

    def decide(self, request: LaunchRequest) -> DecisionKind:
        if request.items > self.threshold:
            return DecisionKind.REUSE
        return DecisionKind.SERIAL


#: Merge scopes a merging policy may declare (narrowest to widest).
MERGE_SCOPES = ("warp", "block", "cta", "grid")


class ConsolidatePolicy(LaunchPolicy):
    """Workload consolidation: buffer tiny launches into coarser kernels.

    Requests above the application THRESHOLD are not launched one by one;
    the engine accumulates them per parent CTA and submits one merged
    kernel once ``batch_ctas`` child CTAs have been gathered (or when the
    parent CTA finishes computing).  One launch overhead is paid per
    *merged* kernel instead of per request — the trade is a later start
    for the first buffered children.
    """

    #: The engine reads this to pick its buffering/flush granularity.
    merge_scope = "cta"

    def __init__(self, threshold: int, batch_ctas: int = 8):
        if threshold < 0:
            raise ConfigError("threshold must be non-negative")
        if batch_ctas < 1:
            raise ConfigError("batch_ctas must be positive")
        self.threshold = threshold
        self.batch_ctas = batch_ctas
        self.name = f"consolidate-{threshold}-b{batch_ctas}"

    def decide(self, request: LaunchRequest) -> DecisionKind:
        if request.items > self.threshold:
            return DecisionKind.CONSOLIDATE
        return DecisionKind.SERIAL


class AggregatePolicy(LaunchPolicy):
    """Launch aggregation at warp/block/grid granularity (Olabi et al.).

    The DP compiler framework of arXiv:2201.02789 rewrites device-side
    launches so that all requests issued by one warp / thread block / grid
    are aggregated into a single child kernel.  Requests above the
    application THRESHOLD are merged by the engine with every other
    admitted request in the same scope; below it they serialize, exactly
    like ``threshold:<T>``.
    """

    def __init__(self, threshold: int, granularity: str):
        if threshold < 0:
            raise ConfigError("threshold must be non-negative")
        if granularity not in ("warp", "block", "grid"):
            raise ConfigError(
                f"aggregate granularity must be warp, block, or grid, "
                f"got {granularity!r}"
            )
        self.threshold = threshold
        self.granularity = granularity
        self.name = f"aggregate-{granularity}-{threshold}"

    @property
    def merge_scope(self) -> str:
        return self.granularity

    def decide(self, request: LaunchRequest) -> DecisionKind:
        if request.items > self.threshold:
            return DecisionKind.AGGREGATE
        return DecisionKind.SERIAL


class DTBLPolicy(LaunchPolicy):
    """Dynamic Thread Block Launch: coalesce child CTAs, skip kernel launch.

    DTBL requires the coalesced CTAs to match a running kernel's function
    and dimensions; within one application's child kernels that holds, so
    every request above the application THRESHOLD coalesces.
    """

    def __init__(self, threshold: int):
        if threshold < 0:
            raise ConfigError("threshold must be non-negative")
        self.threshold = threshold
        self.name = f"dtbl-{threshold}"

    def decide(self, request: LaunchRequest) -> DecisionKind:
        if request.items > self.threshold:
            return DecisionKind.COALESCE
        return DecisionKind.SERIAL
