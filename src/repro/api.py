"""The one stable import surface for driving the reproduction.

Everything a caller needs to run simulations lives here::

    from repro.api import simulate, run_suite, RunConfig

    result = simulate("BFS-graph500", "spawn")
    report = run_suite(
        [RunConfig("BFS-graph500", "spawn"), ("MM-small", "flat")],
        jobs=4, timeout=300.0, max_retries=2,
    )

**API stability.**  Names exported from ``repro.api`` follow a
deprecation policy: they are never removed or re-signatured without at
least one release in which the old spelling still works and emits
``DeprecationWarning`` (see ``parse_scheme`` and the ``Runner.run_simple``
keyword pass-through for the current examples).  Internal modules
(``repro.sim``, ``repro.harness`` internals, ``repro.core``) remain free
to refactor between releases — import them directly only when you accept
that churn.

The façade deliberately re-exports the few types its signatures mention
(:class:`RunConfig`, :class:`Runner`, :class:`SimResult`,
:class:`GPUConfig`, :class:`SuiteReport`, :class:`ExecutionPolicy`,
:class:`FaultPlan`, ...) so downstream code can depend on ``repro.api``
alone.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.errors import (
    HarnessError,
    ReproError,
    RunFailure,
    TaskTimeout,
    WorkerCrash,
)
from repro.harness.faults import FaultPlan, FlakyStore
from repro.harness.parallel import (
    ExecutionPolicy,
    ParallelRunner,
    SuiteReport,
    TaskOutcome,
    default_jobs,
)
from repro.harness.replication import ReplicationResult, replicate
from repro.harness.runner import (
    PER_CHILD,
    PER_PARENT_CTA,
    RunConfig,
    Runner,
    geometric_mean,
)
from repro.harness.schemes import DP_SCHEMES, SchemeSpec
from repro.harness.store import (
    ResultStore,
    StoreBackend,
    default_cache_dir,
    open_store,
)
from repro.harness.history import PerfRecord, load_history
from repro.harness.sweep import SweepResult, offline_search, threshold_sweep
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.tracer import Tracer
from repro.service import (
    AutoTuner,
    FleetConfig,
    FleetOverloaded,
    FleetStats,
    ReplayBudgetExceeded,
    ReplayBudgets,
    ReplayReport,
    RequestLedger,
    ServiceClosed,
    ServiceConfig,
    ServiceFleet,
    ServiceJob,
    ServiceOverloaded,
    ServiceStats,
    SimulationService,
    TrafficRequest,
    drive_service,
    fleet_runners,
    generate_traffic,
    replay_ledger,
)
from repro.sim.config import GPUConfig, kepler_k20m, small_debug_gpu
from repro.sim.engine import SimResult

#: Things run_suite accepts as one entry: a full config or (benchmark, scheme).
ConfigLike = Union[RunConfig, Tuple[str, str]]


def _as_config(entry: ConfigLike, seed: int) -> RunConfig:
    if isinstance(entry, RunConfig):
        return entry
    try:
        benchmark, scheme = entry
    except (TypeError, ValueError):
        raise HarnessError(
            f"suite entries must be RunConfig or (benchmark, scheme), got {entry!r}"
        ) from None
    return RunConfig(benchmark=benchmark, scheme=scheme, seed=seed)


def _make_runner(
    gpu: Optional[GPUConfig],
    max_events: Optional[int],
    store: Optional[ResultStore],
    cache_dir,
) -> Runner:
    kwargs = {}
    if max_events is not None:
        kwargs["max_events"] = max_events
    return Runner(gpu, store=store, cache_dir=cache_dir, **kwargs)


def simulate(
    benchmark: str,
    scheme: str,
    *,
    gpu: Optional[GPUConfig] = None,
    seed: int = 1,
    cta_threads: Optional[int] = None,
    stream_policy: str = PER_CHILD,
    trace_interval: float = 1000.0,
    engine: str = "default",
    max_events: Optional[int] = None,
    runner: Optional[Runner] = None,
    store: Optional[ResultStore] = None,
    cache_dir=None,
    tracer: Optional[Tracer] = None,
) -> SimResult:
    """Run (or fetch from cache) one benchmark/scheme combination.

    The end-to-end entry point: builds the Table I benchmark, parses the
    scheme, simulates on ``gpu`` (default: the paper's K20m-like
    configuration) and returns the :class:`SimResult`.  Pass ``runner`` to
    share caches across calls; otherwise ``store``/``cache_dir`` control
    persistence for this call's throwaway runner.  ``engine`` selects the
    simulation core (``"fast"`` for the certified batch-stepping engine).
    """
    if runner is None:
        runner = _make_runner(gpu, max_events, store, cache_dir)
    config = RunConfig(
        benchmark=benchmark,
        scheme=scheme,
        seed=seed,
        cta_threads=cta_threads,
        stream_policy=stream_policy,
        trace_interval=trace_interval,
        engine=engine,
    )
    return runner.run(config, tracer=tracer)


def speedup(
    benchmark: str,
    scheme: str,
    *,
    gpu: Optional[GPUConfig] = None,
    seed: int = 1,
    runner: Optional[Runner] = None,
) -> float:
    """Speedup of ``scheme`` over the flat variant (the paper's metric)."""
    if runner is None:
        runner = _make_runner(gpu, None, None, None)
    return runner.speedup(benchmark, scheme, seed=seed)


def run_suite(
    configs: Sequence[ConfigLike],
    *,
    gpu: Optional[GPUConfig] = None,
    seed: int = 1,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    max_retries: int = 2,
    backoff: float = 0.0,
    fail_fast: bool = False,
    faults: Optional[FaultPlan] = None,
    max_events: Optional[int] = None,
    runner: Optional[Runner] = None,
    store: Optional[ResultStore] = None,
    cache_dir=None,
    tracer: Optional[Tracer] = None,
) -> SuiteReport:
    """Run a whole set of configs fault-tolerantly; quarantine failures.

    Entries may be :class:`RunConfig` instances or plain
    ``(benchmark, scheme)`` pairs (run under ``seed``).  The suite
    completes even when individual runs crash, hang past ``timeout``, or
    fail permanently — inspect :attr:`SuiteReport.failures` afterwards, or
    call :meth:`SuiteReport.raise_if_failed`.  Attach a ``store`` (or
    ``cache_dir``) to checkpoint completed runs: re-invoking after a
    mid-suite kill re-simulates only the missing configs.
    """
    if runner is None:
        runner = _make_runner(gpu, max_events, store, cache_dir)
    policy = ExecutionPolicy(
        timeout=timeout,
        max_retries=max_retries,
        backoff=backoff,
        fail_fast=fail_fast,
    )
    parallel = ParallelRunner(runner, policy=policy, faults=faults, tracer=tracer)
    return parallel.run_suite(
        [_as_config(entry, seed) for entry in configs], jobs=jobs
    )


def serve(
    *,
    jobs: int = 2,
    deadline_ms: Optional[float] = None,
    inline_threshold_ms: float = 0.0,
    max_batch: int = 8,
    max_queue: Optional[int] = None,
    autotune: bool = False,
    shards: int = 1,
    store_url: Optional[str] = None,
    runner: Optional[Runner] = None,
    store: Optional[ResultStore] = None,
    cache_dir=None,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
) -> Union[SimulationService, ServiceFleet]:
    """Build a :class:`SimulationService` (not yet started).

    The async serving entry point::

        async with serve(jobs=2, deadline_ms=500.0) as svc:
            job = await submit(svc, ("BFS-graph500", "spawn"))
            [result] = await gather(svc, [job])

    Requests whose predicted queue delay exceeds ``deadline_ms`` are
    rejected with :class:`ServiceOverloaded` (the predicted-delay
    evidence is attached as ``.decision``); requests predicted cheaper
    than ``inline_threshold_ms`` run directly on the event-loop thread.
    ``autotune=True`` turns on the online successive-halving parameter
    search (:mod:`repro.service.autotune`): tunable requests run the
    tuner's current arm and every completion feeds the search.

    ``shards > 1`` returns a :class:`ServiceFleet` instead — the same
    awaitable surface, but requests consistent-hash onto ``shards``
    independent services.  ``store_url`` (``dir://``, ``sqlite://``,
    ``kv://``) then names the *shared* backend every shard opens its own
    handle to; with one shard it is shorthand for
    ``store=open_store(store_url)``.
    """
    config = ServiceConfig(
        jobs=jobs,
        deadline_ms=deadline_ms,
        inline_threshold_ms=inline_threshold_ms,
        max_batch=max_batch,
        max_queue=max_queue,
        autotune=autotune,
    )
    if shards > 1:
        if runner is not None or store is not None or cache_dir is not None:
            raise HarnessError(
                "serve(shards=N) builds one runner per shard from "
                "store_url; pass store_url, not runner/store/cache_dir"
            )
        return ServiceFleet(
            fleet_runners(shards, store_url=store_url),
            config=FleetConfig(shards=shards, service=config),
            policy=policy,
            faults=faults,
            tracer=tracer,
        )
    if store is None and store_url is not None:
        store = open_store(store_url)
    if runner is None:
        runner = _make_runner(None, None, store, cache_dir)
    return SimulationService(
        runner,
        config=config,
        policy=policy,
        faults=faults,
        tracer=tracer,
    )


async def submit(
    service: SimulationService, entry: ConfigLike, *, seed: int = 1
) -> ServiceJob:
    """Submit one request to a running service; returns its job handle."""
    return await service.submit(entry, seed=seed)


async def gather(
    service: SimulationService,
    jobs,
    *,
    return_exceptions: bool = False,
):
    """Await many job handles (input order), like ``asyncio.gather``."""
    return await service.gather(jobs, return_exceptions=return_exceptions)


__all__ = [
    # entry points
    "simulate",
    "speedup",
    "run_suite",
    "threshold_sweep",
    "offline_search",
    "replicate",
    "geometric_mean",
    "default_jobs",
    "default_cache_dir",
    # serving layer
    "serve",
    "submit",
    "gather",
    "SimulationService",
    "ServiceConfig",
    "ServiceJob",
    "ServiceStats",
    "ServiceFleet",
    "FleetConfig",
    "FleetStats",
    "fleet_runners",
    "AutoTuner",
    "TrafficRequest",
    "generate_traffic",
    # telemetry & load testing
    "METRICS",
    "MetricsRegistry",
    "RequestLedger",
    "ReplayBudgets",
    "ReplayReport",
    "drive_service",
    "replay_ledger",
    "PerfRecord",
    "load_history",
    # core types
    "RunConfig",
    "Runner",
    "ParallelRunner",
    "SimResult",
    "GPUConfig",
    "SchemeSpec",
    "SuiteReport",
    "TaskOutcome",
    "ExecutionPolicy",
    "FaultPlan",
    "FlakyStore",
    "ResultStore",
    "StoreBackend",
    "open_store",
    "SweepResult",
    "ReplicationResult",
    "Tracer",
    # constants / presets
    "DP_SCHEMES",
    "PER_CHILD",
    "PER_PARENT_CTA",
    "kepler_k20m",
    "small_debug_gpu",
    # errors
    "ReproError",
    "HarnessError",
    "RunFailure",
    "WorkerCrash",
    "TaskTimeout",
    "ServiceOverloaded",
    "FleetOverloaded",
    "ServiceClosed",
    "ReplayBudgetExceeded",
]
