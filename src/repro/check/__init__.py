"""Conformance subsystem: invariant checking, differential validation, goldens.

Three legs, per the validation methodology of trace-driven simulators
(GPGPU-Sim's functional checker, accel-sim's trace validation):

* :mod:`repro.check.invariants` — a :class:`ConformanceChecker` that
  attaches through the :mod:`repro.obs` tracer hook points and asserts
  runtime invariants (clock monotonicity, CTA conservation, residency
  caps, HWQ occupancy, FCFS stream order, SPAWN Algorithm 1 re-evaluation,
  stats identities) over every simulation it observes.
* :mod:`repro.check.reference` — naive pure-Python reference
  implementations of the optimized engine components, and a differential
  runner that asserts identical event streams and bit-identical stats.
* :mod:`repro.check.golden` — a versioned golden-trace regression corpus
  (compressed JSONL event traces for a pinned benchmark x scheme matrix)
  with a first-divergence diff report.
"""

from repro.check.golden import (
    GOLDEN_MATRIX,
    GoldenMismatch,
    diff_traces,
    golden_path,
    load_golden,
    write_golden,
)
from repro.check.invariants import ConformanceChecker, Violation
from repro.check.reference import (
    DifferentialMismatch,
    ReferenceEventQueue,
    ReferenceSimulator,
    run_differential,
)

__all__ = [
    "ConformanceChecker",
    "Violation",
    "ReferenceEventQueue",
    "ReferenceSimulator",
    "DifferentialMismatch",
    "run_differential",
    "GOLDEN_MATRIX",
    "GoldenMismatch",
    "diff_traces",
    "golden_path",
    "load_golden",
    "write_golden",
]
