"""Versioned golden-trace regression corpus.

Where the old golden tests pin 58 *summary scalars*, this corpus pins the
**full event stream** of a benchmark x scheme matrix: every kernel arrival,
CTA dispatch/finish, HWQ bind/release, and launch decision, in order.  An
optimization that reorders dispatch without moving the makespan — exactly
the class of bug summary goldens cannot see — diverges here on the first
reordered event, and :func:`diff_traces` names it.

Storage format (``tests/golden/<benchmark>__<scheme>.jsonl.gz``): gzip'd
JSONL; line 1 is a metadata header (``golden_version``, benchmark, scheme,
seed, event count, makespan), every further line is one canonical event —
``json.dumps(..., sort_keys=True)`` of ``{"ts", "kind", **args}``.

Refreshing after an intentional behaviour change: ``repro check
--update-golden`` (see DESIGN §10 for the policy: a golden update must be
reviewed as a semantic change, never rubber-stamped).
"""

from __future__ import annotations

import gzip
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import HarnessError
from repro.obs.tracer import TraceEvent

#: Bump when the canonical event schema changes incompatibly.
GOLDEN_VERSION = 1

#: The pinned benchmark x scheme matrix.  Chosen to cover every decision
#: verdict (launch / serial / coalesce via dtbl), flat and DP apps, HWQ
#: contention, and grid suspension, while staying fast enough for CI
#: (each pair simulates in well under 2 s).
GOLDEN_MATRIX: Tuple[Tuple[str, str], ...] = (
    ("BFS-citation", "flat"),
    ("BFS-citation", "baseline-dp"),
    ("BFS-citation", "spawn"),
    ("BFS-citation", "dtbl"),
    ("GC-citation", "baseline-dp"),
    ("GC-citation", "spawn"),
    ("MM-small", "spawn"),
    ("Mandel", "spawn"),
    ("BFS-graph500", "spawn"),
    ("SSSP-citation", "dtbl"),
    # Scheme zoo (consolidate / aggregate / acs), three benchmarks each:
    # pins merged-kernel construction, flush ordering, and ACS binding.
    ("BFS-citation", "consolidate"),
    ("GC-citation", "consolidate"),
    ("SSSP-citation", "consolidate"),
    ("BFS-citation", "aggregate:block"),
    ("GC-citation", "aggregate:block"),
    ("SSSP-citation", "aggregate:block"),
    ("BFS-citation", "acs"),
    ("GC-citation", "acs"),
    ("SSSP-citation", "acs"),
)

#: Seed pinned for every golden run (RunConfig's default).
GOLDEN_SEED = 1


def canonical_events(events: Iterable[TraceEvent]) -> List[Dict[str, object]]:
    """Flat-dict form of an event stream, ready for JSON comparison.

    Round-trips through JSON so in-memory streams compare equal to
    reloaded golden streams (tuples become lists, int-valued floats keep
    their type, etc.).
    """
    return [
        json.loads(json.dumps(e.to_dict(), sort_keys=True)) for e in events
    ]


def golden_path(directory, benchmark: str, scheme: str) -> Path:
    """File path for one matrix cell (scheme ':' sanitized for filesystems)."""
    safe_scheme = scheme.replace(":", "-")
    return Path(directory) / f"{benchmark}__{safe_scheme}.jsonl.gz"


def default_golden_dir() -> Path:
    """The in-repo corpus location (tests/golden/ next to the test suite)."""
    return Path(__file__).resolve().parents[3] / "tests" / "golden"


def write_golden(
    path,
    events: List[Dict[str, object]],
    *,
    benchmark: str,
    scheme: str,
    seed: int = GOLDEN_SEED,
    makespan: float = 0.0,
) -> None:
    """Write one golden trace file (header line + one line per event)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = {
        "golden_version": GOLDEN_VERSION,
        "benchmark": benchmark,
        "scheme": scheme,
        "seed": seed,
        "events": len(events),
        "makespan": makespan,
    }
    with gzip.open(path, "wt", encoding="utf-8") as handle:
        handle.write(json.dumps(header, sort_keys=True) + "\n")
        for event in events:
            handle.write(json.dumps(event, sort_keys=True) + "\n")


def load_golden(path) -> Tuple[Dict[str, object], List[Dict[str, object]]]:
    """Load (header, events) from a golden trace file."""
    path = Path(path)
    if not path.exists():
        raise HarnessError(
            f"golden trace {path} does not exist — generate it with "
            "'repro check --update-golden'"
        )
    with gzip.open(path, "rt", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    if not lines:
        raise HarnessError(f"golden trace {path} is empty")
    header = json.loads(lines[0])
    version = header.get("golden_version")
    if version != GOLDEN_VERSION:
        raise HarnessError(
            f"golden trace {path} has version {version}, this code expects "
            f"{GOLDEN_VERSION} — regenerate with 'repro check --update-golden'"
        )
    events = [json.loads(line) for line in lines[1:]]
    if header.get("events") != len(events):
        raise HarnessError(
            f"golden trace {path} is truncated: header promises "
            f"{header.get('events')} events, file holds {len(events)}"
        )
    return header, events


@dataclass
class GoldenMismatch:
    """First divergence between an expected and an actual event stream."""

    index: int
    expected: Optional[Dict[str, object]]
    actual: Optional[Dict[str, object]]
    fields: Tuple[str, ...] = ()

    def __str__(self) -> str:
        if self.expected is None:
            return (
                f"first divergence at event #{self.index}: expected stream "
                f"ended, actual continues with {_describe(self.actual)}"
            )
        if self.actual is None:
            return (
                f"first divergence at event #{self.index}: actual stream "
                f"ended, expected continues with {_describe(self.expected)}"
            )
        parts = ", ".join(
            f"{f}: {self.expected.get(f)!r} != {self.actual.get(f)!r}"
            for f in self.fields
        )
        return (
            f"first divergence at event #{self.index} "
            f"({_describe(self.expected)} vs {_describe(self.actual)}): {parts}"
        )


def _describe(event: Optional[Dict[str, object]]) -> str:
    if event is None:
        return "<end of stream>"
    ts = event.get("ts")
    ts_text = f"{ts:.0f}" if isinstance(ts, float) else str(ts)
    return f"{event.get('kind')}@t={ts_text}"


def diff_traces(
    expected: List[Dict[str, object]], actual: List[Dict[str, object]]
) -> Optional[GoldenMismatch]:
    """First diverging event between two canonical streams, or None."""
    for index, (want, got) in enumerate(zip(expected, actual)):
        if want != got:
            fields = tuple(
                sorted(
                    key
                    for key in set(want) | set(got)
                    if want.get(key) != got.get(key)
                )
            )
            return GoldenMismatch(index, want, got, fields)
    if len(expected) != len(actual):
        index = min(len(expected), len(actual))
        return GoldenMismatch(
            index,
            expected[index] if index < len(expected) else None,
            actual[index] if index < len(actual) else None,
        )
    return None


def record_trace(
    benchmark: str, scheme: str, *, check: bool = True, engine: str = "default"
):
    """Simulate one matrix cell with a ConformanceChecker attached.

    Returns ``(checker, result)`` — the checker holds the retained event
    stream (golden source) and any invariant violations.  Import-local to
    keep :mod:`repro.check.golden` free of heavyweight harness imports for
    consumers that only diff traces.

    ``engine`` selects the simulation core.  The corpus itself is always
    recorded with the reference engine; verifying with ``engine="fast"``
    diffs the fast core's event stream against those same committed
    files — the strongest bit-identity certificate the repo has.
    """
    from repro.check.invariants import ConformanceChecker
    from repro.harness.runner import RunConfig, Runner
    from repro.sim.config import GPUConfig

    config = GPUConfig()
    checker = ConformanceChecker(config, scheme=scheme)
    runner = Runner(config)
    result = runner.run(
        RunConfig(
            benchmark=benchmark, scheme=scheme, seed=GOLDEN_SEED, engine=engine
        ),
        tracer=checker,
    )
    if check:
        checker.finalize(result)
    return checker, result
