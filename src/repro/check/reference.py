"""Naive reference implementations for differential engine validation.

PR 2 optimized the engine hot path: the tuple-heap :class:`EventQueue` with
dead-entry compaction, the maintained ``next_target`` horizon in
:meth:`SMX.next_event_time`, and the insertion-ordered-dict LRU in the L2
model.  Each optimized component gets a deliberately naive counterpart here
— linear-scan event list, recomputed-from-scratch horizons, list-based LRU
— with *identical semantics*.  :func:`run_differential` runs the same
application through both simulators and asserts the event streams are
identical event-for-event and the final stats are bit-identical, which is
how an ordering bug in an optimization surfaces even when the makespan
happens to cancel out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.check.golden import GoldenMismatch, canonical_events, diff_traces
from repro.errors import SimulationError
from repro.obs.tracer import Tracer
from repro.sim.engine import GPUSimulator
from repro.sim.events import Event
from repro.sim.instances import EPSILON, CTAInstance
from repro.sim.kernel import Application
from repro.sim.memory import MemorySystem, SetAssociativeCache
from repro.sim.smx import SMX


class ReferenceEventQueue:
    """List-based event queue: linear min-scan, eager removal.

    Same contract as :class:`repro.sim.events.EventQueue` (stable FIFO
    among same-time events via the sequence number, monotone clock), none
    of the heap/compaction machinery.  O(n) per pop — only for tests.
    """

    def __init__(self) -> None:
        self._events: List[Event] = []
        self._next_seq = 0
        self.now: float = 0.0

    def __len__(self) -> int:
        return sum(1 for e in self._events if not e.cancelled)

    def schedule(self, time: float, callback: Callable[[], None]) -> Event:
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at t={time} before now={self.now}"
            )
        event = Event(time, self._next_seq, callback)
        self._next_seq += 1
        event._queue = self
        self._events.append(event)
        return event

    def schedule_in(self, delay: float, callback: Callable[[], None]) -> Event:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    def _note_cancelled(self) -> None:
        """Eagerly drop cancelled events (the naive strategy)."""
        self._events = [e for e in self._events if not e.cancelled]

    def pop(self) -> Optional[Event]:
        events = self._events
        if not events:
            return None
        best = min(events, key=lambda e: (e.time, e.seq))
        events.remove(best)
        self.now = best.time
        return best

    def peek_time(self) -> Optional[float]:
        events = self._events
        if not events:
            return None
        return min(events, key=lambda e: (e.time, e.seq)).time

    def run(self, max_events: Optional[int] = None) -> int:
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"event budget exhausted after {executed} events "
                    "(likely a livelock in the simulated system)"
                )
            event = self.pop()
            if event is None:
                return executed
            event.callback()
            executed += 1


def _recomputed_target(cta: CTAInstance) -> float:
    """A CTA's next progress target, derived from scratch.

    The optimized :class:`SMX` trusts the incrementally maintained
    ``next_target``; the reference re-derives it every time from the
    decision list and the warp critical paths.
    """
    if cta.next_decision < len(cta.decisions):
        return cta.decisions[cta.next_decision].at_consumed
    return max(cta.warp_total)


class ReferenceSMX(SMX):
    """SMX whose event horizon is recomputed from scratch each query."""

    def next_event_time(self, now: float) -> Optional[float]:
        if not self.resident:
            return None
        self.advance(now)
        slack = min(_recomputed_target(c) - c.consumed for c in self.resident)
        if slack <= 0.0:
            return now
        return now + slack / self.scale

    def ctas_with_fired_decisions(self) -> List[CTAInstance]:
        return [
            c
            for c in self.resident
            if c.next_decision < len(c.decisions)
            and _recomputed_target(c) <= c.consumed + EPSILON
        ]


class ReferenceLRUCache(SetAssociativeCache):
    """Set-associative LRU with list-based sets (O(ways) scans).

    Same replacement semantics as the dict-based optimized cache: a list
    ordered LRU-first, hits move the line to the tail (MRU), misses evict
    the head when the set is full.
    """

    def __init__(self, config) -> None:
        super().__init__(config)
        self._sets = [[] for _ in range(self.num_sets)]

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]

    def access_line(self, line: int) -> bool:
        ways = self._sets[line % self.num_sets]
        if line in ways:
            self.hits += 1
            ways.remove(line)
            ways.append(line)
            return True
        self.misses += 1
        if len(ways) >= self.associativity:
            ways.pop(0)
        ways.append(line)
        return False

    def access_lines(self, lines) -> Tuple[int, int]:
        # access_line maintains the hit/miss counters; only tally the
        # per-stream return value here.
        hits = 0
        total = 0
        for line in lines:
            total += 1
            if self.access_line(line):
                hits += 1
        return hits, total - hits

    def contains_line(self, line: int) -> bool:
        return line in self._sets[line % self.num_sets]


class ReferenceMemorySystem(MemorySystem):
    """Memory system built on the naive list-based LRU cache."""

    cache_cls = ReferenceLRUCache


class ReferenceSimulator(GPUSimulator):
    """The engine with every optimized component swapped for its reference."""

    queue_factory = ReferenceEventQueue
    smx_factory = ReferenceSMX
    memory_factory = ReferenceMemorySystem


@dataclass
class DifferentialMismatch:
    """Where the optimized and reference runs diverged."""

    kind: str  # "events" or "stats"
    detail: str
    trace_divergence: Optional[GoldenMismatch] = None

    def __str__(self) -> str:
        return f"differential mismatch [{self.kind}]: {self.detail}"


def run_differential(
    app: Application,
    *,
    config=None,
    policy_factory: Optional[Callable[[], object]] = None,
    stream_policy_factory: Optional[Callable[[], object]] = None,
    sim_kwargs: Optional[Dict[str, object]] = None,
    engine: str = "default",
) -> Optional[DifferentialMismatch]:
    """Run ``app`` through the optimized and reference engines and compare.

    Policies and stream policies are stateful across a run, so fresh
    instances are built per engine via the factories (defaults: the
    engine's own defaults).  Returns None when the event streams are
    identical and the final stats round-trip dicts are equal; otherwise a
    :class:`DifferentialMismatch` naming the first divergence.

    ``engine`` picks the *candidate* side of the comparison: ``"default"``
    validates the per-event engine, ``"fast"`` the batch-stepping core
    (:mod:`repro.sim.fast`) — both against the same naive reference.
    """
    from repro.sim.fast import ENGINES

    candidate_cls = ENGINES.get(engine)
    if candidate_cls is None:
        raise SimulationError(
            f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
        )
    kwargs = dict(sim_kwargs or {})

    def build(sim_cls):
        tracer = Tracer()
        sim = sim_cls(
            config=config,
            policy=policy_factory() if policy_factory else None,
            stream_policy=(
                stream_policy_factory() if stream_policy_factory else None
            ),
            tracer=tracer,
            **kwargs,
        )
        return sim, tracer

    optimized, opt_tracer = build(candidate_cls)
    reference, ref_tracer = build(ReferenceSimulator)
    opt_result = optimized.run(app)
    ref_result = reference.run(app)

    divergence = diff_traces(
        canonical_events(ref_tracer.events()),
        canonical_events(opt_tracer.events()),
    )
    if divergence is not None:
        return DifferentialMismatch(
            kind="events",
            detail=str(divergence),
            trace_divergence=divergence,
        )
    opt_stats = opt_result.stats.to_dict()
    ref_stats = ref_result.stats.to_dict()
    if opt_stats != ref_stats:
        diffs = [
            key
            for key in sorted(set(opt_stats) | set(ref_stats))
            if opt_stats.get(key) != ref_stats.get(key)
        ]
        return DifferentialMismatch(
            kind="stats",
            detail=(
                "event streams match but SimStats differ in fields "
                f"{diffs} (optimized vs reference)"
            ),
        )
    return None
