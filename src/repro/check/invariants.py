"""Runtime invariant checking over the simulator's trace event stream.

The :class:`ConformanceChecker` is a :class:`~repro.obs.tracer.Tracer`: pass
it (alone, or fanned out next to another tracer via
:class:`~repro.obs.tracer.MultiTracer`) to :class:`~repro.sim.engine.GPUSimulator`
and it validates every event as it is emitted.  Detached, the engine pays
nothing — the usual ``tracer.enabled`` guard.

Checked invariants, with the paper sections they encode:

* **clock** — event timestamps never decrease (event-driven simulation
  sanity; harness wall-clock events are exempt).
* **conservation** — every kernel arrives at most once and completes
  exactly once; every CTA of a kernel is placed exactly once and finishes
  exactly once, on the SMX it was placed on (Section II-C's dispatch
  semantics: CTAs do not migrate).
* **residency** — per-SMX residency never exceeds the 16-CTA / 2048-thread
  / register-file / shared-memory caps of Table II (``GPUConfig``).
* **hwq** — at most ``num_hwq`` (32, Section II-C) software queues are
  concurrently bound to hardware work queues, and the emitted occupancy
  counters agree with a mirrored bound-set.
* **fcfs** — HWQ binding is FCFS over waiting software queues, and kernels
  within one software queue execute sequentially in submission order
  (Section II-C).
* **spawn** — every SPAWN decision matches an independent re-evaluation of
  Algorithm 1 (Section IV-B) from the traced monitor inputs: recomputed
  Equation 1/2 estimates must agree and the verdict must equal
  ``t_child <= t_parent and n + x <= max_queue_size`` (bootstrap launches
  unconditionally while ``t_cta == 0``).
* **stats** — counting identities between the event stream and the final
  :class:`~repro.sim.stats.SimStats` (``launched + serialized + reused ==
  decisions``, launch-time list length, makespan vs last completion), plus
  end-of-run completeness (no kernel arrived but never completed, no CTA
  dispatched but never finished, no HWQ still bound).
* **merge** — scheme-zoo invariants for consolidate/aggregate runs: a
  merged kernel launches exactly as many CTAs as its constituents total
  (conservation), every constituent comes from the merge scope's single
  context (one warp / one CTA / one grid), and consolidation never buffers
  past its batch bound before flushing.  Constructing the checker with
  ``scheme=`` pins the expected scope and batch; under ``acs`` the
  cross-stream FCFS binding checks are relaxed (ACS deliberately reorders
  binding) while the same-stream sequential-order checks — the invariant
  ACS must preserve — stay armed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional, Set, Tuple

from repro.errors import ConformanceError
from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    HWQ_BIND,
    HWQ_RELEASE,
    KERNEL_ARRIVAL,
    KERNEL_COMPLETE,
    KERNEL_FIRST_DISPATCH,
    KERNEL_SUSPEND,
    LAUNCH_DECISION,
    LAUNCH_MERGE,
    ListSink,
    TraceEvent,
    Tracer,
)
from repro.sim.config import WARP_SIZE, GPUConfig

#: Relative tolerance for re-derived Equation 1/2 estimates.  The checker
#: replays the controller's exact arithmetic, so agreement is normally
#: bit-exact; the epsilon only forgives benign last-bit differences.
_REL_TOL = 1e-9

#: Verdict strings a LAUNCH_DECISION may carry (DecisionKind values).
_VERDICTS = frozenset(
    {"launch", "serial", "coalesce", "reuse", "consolidate", "aggregate"}
)

#: Verdicts that actually put a child grid on the GPU.
_ADMITTING = frozenset({"launch", "coalesce"})


@dataclass
class Violation:
    """One broken invariant, tied to the event that exposed it."""

    invariant: str
    message: str
    ts: float = 0.0
    event_index: int = -1

    def __str__(self) -> str:
        where = f"event #{self.event_index} @ t={self.ts:.0f}"
        return f"[{self.invariant}] {where}: {self.message}"


class _KernelLedger:
    """Conservation bookkeeping for one kernel instance."""

    __slots__ = ("num_ctas", "stream", "via_dtbl", "is_child",
                 "dispatched", "finished", "completed")

    def __init__(self, num_ctas: int, stream: int, via_dtbl: bool, is_child: bool):
        self.num_ctas = num_ctas
        self.stream = stream
        self.via_dtbl = via_dtbl
        self.is_child = is_child
        self.dispatched = 0
        self.finished = 0
        self.completed = False


class _SmxLedger:
    """Residency bookkeeping for one SMX."""

    __slots__ = ("ctas", "threads", "regs", "shmem")

    def __init__(self) -> None:
        self.ctas = 0
        self.threads = 0
        self.regs = 0
        self.shmem = 0


class ConformanceChecker(Tracer):
    """A tracer that validates the event stream it records.

    Violations are *collected*, not raised, so one broken invariant does
    not mask the rest; call :meth:`raise_if_violations` (or inspect
    :attr:`violations`) after the run.  Events are also retained in the
    sink, so the same attached checker doubles as the event source for
    golden-trace capture.
    """

    def __init__(
        self,
        config: GPUConfig,
        *,
        scheme: Optional[str] = None,
        max_queue_size: int = 65536,
        keep_events: bool = True,
    ):
        super().__init__(sink=ListSink())
        self.config = config
        self.max_queue_size = max_queue_size
        self.keep_events = keep_events
        #: Scheme-aware expectations.  With no scheme the checker accepts
        #: whatever scope a merge event declares (still enforcing its
        #: internal consistency) and keeps strict FCFS binding checks.
        self.scheme = scheme
        self._acs = False
        self._merge_scope: Optional[str] = None
        self._merge_batch: Optional[int] = None
        if scheme is not None:
            # Deferred import: the checker is usable without the harness.
            from repro.harness.schemes import SchemeSpec

            spec = SchemeSpec.parse(scheme)
            self._acs = spec.bind_policy != "fcfs"
            if spec.batch_ctas is not None:
                self._merge_scope = "cta"
                self._merge_batch = spec.batch_ctas
            elif spec.granularity is not None:
                self._merge_scope = spec.granularity
        self.launch_overhead_cycles = float(config.launch.latency(1))
        self.violations: List[Violation] = []
        self.events_checked = 0
        # --- mirrored state -------------------------------------------
        self._last_ts = float("-inf")
        self._event_index = -1
        self._kernels: Dict[int, _KernelLedger] = {}
        #: (kernel_id, cta_index) -> (smx, threads, regs, shmem) at dispatch.
        self._ctas: Dict[Tuple[int, int], Tuple[int, int, int, int]] = {}
        self._ctas_finished: Set[Tuple[int, int]] = set()
        self._smxs: Dict[int, _SmxLedger] = {}
        self._bound: Set[int] = set()
        self._waiting: Deque[int] = deque()
        self._stream_fifo: Dict[int, Deque[int]] = {}
        # --- decision accounting --------------------------------------
        self._decision_counts = {v: 0 for v in _VERDICTS}
        self._admitted_ctas = 0
        self._decision_child_ids: Set[int] = set()
        # --- merged-launch accounting ----------------------------------
        self._merge_child_ids: Set[int] = set()
        self._merge_expected: Dict[int, int] = {}  # child id -> num_ctas
        self._merged_launches = 0
        self._merged_ctas = 0
        self._merged_requests = 0
        self._last_completion: Optional[float] = None
        self._handlers: Dict[str, Callable[[TraceEvent], None]] = {
            KERNEL_ARRIVAL: self._on_arrival,
            KERNEL_FIRST_DISPATCH: self._on_first_dispatch,
            KERNEL_SUSPEND: self._on_suspend,
            KERNEL_COMPLETE: self._on_complete,
            CTA_DISPATCH: self._on_cta_dispatch,
            CTA_FINISH: self._on_cta_finish,
            HWQ_BIND: self._on_hwq_bind,
            HWQ_RELEASE: self._on_hwq_release,
            LAUNCH_DECISION: self._on_decision,
            LAUNCH_MERGE: self._on_merge,
        }

    # ------------------------------------------------------------------
    # Tracer interface
    # ------------------------------------------------------------------
    def emit(self, kind: str, ts: Optional[float] = None, **args: object) -> None:
        event = TraceEvent(self.clock() if ts is None else ts, kind, args)
        if self.keep_events:
            self.sink.append(event)
        self.check_event(event)

    def check_event(self, event: TraceEvent) -> None:
        """Validate one event against the mirrored machine state."""
        index = self.events_checked
        self.events_checked = index + 1
        if not event.kind.startswith("harness."):
            if event.ts < self._last_ts:
                self._fail(
                    "clock",
                    f"{event.kind} at t={event.ts} after t={self._last_ts}",
                    event,
                    index,
                )
            else:
                self._last_ts = event.ts
        handler = self._handlers.get(event.kind)
        if handler is not None:
            self._event_index = index
            handler(event)

    def check_trace(self, events) -> List[Violation]:
        """Validate a pre-recorded event stream (golden replay path)."""
        for event in events:
            self.check_event(event)
        return self.violations

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------
    def finalize(self, stats=None) -> List[Violation]:
        """End-of-run completeness and stats-identity checks.

        ``stats`` may be a :class:`~repro.sim.stats.SimStats`, a
        :class:`~repro.sim.engine.SimResult` (its ``.stats`` is used), or
        None to run only the trace-side completeness checks.
        """
        tail = TraceEvent(self._last_ts, "checker.finalize", {})
        index = self.events_checked
        for kid, ledger in self._kernels.items():
            if not ledger.completed:
                self._fail(
                    "stats", f"kernel {kid} arrived but never completed",
                    tail, index,
                )
            if ledger.finished != ledger.num_ctas:
                self._fail(
                    "stats",
                    f"kernel {kid}: {ledger.finished}/{ledger.num_ctas} "
                    "CTAs finished at end of run",
                    tail, index,
                )
        leaked = set(self._ctas) - self._ctas_finished
        if leaked:
            self._fail(
                "stats",
                f"{len(leaked)} CTAs dispatched but never finished "
                f"(e.g. {sorted(leaked)[:3]})",
                tail, index,
            )
        if self._bound:
            self._fail(
                "hwq", f"streams {sorted(self._bound)} still bound at end of run",
                tail, index,
            )
        if self._merge_expected:
            self._fail(
                "merge",
                f"merged kernels {sorted(self._merge_expected)[:3]} were "
                "flushed but never arrived at the GMU",
                tail, index,
            )
        if stats is not None:
            stats = getattr(stats, "stats", stats)  # accept SimResult
            self._check_stats_identities(stats, tail, index)
        return self.violations

    def _check_stats_identities(self, stats, tail: TraceEvent, index: int) -> None:
        counts = self._decision_counts
        launched = counts["launch"] + counts["coalesce"]
        buffered = counts["consolidate"] + counts["aggregate"]
        checks = [
            ("child_kernels_launched", stats.child_kernels_launched, launched),
            ("child_kernels_declined", stats.child_kernels_declined, counts["serial"]),
            ("child_kernels_reused", stats.child_kernels_reused, counts["reuse"]),
            ("child_kernels_consolidated", stats.child_kernels_consolidated,
             counts["consolidate"]),
            ("child_kernels_aggregated", stats.child_kernels_aggregated,
             counts["aggregate"]),
            ("merged_kernels_launched", stats.merged_kernels_launched,
             self._merged_launches),
            ("child_ctas_launched", stats.child_ctas_launched,
             self._admitted_ctas + self._merged_ctas),
            ("len(launch_times)", len(stats.launch_times),
             launched + self._merged_launches),
        ]
        for name, got, want in checks:
            if got != want:
                self._fail(
                    "stats", f"{name}={got} but the trace implies {want}",
                    tail, index,
                )
        if self._merged_requests != buffered:
            self._fail(
                "merge",
                f"{buffered} requests got a consolidate/aggregate verdict "
                f"but merge events account for {self._merged_requests} "
                "(some buffered launches never flushed)",
                tail, index,
            )
        decisions = sum(counts.values())
        accounted = (
            stats.child_kernels_launched
            + stats.child_kernels_declined
            + stats.child_kernels_reused
            + stats.child_kernels_consolidated
            + stats.child_kernels_aggregated
        )
        if accounted != decisions:
            self._fail(
                "stats",
                f"launched+serialized+reused+buffered = {accounted} but the "
                f"trace has {decisions} decisions",
                tail, index,
            )
        if self._last_completion is not None and stats.makespan != self._last_completion:
            self._fail(
                "stats",
                f"makespan={stats.makespan} but the last kernel completion "
                f"in the trace is at t={self._last_completion}",
                tail, index,
            )
        arrived_children = {
            kid for kid, ledger in self._kernels.items() if ledger.is_child
        }
        launched_children = self._decision_child_ids | self._merge_child_ids
        if launched_children != arrived_children:
            missing = launched_children - arrived_children
            phantom = arrived_children - launched_children
            self._fail(
                "stats",
                "launched child ids and arrived child ids differ "
                f"(launched-but-never-arrived={sorted(missing)[:3]}, "
                f"arrived-without-decision={sorted(phantom)[:3]})",
                tail, index,
            )

    def raise_if_violations(self) -> None:
        """Raise :class:`~repro.errors.ConformanceError` if anything broke."""
        if not self.violations:
            return
        head = "\n".join(str(v) for v in self.violations[:10])
        more = len(self.violations) - 10
        if more > 0:
            head += f"\n... and {more} more"
        raise ConformanceError(
            f"{len(self.violations)} invariant violation(s):\n{head}",
            violations=self.violations,
        )

    # ------------------------------------------------------------------
    # Per-kind handlers
    # ------------------------------------------------------------------
    def _fail(self, invariant: str, message: str, event: TraceEvent,
              index: Optional[int] = None) -> None:
        self.violations.append(
            Violation(
                invariant,
                message,
                ts=event.ts,
                event_index=self._event_index if index is None else index,
            )
        )

    def _on_arrival(self, event: TraceEvent) -> None:
        args = event.args
        kid = args["kernel_id"]
        if kid in self._kernels:
            self._fail("conservation", f"kernel {kid} arrived twice", event)
            return
        via_dtbl = bool(args.get("via_dtbl", False))
        stream = args["stream"]
        self._kernels[kid] = _KernelLedger(
            args["num_ctas"], stream, via_dtbl, bool(args.get("is_child", False))
        )
        promised = self._merge_expected.pop(kid, None)
        if promised is not None and args["num_ctas"] != promised:
            self._fail(
                "merge",
                f"merged kernel {kid} arrived with {args['num_ctas']} CTAs "
                f"but its merge event promised {promised}",
                event,
            )
        if not via_dtbl:
            # Mirror the GMU's SWQ bookkeeping.  NOTE the emission order in
            # the engine: an immediately-satisfiable bind's HWQ_BIND event
            # precedes the causing KERNEL_ARRIVAL (gmu.submit runs first),
            # so on arrival the stream may already sit in the bound set.
            if stream not in self._bound and stream not in self._waiting:
                self._waiting.append(stream)
            self._stream_fifo.setdefault(stream, deque()).append(kid)

    def _on_first_dispatch(self, event: TraceEvent) -> None:
        kid = event.args["kernel_id"]
        ledger = self._kernels.get(kid)
        if ledger is None or ledger.via_dtbl:
            return
        fifo = self._stream_fifo.get(ledger.stream)
        if not fifo or fifo[0] != kid:
            head = fifo[0] if fifo else None
            self._fail(
                "fcfs",
                f"kernel {kid} started dispatching on stream {ledger.stream} "
                f"but the stream head is kernel {head} (sequential-stream "
                "order violated)",
                event,
            )

    def _on_suspend(self, event: TraceEvent) -> None:
        self._retire_from_stream(event, event.args["kernel_id"])

    def _retire_from_stream(self, event: TraceEvent, kid: int) -> None:
        ledger = self._kernels.get(kid)
        if ledger is None:
            self._fail("conservation", f"unknown kernel {kid} retired", event)
            return
        fifo = self._stream_fifo.get(ledger.stream)
        if not fifo or fifo[0] != kid:
            head = fifo[0] if fifo else None
            self._fail(
                "fcfs",
                f"kernel {kid} retired from stream {ledger.stream} but the "
                f"stream head is kernel {head}",
                event,
            )
            if fifo and kid in fifo:
                fifo.remove(kid)
        else:
            fifo.popleft()
        if not fifo:
            self._stream_fifo.pop(ledger.stream, None)

    def _on_complete(self, event: TraceEvent) -> None:
        args = event.args
        kid = args["kernel_id"]
        ledger = self._kernels.get(kid)
        if ledger is None:
            self._fail("conservation", f"unknown kernel {kid} completed", event)
            return
        if ledger.completed:
            self._fail("conservation", f"kernel {kid} completed twice", event)
            return
        ledger.completed = True
        self._last_completion = event.ts
        if ledger.finished != ledger.num_ctas:
            self._fail(
                "conservation",
                f"kernel {kid} completed with {ledger.finished}/"
                f"{ledger.num_ctas} CTAs finished",
                event,
            )
        if not args.get("via_dtbl", False) and not args.get("suspended", False):
            # Still the head of its stream queue; completion retires it.
            self._retire_from_stream(event, kid)

    def _on_cta_dispatch(self, event: TraceEvent) -> None:
        args = event.args
        kid = args["kernel_id"]
        key = (kid, args["cta_index"])
        ledger = self._kernels.get(kid)
        if ledger is None:
            self._fail(
                "conservation",
                f"CTA {key} dispatched for a kernel that never arrived",
                event,
            )
        else:
            ledger.dispatched += 1
            if ledger.dispatched > ledger.num_ctas:
                self._fail(
                    "conservation",
                    f"kernel {kid} dispatched {ledger.dispatched} CTAs but "
                    f"has only {ledger.num_ctas}",
                    event,
                )
        if key in self._ctas:
            self._fail("conservation", f"CTA {key} dispatched twice", event)
            return
        smx_index = args["smx"]
        if not 0 <= smx_index < self.config.num_smx:
            self._fail(
                "residency", f"CTA {key} placed on nonexistent SMX {smx_index}",
                event,
            )
            return
        threads, regs, shmem = args["threads"], args["regs"], args["shmem"]
        self._ctas[key] = (smx_index, threads, regs, shmem)
        smx = self._smxs.setdefault(smx_index, _SmxLedger())
        smx.ctas += 1
        smx.threads += threads
        smx.regs += regs
        smx.shmem += shmem
        cfg = self.config
        caps = (
            (smx.ctas, cfg.max_ctas_per_smx, "CTAs"),
            (smx.threads, cfg.max_threads_per_smx, "threads"),
            (smx.regs, cfg.registers_per_smx, "registers"),
            (smx.shmem, cfg.shared_mem_per_smx, "shared-memory bytes"),
        )
        for used, cap, what in caps:
            if used > cap:
                self._fail(
                    "residency",
                    f"SMX {smx_index} holds {used} {what}, cap is {cap}",
                    event,
                )

    def _on_cta_finish(self, event: TraceEvent) -> None:
        args = event.args
        key = (args["kernel_id"], args["cta_index"])
        placement = self._ctas.get(key)
        if placement is None:
            self._fail(
                "conservation", f"CTA {key} finished without being dispatched",
                event,
            )
            return
        if key in self._ctas_finished:
            self._fail("conservation", f"CTA {key} finished twice", event)
            return
        self._ctas_finished.add(key)
        placed_on, threads, regs, shmem = placement
        smx_index = args["smx"]
        if smx_index != placed_on:
            self._fail(
                "conservation",
                f"CTA {key} finished on SMX {smx_index} but was placed on "
                f"SMX {placed_on}",
                event,
            )
        smx = self._smxs.get(placed_on)
        if smx is not None:
            smx.ctas -= 1
            smx.threads -= threads
            smx.regs -= regs
            smx.shmem -= shmem
        ledger = self._kernels.get(args["kernel_id"])
        if ledger is not None:
            ledger.finished += 1

    def _on_hwq_bind(self, event: TraceEvent) -> None:
        args = event.args
        swq = args["swq"]
        if swq in self._bound:
            self._fail("hwq", f"stream {swq} bound while already bound", event)
            return
        if self._acs:
            # ACS reorders cross-stream binding on purpose; keep the
            # waiting mirror coherent but skip the FCFS ordering checks.
            # Same-stream sequential order (checked at first-dispatch and
            # retirement) remains fully armed — that is ACS's contract.
            if swq in self._waiting:
                self._waiting.remove(swq)
        elif self._waiting:
            expected = self._waiting[0]
            if swq == expected:
                self._waiting.popleft()
            elif swq in self._waiting:
                self._fail(
                    "fcfs",
                    f"stream {swq} bound before stream {expected}, which has "
                    "been waiting longer (FCFS binding violated)",
                    event,
                )
                self._waiting.remove(swq)
            # A stream absent from the waiting mirror is an immediate bind
            # (the engine emits HWQ_BIND before the causing KERNEL_ARRIVAL);
            # that is only legal while nothing is waiting, because the GMU
            # binds waiting streams the moment a HWQ frees up.
            else:
                self._fail(
                    "fcfs",
                    f"stream {swq} bound immediately while stream {expected} "
                    "was waiting for a free HWQ",
                    event,
                )
        self._bound.add(swq)
        if len(self._bound) > self.config.num_hwq:
            self._fail(
                "hwq",
                f"{len(self._bound)} streams concurrently bound, only "
                f"{self.config.num_hwq} HWQs exist",
                event,
            )
        if args.get("bound") != len(self._bound):
            self._fail(
                "hwq",
                f"HWQ_BIND reports bound={args.get('bound')} but the mirror "
                f"holds {len(self._bound)}",
                event,
            )

    def _on_hwq_release(self, event: TraceEvent) -> None:
        args = event.args
        swq = args["swq"]
        if swq not in self._bound:
            self._fail("hwq", f"stream {swq} released but was not bound", event)
        else:
            self._bound.discard(swq)
        if args.get("bound") != len(self._bound):
            self._fail(
                "hwq",
                f"HWQ_RELEASE reports bound={args.get('bound')} but the "
                f"mirror holds {len(self._bound)}",
                event,
            )

    def _on_decision(self, event: TraceEvent) -> None:
        args = event.args
        verdict = args.get("verdict")
        if verdict not in _VERDICTS:
            self._fail("spawn", f"unknown decision verdict {verdict!r}", event)
            return
        self._decision_counts[verdict] += 1
        if verdict in _ADMITTING:
            self._admitted_ctas += args["num_ctas"]
            child = args.get("child_kernel_id")
            if child is None:
                self._fail(
                    "spawn", f"{verdict} decision carries no child_kernel_id",
                    event,
                )
            else:
                self._decision_child_ids.add(child)
        if "bootstrap" not in args:
            return  # no SPAWN audit payload (threshold/DTBL/free-launch)
        self._reevaluate_spawn(event)

    def _on_merge(self, event: TraceEvent) -> None:
        """Scheme-zoo invariants for one merged-kernel flush.

        ``src`` rows are ``[parent_kernel_id, cta_index, warp, tid,
        num_ctas]`` — one per buffered constituent request.
        """
        args = event.args
        scope = args.get("scope")
        if scope not in ("warp", "block", "cta", "grid"):
            self._fail("merge", f"unknown merge scope {scope!r}", event)
            return
        if self.scheme is not None and scope != self._merge_scope:
            self._fail(
                "merge",
                f"{scope}-scope merge under scheme {self.scheme!r} "
                f"(expected scope {self._merge_scope!r})",
                event,
            )
        src = args.get("src") or []
        if not src:
            self._fail("merge", "merge event with no source requests", event)
            return
        if args.get("num_requests") != len(src):
            self._fail(
                "merge",
                f"merge event reports num_requests={args.get('num_requests')} "
                f"but carries {len(src)} source rows",
                event,
            )
        total = sum(row[4] for row in src)
        if total != args["num_ctas"]:
            self._fail(
                "merge",
                f"merged kernel launches {args['num_ctas']} CTAs but its "
                f"{len(src)} constituents total {total} "
                "(CTA conservation violated)",
                event,
            )
        if scope == "grid":
            contexts = {row[0] for row in src}
        elif scope == "warp":
            contexts = {(row[0], row[1], row[2]) for row in src}
        else:  # "block" and "cta" both mean one parent CTA
            contexts = {(row[0], row[1]) for row in src}
        if len(contexts) > 1:
            self._fail(
                "merge",
                f"{scope}-scope merge spans {len(contexts)} distinct "
                f"{scope} contexts (e.g. {sorted(contexts)[:3]})",
                event,
            )
        if scope == "warp" and len({row[3] for row in src}) > WARP_SIZE:
            self._fail(
                "merge",
                f"warp-scope merge drew from more than {WARP_SIZE} lanes",
                event,
            )
        if self._merge_batch is not None and len(src) > 1:
            if total - src[-1][4] >= self._merge_batch:
                self._fail(
                    "merge",
                    f"consolidation overshot its batch bound: {total} child "
                    f"CTAs buffered although the bound of {self._merge_batch} "
                    "was already reached before the last constituent",
                    event,
                )
        child = args.get("child_kernel_id")
        if child is None:
            self._fail("merge", "merge event carries no child_kernel_id", event)
        else:
            if child in self._merge_child_ids:
                self._fail(
                    "conservation", f"merged kernel {child} launched twice",
                    event,
                )
            self._merge_child_ids.add(child)
            self._merge_expected[child] = args["num_ctas"]
        self._merged_launches += 1
        self._merged_ctas += args["num_ctas"]
        self._merged_requests += len(src)

    def _reevaluate_spawn(self, event: TraceEvent) -> None:
        """Replay Algorithm 1 from the traced monitor inputs.

        Mirrors :class:`repro.core.controller.SpawnController` /
        :class:`repro.core.ccqs.CCQS` arithmetic exactly:
        ``T = max(n_con, 1) / t_cta``, ``t_child = overhead + (n + x) / T``
        (Equation 1), ``t_parent = items * t_warp`` (Equation 2); launch
        iff ``t_child <= t_parent`` and ``n + x <= max_queue_size``.
        """
        args = event.args
        verdict = args["verdict"]
        n = args["n"]
        x = args["num_ctas"]
        t_cta = args["t_cta"]
        if args["bootstrap"]:
            if t_cta != 0:
                self._fail(
                    "spawn",
                    f"bootstrap decision with t_cta={t_cta} (must be 0)",
                    event,
                )
            if verdict != "launch":
                self._fail(
                    "spawn",
                    f"bootstrap decision must launch, got {verdict!r}",
                    event,
                )
            return
        if t_cta <= 0:
            self._fail(
                "spawn",
                f"non-bootstrap decision with t_cta={t_cta} (no throughput "
                "estimate should take the bootstrap path)",
                event,
            )
            return
        throughput = max(args["n_con"], 1) / t_cta
        t_child = self.launch_overhead_cycles + (n + x) / throughput
        t_parent = args["items"] * args["t_warp"]
        for name, traced, derived in (
            ("t_child", args["t_child"], t_child),
            ("t_parent", args["t_parent"], t_parent),
        ):
            if abs(traced - derived) > _REL_TOL * max(abs(traced), abs(derived), 1.0):
                self._fail(
                    "spawn",
                    f"traced {name}={traced} but re-deriving Equation 1/2 "
                    f"from the traced inputs gives {derived}",
                    event,
                )
        should_launch = (
            args["t_child"] <= args["t_parent"] and n + x <= self.max_queue_size
        )
        if should_launch != (verdict == "launch"):
            self._fail(
                "spawn",
                f"verdict {verdict!r} contradicts Algorithm 1: "
                f"t_child={args['t_child']:.1f} t_parent={args['t_parent']:.1f} "
                f"n+x={n + x} cap={self.max_queue_size}",
                event,
            )
