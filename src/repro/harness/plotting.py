"""Terminal plotting: render the paper's figures as ASCII charts.

Keeps the reproduction dependency-free: concurrency timelines (Fig. 6/19),
launch CDFs (Fig. 20), and speedup bars (Fig. 15) render directly in the
terminal.  ``examples/threshold_study.py`` and the CLI use these.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import HarnessError

#: Unicode eighth-blocks for sparklines, coarse to fine.
_SPARK = " .:-=+*#%@"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: str = "",
    reference: float = None,
) -> str:
    """Horizontal bar chart; optional reference line value marked with '|'."""
    if len(labels) != len(values):
        raise HarnessError("labels and values must align")
    if not values:
        raise HarnessError("nothing to plot")
    peak = max(max(values), reference or 0.0)
    if peak <= 0:
        raise HarnessError("bar chart needs a positive maximum")
    label_width = max(len(str(label)) for label in labels)
    lines = [title] if title else []
    ref_col = None
    if reference is not None:
        ref_col = round(width * reference / peak)
    for label, value in zip(labels, values):
        length = round(width * value / peak)
        bar = list("#" * length + " " * (width - length))
        if ref_col is not None and 0 <= ref_col < width:
            bar[ref_col] = "|"
        lines.append(f"{str(label).ljust(label_width)}  {''.join(bar)} {value:.2f}")
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """One-line sparkline of a series."""
    if not values:
        raise HarnessError("nothing to plot")
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK[0] * len(values)
    steps = len(_SPARK) - 1
    return "".join(_SPARK[round(steps * (v - lo) / span)] for v in values)


def timeline(
    samples: Sequence[Tuple[float, float]],
    *,
    buckets: int = 60,
    height: int = 8,
    title: str = "",
) -> str:
    """Column chart of an (time, value) series, bucketed over the time axis."""
    if not samples:
        raise HarnessError("nothing to plot")
    t_end = max(t for t, _ in samples)
    if t_end <= 0:
        t_end = 1.0
    # Bucket by time, keeping each bucket's max (peaks matter for limits).
    values: List[float] = [0.0] * buckets
    for t, v in samples:
        idx = min(buckets - 1, int(buckets * t / t_end))
        values[idx] = max(values[idx], v)
    peak = max(values)
    lines = [title] if title else []
    if peak <= 0:
        lines.append("(flat zero series)")
        return "\n".join(lines)
    for row in range(height, 0, -1):
        threshold = peak * (row - 0.5) / height
        lines.append(
            f"{peak * row / height:8.1f} |"
            + "".join("#" if v >= threshold else " " for v in values)
        )
    lines.append(" " * 9 + "+" + "-" * buckets)
    lines.append(" " * 10 + f"0 .. {t_end:.0f} cycles")
    return "\n".join(lines)
