"""Rolling performance history: the repo-committed perf trajectory.

``repro bench`` writes point-in-time ``BENCH_<date>.json`` snapshots;
this module gives those numbers a *timeline*.  ``bench_history.jsonl``
is an append-only JSON-lines file, committed to the repository, holding
one record per measured quantity per run:

* ``bench`` records — per benchmark/scheme pair: best-of-N wall seconds
  plus the makespan the run produced (the bit-identity witness);
* ``soak`` records — service load tests: sustained throughput
  (requests/second) and the shed rate under that load.

``repro perf`` appends fresh records, compares them against the trailing
window of the history, and renders ASCII trend charts — so a perf
regression shows up in the diff of a committed file, not in a dashboard
nobody checks.  Comparison is direction-aware: seconds regress *upward*
(ratio vs. the trailing mean above ``max_ratio``), throughput regresses
*downward* (below ``1/max_ratio``).  A makespan that differs from the
last recorded one for the same pair is *drift* — flagged regardless of
any ratio, because simulation results are contractually deterministic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence

from repro.errors import HarnessError
from repro.harness.plotting import sparkline

#: Record schema version, carried on every line (append-only files have
#: no single header to rewrite).
HISTORY_SCHEMA = 1

#: Default committed history file, relative to the repository root.
DEFAULT_HISTORY_PATH = Path("bench_history.jsonl")

#: Record kinds and their headline metric's improvement direction.
BENCH = "bench"  # value = wall seconds, lower is better
SOAK = "soak"  # value = requests/second, higher is better

_KINDS = (BENCH, SOAK)


@dataclass(frozen=True)
class PerfRecord:
    """One measured point: what was measured, when, and the number.

    ``label`` identifies the series (``"SA-thaliana/spawn"`` for bench
    records, ``"service-soak"`` for soak records); ``value`` is the
    headline metric (seconds or requests/second by ``kind``);
    ``details`` carries the rest of the evidence (makespan, speedup,
    shed rate, request counts) without entering the comparison.
    """

    kind: str
    label: str
    value: float
    at: str  # ISO-8601 timestamp, supplied by the caller
    details: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise HarnessError(
                f"record kind must be one of {_KINDS}, got {self.kind!r}"
            )

    @property
    def unit(self) -> str:
        return "s" if self.kind == BENCH else "req/s"

    @property
    def lower_is_better(self) -> bool:
        return self.kind == BENCH

    def to_dict(self) -> dict:
        return {
            "schema": HISTORY_SCHEMA,
            "kind": self.kind,
            "label": self.label,
            "value": self.value,
            "at": self.at,
            "details": dict(self.details),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfRecord":
        try:
            return cls(
                kind=payload["kind"],
                label=payload["label"],
                value=float(payload["value"]),
                at=str(payload.get("at", "")),
                details=dict(payload.get("details") or {}),
            )
        except (TypeError, KeyError) as exc:
            raise HarnessError(
                f"malformed history record {payload!r}: {exc}"
            ) from None


# ----------------------------------------------------------------------
# Persistence (append-only JSONL)
# ----------------------------------------------------------------------
def load_history(path=DEFAULT_HISTORY_PATH) -> List[PerfRecord]:
    """Every record in the history file, oldest first (missing file: [])."""
    path = Path(path)
    if not path.is_file():
        return []
    records: List[PerfRecord] = []
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            raise HarnessError(f"{path}:{lineno}: invalid JSON: {exc}") from None
        records.append(PerfRecord.from_dict(payload))
    return records


def append_records(records: Sequence[PerfRecord], path=DEFAULT_HISTORY_PATH) -> Path:
    """Append ``records`` to the history file; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as handle:
        for record in records:
            handle.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    return path


# ----------------------------------------------------------------------
# Adapters: bench reports / soak runs -> records
# ----------------------------------------------------------------------
def records_from_bench(report: Mapping, at: str) -> List[PerfRecord]:
    """Per-pair records from a :func:`repro.harness.bench.run_bench` report.

    A non-default engine gets its own series per pair
    (``"SA-thaliana/spawn@fast"``): the engines' timings must never mix
    in one trailing window, or a default-engine run right after a fast
    baseline would read as a timing regression.  Makespans are engine-
    independent by contract, so drift detection still bites within each
    series.
    """
    engine = str(report.get("engine", "default"))
    suffix = "" if engine == "default" else f"@{engine}"
    records = []
    for row in report.get("pairs", []):
        details = {"makespan": row.get("makespan"), "engine": engine}
        if row.get("speedup") is not None:
            details["speedup"] = row["speedup"]
        records.append(
            PerfRecord(
                kind=BENCH,
                label=row["pair"] + suffix,
                value=float(row["seconds"]),
                at=at,
                details=details,
            )
        )
    return records


def soak_record(
    *,
    requests: int,
    seconds: float,
    shed: int,
    at: str,
    label: str = "service-soak",
    details: Optional[Mapping[str, object]] = None,
) -> PerfRecord:
    """One service soak measurement: sustained throughput + shed rate."""
    if seconds <= 0:
        raise HarnessError(f"soak seconds must be positive, got {seconds}")
    merged: Dict[str, object] = {
        "requests": requests,
        "seconds": round(seconds, 4),
        "shed": shed,
        "shed_rate": round(shed / requests, 4) if requests else 0.0,
    }
    if details:
        merged.update(details)
    return PerfRecord(
        kind=SOAK,
        label=label,
        value=round(requests / seconds, 2),
        at=at,
        details=merged,
    )


# ----------------------------------------------------------------------
# Trailing-window comparison
# ----------------------------------------------------------------------
def series(history: Sequence[PerfRecord], label: str) -> List[PerfRecord]:
    """The history's records for one label, oldest first."""
    return [record for record in history if record.label == label]


def compare(
    history: Sequence[PerfRecord],
    fresh: Sequence[PerfRecord],
    *,
    window: int = 5,
    max_ratio: float = 1.5,
) -> List[Dict[str, object]]:
    """Judge ``fresh`` records against the trailing history window.

    Returns one verdict dict per fresh record with a usable baseline
    (series with no history pass vacuously and produce no verdict):
    ``ratio`` is fresh/baseline-mean; ``regressed`` applies
    ``max_ratio`` in the record's improvement direction; ``drift`` marks
    a bench makespan unequal to the last recorded one — always a
    failure, whatever the timing ratio says.
    """
    if window < 1:
        raise HarnessError(f"window must be >= 1, got {window}")
    if max_ratio <= 1.0:
        raise HarnessError(f"max_ratio must be > 1, got {max_ratio}")
    verdicts: List[Dict[str, object]] = []
    for record in fresh:
        trailing = series(history, record.label)[-window:]
        if not trailing:
            continue
        baseline = sum(r.value for r in trailing) / len(trailing)
        ratio = record.value / baseline if baseline > 0 else float("inf")
        if record.lower_is_better:
            regressed = ratio > max_ratio
        else:
            regressed = ratio < 1.0 / max_ratio
        drift = False
        if record.kind == BENCH:
            last_makespan = trailing[-1].details.get("makespan")
            fresh_makespan = record.details.get("makespan")
            drift = (
                last_makespan is not None
                and fresh_makespan is not None
                and fresh_makespan != last_makespan
            )
        verdicts.append(
            {
                "label": record.label,
                "kind": record.kind,
                "value": record.value,
                "baseline": round(baseline, 4),
                "window": len(trailing),
                "ratio": round(ratio, 3),
                "regressed": regressed,
                "drift": drift,
            }
        )
    return verdicts


def trend_chart(
    history: Sequence[PerfRecord],
    *,
    labels: Optional[Sequence[str]] = None,
    last: int = 30,
) -> str:
    """ASCII sparkline per series over its last ``last`` records."""
    if labels is None:
        seen: List[str] = []
        for record in history:
            if record.label not in seen:
                seen.append(record.label)
        labels = seen
    if not labels:
        return "(no history)"
    name_width = max(len(label) for label in labels)
    lines = []
    for label in labels:
        records = series(history, label)[-last:]
        if not records:
            continue
        values = [record.value for record in records]
        lines.append(
            f"{label.ljust(name_width)}  {sparkline(values)}  "
            f"{values[0]:.4g} -> {values[-1]:.4g} {records[-1].unit} "
            f"(n={len(values)})"
        )
    return "\n".join(lines) if lines else "(no history)"
