"""Execution schemes: the paper's evaluated configurations.

* ``flat``          — the non-DP implementation (normalization baseline);
* ``baseline-dp``   — unrestricted DP at the application's native THRESHOLD;
* ``threshold:<T>`` — DP with a static THRESHOLD of ``T`` (Fig. 5 sweeps);
* ``offline``       — the best static threshold found by exhaustive sweep
  (Offline-Search);
* ``spawn``         — the paper's contribution;
* ``dtbl``          — Dynamic Thread Block Launch (Wang et al.), Fig. 21.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.policies import (
    DTBLPolicy,
    LaunchPolicy,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.errors import HarnessError
from repro.workloads.base import Benchmark

FLAT = "flat"
BASELINE_DP = "baseline-dp"
OFFLINE = "offline"
SPAWN = "spawn"
DTBL = "dtbl"

#: Schemes that run the DP variant of the application.
DP_SCHEMES = (BASELINE_DP, OFFLINE, SPAWN, DTBL)


@dataclass(frozen=True)
class SchemeSpec:
    """Parsed scheme: which app variant to build and which policy to use."""

    name: str
    variant: str  # "flat" or "dp"
    threshold: Optional[int] = None  # for threshold:<T>

    @classmethod
    def parse(cls, scheme: str) -> "SchemeSpec":
        """Parse a scheme string into a :class:`SchemeSpec`."""
        if scheme == FLAT:
            return cls(FLAT, "flat")
        if scheme in (BASELINE_DP, OFFLINE, SPAWN, DTBL):
            return cls(scheme, "dp")
        if scheme.startswith("threshold:"):
            try:
                threshold = int(scheme.split(":", 1)[1])
            except ValueError:
                raise HarnessError(f"bad threshold scheme {scheme!r}") from None
            if threshold < 0:
                raise HarnessError(f"negative threshold in {scheme!r}")
            return cls(scheme, "dp", threshold=threshold)
        raise HarnessError(f"unknown scheme {scheme!r}")


def parse_scheme(scheme: str) -> SchemeSpec:
    """Deprecated alias for :meth:`SchemeSpec.parse`."""
    warnings.warn(
        "parse_scheme() is deprecated; use SchemeSpec.parse()",
        DeprecationWarning,
        stacklevel=2,
    )
    return SchemeSpec.parse(scheme)


def make_policy(spec: SchemeSpec, benchmark: Benchmark) -> LaunchPolicy:
    """Instantiate the launch policy for one scheme run.

    ``offline`` is resolved by the sweep module into a ``threshold:<T>``
    scheme before reaching here.
    """
    if spec.name == FLAT:
        # The flat app has no launch sites; NeverLaunch documents intent.
        return NeverLaunchPolicy()
    if spec.name == BASELINE_DP:
        return StaticThresholdPolicy(benchmark.default_threshold)
    if spec.name == SPAWN:
        return SpawnPolicy()
    if spec.name == DTBL:
        return DTBLPolicy(benchmark.default_threshold)
    if spec.threshold is not None:
        return StaticThresholdPolicy(spec.threshold)
    raise HarnessError(f"scheme {spec.name!r} has no direct policy")
