"""Execution schemes: the paper's evaluated configurations.

* ``flat``          — the non-DP implementation (normalization baseline);
* ``baseline-dp``   — unrestricted DP at the application's native THRESHOLD;
* ``threshold:<T>`` — DP with a static THRESHOLD of ``T`` (Fig. 5 sweeps);
* ``offline``       — the best static threshold found by exhaustive sweep
  (Offline-Search);
* ``spawn``         — the paper's contribution;
* ``dtbl``          — Dynamic Thread Block Launch (Wang et al.), Fig. 21.

Beyond the paper's Fig. 21 competitors, the scheme zoo adds three
mechanisms named in related work:

* ``consolidate``            — workload consolidation: tiny child launches
  are buffered per parent CTA and submitted as coarser merged kernels
  (``consolidate:<B>`` overrides the batch size in child CTAs);
* ``aggregate:<granularity>`` — launch aggregation at ``warp``, ``block``,
  or ``grid`` granularity (Olabi et al., arXiv:2201.02789);
* ``acs``                    — ACS-style concurrent-kernel scheduling
  (arXiv:2401.12377): SWQ→HWQ binding is reordered by a dependency-aware
  priority instead of strict FCFS, with same-stream order preserved.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Optional

from repro.core.policies import (
    AggregatePolicy,
    ConsolidatePolicy,
    DTBLPolicy,
    LaunchPolicy,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.errors import HarnessError
from repro.workloads.base import Benchmark

FLAT = "flat"
BASELINE_DP = "baseline-dp"
OFFLINE = "offline"
SPAWN = "spawn"
DTBL = "dtbl"
CONSOLIDATE = "consolidate"
AGGREGATE = "aggregate"
ACS = "acs"

#: Default merged-kernel batch size (child CTAs) for ``consolidate``.
DEFAULT_CONSOLIDATE_BATCH = 8

#: Aggregation granularities accepted by ``aggregate:<granularity>``.
AGGREGATE_GRANULARITIES = ("warp", "block", "grid")

#: Schemes that run the DP variant of the application.
DP_SCHEMES = (
    BASELINE_DP,
    OFFLINE,
    SPAWN,
    DTBL,
    CONSOLIDATE,
    f"{AGGREGATE}:block",
    ACS,
)


@dataclass(frozen=True)
class SchemeSpec:
    """Parsed scheme: which app variant to build and which policy to use."""

    name: str
    variant: str  # "flat" or "dp"
    threshold: Optional[int] = None  # for threshold:<T>
    granularity: Optional[str] = None  # for aggregate:<granularity>
    batch_ctas: Optional[int] = None  # for consolidate:<B>

    @classmethod
    def parse(cls, scheme: str) -> "SchemeSpec":
        """Parse a scheme string into a :class:`SchemeSpec`."""
        if scheme == FLAT:
            return cls(FLAT, "flat")
        if scheme in (BASELINE_DP, OFFLINE, SPAWN, DTBL, ACS):
            return cls(scheme, "dp")
        if scheme == CONSOLIDATE:
            return cls(scheme, "dp", batch_ctas=DEFAULT_CONSOLIDATE_BATCH)
        if scheme.startswith(f"{CONSOLIDATE}:"):
            try:
                batch = int(scheme.split(":", 1)[1])
            except ValueError:
                raise HarnessError(
                    f"bad consolidate scheme {scheme!r}"
                ) from None
            if batch < 1:
                raise HarnessError(f"non-positive batch in {scheme!r}")
            return cls(scheme, "dp", batch_ctas=batch)
        if scheme.startswith(f"{AGGREGATE}:"):
            granularity = scheme.split(":", 1)[1]
            if granularity not in AGGREGATE_GRANULARITIES:
                raise HarnessError(
                    f"bad aggregate granularity in {scheme!r} (choose from "
                    f"{', '.join(AGGREGATE_GRANULARITIES)})"
                )
            return cls(scheme, "dp", granularity=granularity)
        if scheme == AGGREGATE:
            raise HarnessError(
                "aggregate needs a granularity: aggregate:<warp|block|grid>"
            )
        if scheme.startswith("threshold:"):
            try:
                threshold = int(scheme.split(":", 1)[1])
            except ValueError:
                raise HarnessError(f"bad threshold scheme {scheme!r}") from None
            if threshold < 0:
                raise HarnessError(f"negative threshold in {scheme!r}")
            return cls(scheme, "dp", threshold=threshold)
        raise HarnessError(f"unknown scheme {scheme!r}")

    @property
    def bind_policy(self) -> str:
        """GMU SWQ→HWQ binding policy this scheme requires."""
        return ACS if self.name == ACS else "fcfs"


def parse_scheme(scheme: str) -> SchemeSpec:
    """Deprecated alias for :meth:`SchemeSpec.parse`."""
    warnings.warn(
        "parse_scheme() is deprecated; use SchemeSpec.parse()",
        DeprecationWarning,
        stacklevel=2,
    )
    return SchemeSpec.parse(scheme)


def make_policy(spec: SchemeSpec, benchmark: Benchmark) -> LaunchPolicy:
    """Instantiate the launch policy for one scheme run.

    ``offline`` is resolved by the sweep module into a ``threshold:<T>``
    scheme before reaching here.
    """
    if spec.name == FLAT:
        # The flat app has no launch sites; NeverLaunch documents intent.
        return NeverLaunchPolicy()
    if spec.name == BASELINE_DP:
        return StaticThresholdPolicy(benchmark.default_threshold)
    if spec.name == SPAWN:
        return SpawnPolicy()
    if spec.name == DTBL:
        return DTBLPolicy(benchmark.default_threshold)
    if spec.name == CONSOLIDATE or spec.name.startswith(f"{CONSOLIDATE}:"):
        return ConsolidatePolicy(
            benchmark.default_threshold,
            batch_ctas=spec.batch_ctas or DEFAULT_CONSOLIDATE_BATCH,
        )
    if spec.granularity is not None:
        return AggregatePolicy(benchmark.default_threshold, spec.granularity)
    if spec.name == ACS:
        # ACS reorders SWQ→HWQ binding in the GMU; admission itself is the
        # application's native threshold, exactly like Baseline-DP.
        return StaticThresholdPolicy(benchmark.default_threshold)
    if spec.threshold is not None:
        return StaticThresholdPolicy(spec.threshold)
    raise HarnessError(f"scheme {spec.name!r} has no direct policy")
