"""Benchmark runner with two-level result caching.

Most experiments share runs (the Fig. 15 speedups, Fig. 16 occupancy,
Fig. 17 L2 rates, and Fig. 18 kernel counts all come from the same three
runs per benchmark), so results are memoized on the full
:meth:`RunConfig.key` tuple.  Lookups go **memory -> disk -> simulate**:
the in-process dict answers repeats within one process, and an optional
:class:`~repro.harness.store.ResultStore` persists results across
processes and CI jobs (pass ``store=open_store(url)``; the default is
no disk cache, preserving the historical behavior, and the deprecated
``cache_dir=`` spelling still wires up the directory backend).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import HarnessError
from repro.harness import schemes as sch
from repro.harness.store import ResultStore
from repro.obs.profile import REGISTRY
from repro.obs.tracer import MultiTracer, Tracer
from repro.runtime.streams import PerChildStream, PerParentCTAStream
from repro.sim.config import GPUConfig
from repro.sim.engine import GPUSimulator, SimResult
from repro.workloads.base import Benchmark, get_benchmark

#: Stream policy names accepted by the runner.
PER_CHILD = "per-child"
PER_PARENT_CTA = "per-parent-cta"


@dataclass
class RunConfig:
    """Everything that identifies one simulation run."""

    benchmark: str
    scheme: str
    seed: int = 1
    cta_threads: Optional[int] = None  # child CTA size override (Fig. 7)
    stream_policy: str = PER_CHILD  # Fig. 8 compares per-parent-cta
    trace_interval: float = 1000.0
    engine: str = "default"  # simulation core: "default" or "fast"

    def key(self) -> Tuple:
        """Cache identity: every field that changes the simulation output.

        ``trace_interval`` belongs here — it changes the sampled timeline
        (and therefore the stored stats), so two runs differing only in
        trace interval must not share a cache entry.  ``engine`` belongs
        here too: the fast core is certified bit-identical, but a cache
        that conflated the two engines could never *demonstrate* that
        (and a divergence bug would silently serve one engine's results
        as the other's).
        """
        return (
            self.benchmark,
            self.scheme,
            self.seed,
            self.cta_threads,
            self.stream_policy,
            self.trace_interval,
            self.engine,
        )


#: Field names a deprecated ``**kwargs`` pass-through may still carry.
_RUN_CONFIG_FIELDS = frozenset(f.name for f in dataclasses.fields(RunConfig))


def _explicit_config(
    caller: str,
    benchmark: str,
    scheme: str,
    seed: int,
    cta_threads: Optional[int],
    stream_policy: str,
    legacy: Dict[str, object],
) -> RunConfig:
    """Build a RunConfig from explicit keywords plus a deprecated overflow.

    ``legacy`` holds keywords the tightened signatures no longer spell out;
    valid :class:`RunConfig` field names still work but warn, anything else
    is a TypeError (as it always was).
    """
    if legacy:
        unknown = sorted(set(legacy) - _RUN_CONFIG_FIELDS)
        if unknown:
            raise TypeError(
                f"Runner.{caller}() got unexpected keyword argument(s): "
                f"{', '.join(unknown)}"
            )
        warnings.warn(
            f"Runner.{caller}(**{sorted(legacy)}): keyword pass-through is "
            "deprecated; build a RunConfig (or call repro.api.simulate) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return RunConfig(
        benchmark=benchmark,
        scheme=scheme,
        seed=seed,
        cta_threads=cta_threads,
        stream_policy=stream_policy,
        **legacy,
    )


class Runner:
    """Runs benchmarks under schemes against one GPU configuration."""

    def __init__(
        self,
        config: Optional[GPUConfig] = None,
        *,
        max_events: int = 50_000_000,
        store: Optional[ResultStore] = None,
        cache_dir=None,
        default_engine: str = "default",
    ):
        self.config = config or GPUConfig()
        self.max_events = max_events
        self._cache: Dict[Tuple, SimResult] = {}
        if cache_dir is not None:
            warnings.warn(
                "Runner(cache_dir=...) is deprecated; pass "
                "store=repro.harness.store.open_store(url) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if store is None:
                from repro.harness.backends.directory import DirectoryBackend

                store = ResultStore(backend=DirectoryBackend(cache_dir))
        #: Optional persistent layer; None keeps the runner memory-only.
        self.store = store
        self._simulator_class(default_engine)  # validate at the door
        #: Engine applied to configs that did not pick one themselves
        #: (``suite --engine fast``: experiment modules build their own
        #: RunConfigs and must still hit the fanned-out cache entries).
        #: An explicit non-default ``RunConfig.engine`` always wins.
        self.default_engine = default_engine

    def _effective_config(self, run_config: RunConfig) -> RunConfig:
        """Resolve the runner's default engine into the config.

        Resolution happens *before* the cache key is computed, so cache
        entries always name the engine that actually ran.
        """
        if self.default_engine != "default" and run_config.engine == "default":
            return dataclasses.replace(run_config, engine=self.default_engine)
        return run_config

    def run(
        self,
        run_config: RunConfig,
        *,
        tracer: Optional[Tracer] = None,
        check: bool = False,
    ) -> SimResult:
        """Run (or fetch from cache) one benchmark/scheme combination.

        A ``tracer`` forces a fresh simulation (a cached result has no
        event stream to offer) but the result is still cached afterwards —
        tracing does not perturb the simulation, so the summary is
        interchangeable with an untraced run's.

        ``check=True`` attaches a :class:`repro.check.ConformanceChecker`
        for the run (fanned out next to ``tracer`` when both are given)
        and raises :class:`~repro.errors.ConformanceError` if any runtime
        invariant is violated.  Like tracing, checking forces a fresh
        simulation without perturbing it.
        """
        checker = None
        if check:
            # Import here so the checker stays out of the harness's module
            # graph for the overwhelmingly common check-free runs.
            from repro.check.invariants import ConformanceChecker

            checker = ConformanceChecker(self.config, scheme=run_config.scheme)
            tracer = (
                checker if tracer is None else MultiTracer([tracer, checker])
            )
        run_config = self._effective_config(run_config)
        key = run_config.key()
        if tracer is None:
            cached = self._cache.get(key)
            if cached is not None:
                REGISTRY.count("runner.cache_hits")
                return cached
            if self.store is not None:
                stored = self._store_load(run_config)
                if stored is not None:
                    REGISTRY.count("runner.disk_hits")
                    self._cache[key] = stored
                    return stored
                REGISTRY.count("runner.disk_misses")
        REGISTRY.count("runner.cache_misses")
        benchmark = get_benchmark(run_config.benchmark)
        spec = sch.SchemeSpec.parse(run_config.scheme)
        if spec.name == sch.OFFLINE:
            raise HarnessError(
                "resolve 'offline' through harness.sweep.offline_search first"
            )
        if spec.variant == "flat":
            app = benchmark.flat(run_config.seed)
        else:
            app = benchmark.dp(run_config.seed, cta_threads=run_config.cta_threads)
        policy = sch.make_policy(spec, benchmark)
        stream_policy = self._stream_policy(run_config.stream_policy)
        sim_kwargs = {}
        if spec.bind_policy != "fcfs":
            # Only non-default so seeded-bug gmu_factory partials (which
            # re-spell GMU keywords) never collide on the kwarg.
            sim_kwargs["bind_policy"] = spec.bind_policy
        sim = self._simulator_class(run_config.engine)(
            config=self.config,
            policy=policy,
            stream_policy=stream_policy,
            tracer=tracer,
            trace_interval=run_config.trace_interval,
            max_events=self.max_events,
            **sim_kwargs,
        )
        with REGISTRY.profile(
            f"sim.run/{run_config.benchmark}/{run_config.scheme}"
        ):
            result = sim.run(app)
        if checker is not None:
            checker.finalize(result)
            checker.raise_if_violations()
        self.cache_result(run_config, result)
        return result

    def cached(self, run_config: RunConfig) -> Optional[SimResult]:
        """Cached result (memory, then disk) without simulating, or None.

        A disk hit is promoted into the memory cache.  No profiling
        counters fire — this is the parallel harness's pre-filter, not a
        run.
        """
        run_config = self._effective_config(run_config)
        cached = self._cache.get(run_config.key())
        if cached is not None:
            return cached
        if self.store is not None:
            stored = self._store_load(run_config)
            if stored is not None:
                self._cache[run_config.key()] = stored
                return stored
        return None

    def cache_result(self, run_config: RunConfig, result: SimResult) -> None:
        """Install ``result`` in the memory cache and the disk store.

        Used after simulating locally and by the parallel harness to merge
        worker results back into the shared caches.
        """
        run_config = self._effective_config(run_config)
        self._cache[run_config.key()] = result
        if self.store is not None:
            self._store_save(run_config, result)

    # -- persistent store, IO-fault tolerant ----------------------------
    # The disk cache is an optimization; a failing filesystem must never
    # take a simulation (let alone a whole suite) down with it.  Both
    # directions swallow OSError, count it, and carry on.
    def _store_load(self, run_config: RunConfig) -> Optional[SimResult]:
        try:
            return self.store.load(
                self.store.key_for(run_config, self.config, self.max_events)
            )
        except OSError:
            REGISTRY.count("runner.store_errors")
            return None

    def _store_save(self, run_config: RunConfig, result: SimResult) -> None:
        try:
            self.store.save(
                self.store.key_for(run_config, self.config, self.max_events),
                result,
            )
        except OSError:
            REGISTRY.count("runner.store_errors")

    def run_simple(
        self,
        benchmark: str,
        scheme: str,
        *,
        seed: int = 1,
        cta_threads: Optional[int] = None,
        stream_policy: str = PER_CHILD,
        **legacy,
    ) -> SimResult:
        """Run one benchmark/scheme pair with explicit keyword parameters.

        Other :class:`RunConfig` fields (``trace_interval``) may still be
        passed through ``**legacy`` but that spelling is deprecated — build
        a :class:`RunConfig` (or call :func:`repro.api.simulate`) instead.
        """
        return self.run(
            _explicit_config(
                "run_simple", benchmark, scheme, seed, cta_threads,
                stream_policy, legacy,
            )
        )

    def speedup(
        self,
        benchmark: str,
        scheme: str,
        *,
        seed: int = 1,
        cta_threads: Optional[int] = None,
        stream_policy: str = PER_CHILD,
        **legacy,
    ) -> float:
        """Speedup of ``scheme`` over the flat variant (the paper's metric)."""
        flat = self.run(
            _explicit_config(
                "speedup", benchmark, sch.FLAT, seed, cta_threads,
                stream_policy, legacy,
            )
        )
        other = self.run(
            _explicit_config(
                "speedup", benchmark, scheme, seed, cta_threads,
                stream_policy, legacy,
            )
        )
        if other.makespan <= 0:
            raise HarnessError(f"{benchmark}/{scheme}: zero makespan")
        return flat.makespan / other.makespan

    @staticmethod
    def _stream_policy(name: str):
        if name == PER_CHILD:
            return PerChildStream()
        if name == PER_PARENT_CTA:
            return PerParentCTAStream()
        raise HarnessError(f"unknown stream policy {name!r}")

    @staticmethod
    def _simulator_class(engine: str):
        if engine == "default":
            return GPUSimulator
        # Deferred import: the fast core (and numpy array state) stays out
        # of the module graph for default-engine runs.
        from repro.sim.fast import ENGINES

        cls = ENGINES.get(engine)
        if cls is None:
            raise HarnessError(
                f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
            )
        return cls

    def cache_size(self) -> int:
        return len(self._cache)

    def clear_cache(self) -> None:
        self._cache.clear()


def geometric_mean(values) -> float:
    """The paper's average-speedup aggregation."""
    values = list(values)
    if not values:
        raise HarnessError("geometric mean of nothing")
    if any(v <= 0 for v in values):
        raise HarnessError("geometric mean needs positive values")
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))
