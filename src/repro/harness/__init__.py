"""Experiment harness: runners, schemes, sweeps, and report formatting."""

from repro.harness.runner import RunConfig, Runner, geometric_mean
from repro.harness.schemes import (
    BASELINE_DP,
    DP_SCHEMES,
    DTBL,
    FLAT,
    OFFLINE,
    SPAWN,
    SchemeSpec,
    make_policy,
    parse_scheme,
)
from repro.harness.export import (
    experiment_to_csv,
    experiment_to_json,
    result_to_dict,
    result_to_json,
)
from repro.harness.bench import BENCH_PAIRS, run_bench, write_report
from repro.harness.faults import FaultPlan, FlakyStore
from repro.harness.parallel import (
    ExecutionPolicy,
    ParallelRunner,
    SuiteReport,
    TaskOutcome,
    default_jobs,
)
from repro.harness.plotting import bar_chart, sparkline, timeline
from repro.harness.replication import (
    ReplicationResult,
    SchemeStats,
    replicate,
    replication_plan,
)
from repro.harness.store import (
    ResultStore,
    StoreBackend,
    StoreStats,
    default_cache_dir,
    open_store,
)
from repro.harness.sweep import (
    SweepPoint,
    SweepResult,
    offline_search,
    sweep_plan,
    threshold_sweep,
)

__all__ = [
    "BASELINE_DP",
    "BENCH_PAIRS",
    "DP_SCHEMES",
    "DTBL",
    "ExecutionPolicy",
    "FLAT",
    "FaultPlan",
    "FlakyStore",
    "OFFLINE",
    "SPAWN",
    "ParallelRunner",
    "ResultStore",
    "SuiteReport",
    "TaskOutcome",
    "RunConfig",
    "Runner",
    "SchemeSpec",
    "StoreBackend",
    "StoreStats",
    "SweepPoint",
    "SweepResult",
    "ReplicationResult",
    "SchemeStats",
    "bar_chart",
    "default_cache_dir",
    "default_jobs",
    "experiment_to_csv",
    "experiment_to_json",
    "geometric_mean",
    "make_policy",
    "offline_search",
    "open_store",
    "parse_scheme",
    "replicate",
    "replication_plan",
    "result_to_dict",
    "result_to_json",
    "run_bench",
    "sparkline",
    "sweep_plan",
    "threshold_sweep",
    "timeline",
    "write_report",
]
