"""Experiment harness: runners, schemes, sweeps, and report formatting."""

from repro.harness.runner import RunConfig, Runner, geometric_mean
from repro.harness.schemes import (
    BASELINE_DP,
    DP_SCHEMES,
    DTBL,
    FLAT,
    OFFLINE,
    SPAWN,
    SchemeSpec,
    make_policy,
    parse_scheme,
)
from repro.harness.export import (
    experiment_to_csv,
    experiment_to_json,
    result_to_dict,
    result_to_json,
)
from repro.harness.plotting import bar_chart, sparkline, timeline
from repro.harness.replication import ReplicationResult, SchemeStats, replicate
from repro.harness.sweep import SweepPoint, SweepResult, offline_search, threshold_sweep

__all__ = [
    "BASELINE_DP",
    "DP_SCHEMES",
    "DTBL",
    "FLAT",
    "OFFLINE",
    "SPAWN",
    "RunConfig",
    "Runner",
    "SchemeSpec",
    "SweepPoint",
    "SweepResult",
    "ReplicationResult",
    "SchemeStats",
    "bar_chart",
    "experiment_to_csv",
    "experiment_to_json",
    "geometric_mean",
    "make_policy",
    "offline_search",
    "parse_scheme",
    "replicate",
    "result_to_dict",
    "result_to_json",
    "sparkline",
    "threshold_sweep",
    "timeline",
]
