"""Fault-tolerant parallel experiment fan-out over a process pool.

The simulator is single-threaded pure Python, so the only way to use a
multi-core machine for the evaluation suite is to run *different*
simulations in different processes.  This module adds a plan/execute
split on top of :class:`~repro.harness.runner.Runner`:

1. **Plan.**  Callers declare the full run-set up front as a list of
   :class:`RunConfig` (experiment modules expose these via
   :mod:`repro.experiments.plans`).  ``offline`` entries are expanded into
   the threshold sweep that defines them, so every scheme in
   ``DP_SCHEMES`` — including Offline-Search — can be fanned out.
2. **Execute.**  Unique, uncached configs are shipped to a
   ``ProcessPoolExecutor``; each worker simulates independently and
   returns a JSON payload (:meth:`SimResult.to_dict`).  Workers never
   touch the disk store — the parent merges every payload back into the
   shared memory cache *and* the persistent store as tasks complete,
   keeping writes single-producer per process tree (and checkpointing
   progress: a killed suite resumes from the store, re-simulating only
   the missing configs).  "Single-producer" is per *runner*, not per
   host: every store write goes through one
   :class:`~repro.harness.store.StoreBackend`, and the shared backends
   (``sqlite://`` WAL, ``kv://``) are safe under several parent
   processes — which is what lets each shard of a
   :class:`~repro.service.fleet.ServiceFleet` keep its own pool while
   deduplicating results fleet-wide.
3. **Resolve.**  Results are returned in input order via the now-warm
   runner, so ``run_many`` output is bit-identical to running the same
   configs serially (simulations are deterministic and workers use the
   same GPU config and event budget as the parent).

Execution survives the failure modes a long sweep actually hits, governed
by an :class:`ExecutionPolicy`:

* **Per-task timeouts.**  A hung worker does not hang the suite; the task
  times out and is retried.  (The timeout is measured from when the
  parent starts waiting on that task, so a task queued behind a slow one
  can time out early — that only costs a spurious retry, never a wrong
  result.)
* **Bounded retry with deterministic backoff.**  Failed attempts are
  re-dispatched up to ``max_retries`` times, sleeping
  ``backoff * 2**(attempt-1)`` seconds in the parent between attempts.
* **Crash re-dispatch.**  A worker death breaks the whole
  ``ProcessPoolExecutor``; in-flight tasks are re-queued, the pool is
  rebuilt (up to ``max_pool_rebuilds`` times), and execution continues.
* **Graceful degradation.**  When the pool keeps dying, the remaining
  tasks run in-process serially instead of aborting the suite.
* **Failure quarantine.**  A task that exhausts its attempts is recorded
  in the :class:`SuiteReport` and its result slot is ``None``; every
  other run still completes (unless ``fail_fast`` asks to stop early).

Determinism note: retries re-run a *pure deterministic* simulation, so a
retried task's payload is bit-identical to what the first attempt would
have produced; results are merged in *input order*, not completion order,
so neither scheduling jitter nor injected faults (see
:mod:`repro.harness.faults`) can reorder anything observable.
"""

from __future__ import annotations

import os
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError, RunFailure, TaskTimeout, WorkerCrash
from repro.harness import schemes as sch
from repro.harness.faults import FaultPlan
from repro.harness.runner import RunConfig, Runner
from repro.obs.metrics import METRICS
from repro.obs.profile import REGISTRY
from repro.obs.tracer import (
    HARNESS_POOL_REBUILD,
    HARNESS_QUARANTINE,
    HARNESS_REQUEUE,
    HARNESS_RETRY,
    HARNESS_SERIAL_FALLBACK,
    HARNESS_TIMEOUT,
    HARNESS_WORKER_CRASH,
    NULL_TRACER,
    Tracer,
)
from repro.sim.config import GPUConfig
from repro.sim.engine import SimResult
from repro.workloads.base import get_benchmark

#: Task outcome statuses.
OK = "ok"
FAILED = "failed"
SKIPPED = "skipped"


def default_jobs() -> int:
    """Default worker count: the machine's cores, at least 1."""
    return max(os.cpu_count() or 1, 1)


@dataclass(frozen=True)
class ExecutionPolicy:
    """How hard to try before giving up on a task (or the pool).

    The defaults retry transient failures but never time tasks out, so a
    policy-less :class:`ParallelRunner` behaves like the historical one on
    healthy machines while surviving worker crashes.
    """

    timeout: Optional[float] = None  # per-task seconds; None = wait forever
    max_retries: int = 2  # re-dispatches after the first failed attempt
    backoff: float = 0.0  # base seconds for exponential retry backoff
    fail_fast: bool = False  # stop the suite on the first quarantined task
    max_pool_rebuilds: int = 2  # broken pools replaced before going serial

    def __post_init__(self) -> None:
        if self.timeout is not None and self.timeout <= 0:
            raise HarnessError(f"timeout must be positive, got {self.timeout}")
        if self.max_retries < 0:
            raise HarnessError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise HarnessError(f"backoff must be >= 0, got {self.backoff}")
        if self.max_pool_rebuilds < 0:
            raise HarnessError(
                f"max_pool_rebuilds must be >= 0, got {self.max_pool_rebuilds}"
            )

    def backoff_seconds(self, failed_attempts: int) -> float:
        """Deterministic sleep before re-dispatching attempt N+1."""
        if self.backoff <= 0:
            return 0.0
        return self.backoff * (2 ** max(failed_attempts - 1, 0))


@dataclass
class TaskOutcome:
    """Terminal record for one executed (expanded, uncached) work item."""

    config: RunConfig
    status: str  # OK | FAILED | SKIPPED
    attempts: int = 0
    error: Optional[str] = None  # final failure message, if any
    failure: Optional[RunFailure] = None  # typed final failure, if any


@dataclass
class SuiteReport:
    """Everything :meth:`ParallelRunner.run_suite` knows about one suite.

    ``results`` aligns with the *requested* configs (input order); a slot
    is ``None`` when its run was quarantined or skipped.  ``outcomes``
    aligns with the executed work items (the expanded, uncached set).
    """

    configs: List[RunConfig] = field(default_factory=list)
    results: List[Optional[SimResult]] = field(default_factory=list)
    outcomes: List[TaskOutcome] = field(default_factory=list)
    resumed: int = 0  # planned runs answered from cache before dispatch
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    pool_rebuilds: int = 0
    quarantined: int = 0
    serial_fallback: bool = False

    @property
    def failures(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.status == FAILED]

    @property
    def skipped(self) -> List[TaskOutcome]:
        return [o for o in self.outcomes if o.status == SKIPPED]

    @property
    def ok(self) -> bool:
        return not self.failures and not self.skipped

    def raise_if_failed(self) -> None:
        """Re-raise the first quarantined task's typed failure, if any."""
        for outcome in self.outcomes:
            if outcome.status == FAILED and outcome.failure is not None:
                raise outcome.failure
        if not self.ok:  # skipped without a recorded failure (fail-fast)
            raise RunFailure("suite aborted before every task ran")


class _TaskState:
    """Mutable per-work-item bookkeeping while a suite executes."""

    __slots__ = ("config", "attempts", "status", "error", "failure")

    def __init__(self, config: RunConfig):
        self.config = config
        self.attempts = 0
        self.status: Optional[str] = None  # None = still pending
        self.error: Optional[str] = None
        self.failure: Optional[RunFailure] = None

    def outcome(self) -> TaskOutcome:
        return TaskOutcome(
            config=self.config,
            status=self.status if self.status is not None else SKIPPED,
            attempts=self.attempts,
            error=self.error,
            failure=self.failure,
        )


def _simulate_payload(task: Tuple) -> Dict:
    """Worker entry point: simulate one config, return a JSON payload.

    Module-level so it pickles under every start method.  The worker uses
    a fresh memory-only runner — persistence is the parent's job.  The
    dispatch sequence number and (optional) fault plan exist purely for
    deterministic fault injection; a fault-free dispatch is unaffected.
    """
    run_config, gpu_config, max_events, seq, faults = task
    if faults is not None:
        plan = FaultPlan.from_dict(faults)
        if plan.apply_in_worker(seq, run_config):
            return {"__injected_corrupt__": seq}
    runner = Runner(gpu_config, max_events=max_events)
    return runner.run(run_config).to_dict()


class ParallelRunner:
    """Fans a declared run-set out across worker processes, surviving them.

    Wraps (and shares caches with) a :class:`Runner`; after ``run_many``
    the wrapped runner answers every planned config from cache, so
    experiment modules can keep their serial ``runner.run`` code and
    still benefit.  ``policy`` tunes timeouts/retries/quarantine;
    ``faults`` injects deterministic failures (chaos tests only);
    ``tracer`` receives ``harness.*`` events for every recovery action.
    """

    def __init__(
        self,
        runner: Optional[Runner] = None,
        *,
        jobs: Optional[int] = None,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
    ):
        self.runner = runner if runner is not None else Runner()
        self.jobs = jobs if jobs is not None else default_jobs()
        self.policy = policy if policy is not None else ExecutionPolicy()
        if faults is not None and faults.is_noop():
            faults = None
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._dispatch_seq = 0

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def expand(self, configs: Sequence[RunConfig]) -> List[RunConfig]:
        """Concrete, deduplicated work-set for ``configs`` (input order).

        ``offline`` is not directly runnable — it is *defined* as the best
        static threshold found by sweeping — so an offline entry expands
        into its benchmark's flat run plus every ``threshold:<T>`` in the
        sweep list (matching :func:`repro.harness.sweep.offline_search`).
        """
        expanded: List[RunConfig] = []
        seen: set = set()

        def add(config: RunConfig) -> None:
            key = config.key()
            if key not in seen:
                seen.add(key)
                expanded.append(config)

        for config in configs:
            spec = sch.SchemeSpec.parse(config.scheme)
            if spec.name == sch.OFFLINE:
                for concrete in self._offline_expansion(config):
                    add(concrete)
            else:
                add(config)
        return expanded

    @staticmethod
    def _offline_expansion(config: RunConfig) -> List[RunConfig]:
        benchmark = get_benchmark(config.benchmark)
        variants = [sch.FLAT]
        variants.extend(
            f"threshold:{threshold}" for threshold in benchmark.sweep_thresholds
        )
        return [
            RunConfig(
                benchmark=config.benchmark,
                scheme=scheme,
                seed=config.seed,
                cta_threads=config.cta_threads,
                stream_policy=config.stream_policy,
                trace_interval=config.trace_interval,
                engine=config.engine,
            )
            for scheme in variants
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_many(
        self, configs: Sequence[RunConfig], *, jobs: Optional[int] = None
    ) -> List[SimResult]:
        """Run every config (fanning misses out) and return results in order.

        Raises the first task's typed :class:`RunFailure` if any run was
        quarantined; use :meth:`run_suite` to get a report instead.
        """
        report = self.run_suite(configs, jobs=jobs)
        report.raise_if_failed()
        return list(report.results)

    def run_suite(
        self, configs: Sequence[RunConfig], *, jobs: Optional[int] = None
    ) -> SuiteReport:
        """Run every config, quarantining failures, and report the outcome.

        Already-cached runs (memory or the persistent store) are not
        re-dispatched — with a store attached this is what makes a
        partially-completed suite resumable after a crash or kill.
        """
        configs = list(configs)
        if not configs:
            return SuiteReport()
        jobs = jobs if jobs is not None else self.jobs
        if jobs < 1:
            raise HarnessError(f"jobs must be >= 1, got {jobs}")
        expanded = self.expand(configs)
        work = [c for c in expanded if self.runner.cached(c) is None]
        resumed = len(expanded) - len(work)
        if resumed:
            REGISTRY.count("parallel.resumed", resumed)
        report = SuiteReport(configs=configs, resumed=resumed)
        if work:
            states = [_TaskState(config) for config in work]
            self._execute(states, jobs, report)
            report.outcomes = [state.outcome() for state in states]
        report.results = [self._resolve(config) for config in configs]
        return report

    def _execute(
        self, states: List[_TaskState], jobs: int, report: SuiteReport
    ) -> None:
        REGISTRY.count("parallel.fanned_out", len(states))
        pending: Deque[_TaskState] = deque(states)
        if jobs == 1 or len(states) == 1:
            self._execute_serial(pending, report)
        else:
            self._execute_pool(pending, jobs, report)

    # -- serial (in-process) path ---------------------------------------
    def _execute_serial(
        self, pending: Deque[_TaskState], report: SuiteReport
    ) -> None:
        """Run tasks through the shared runner, with retry/quarantine.

        Also the graceful-degradation target when the pool keeps dying.
        Per-task timeouts cannot be enforced in-process and are ignored
        here; every other policy knob behaves identically.
        """
        while pending:
            state = pending.popleft()
            if state.status is not None:
                continue
            if self._fail_fast_triggered(report):
                self._skip(state, pending, report)
                continue
            state.attempts += 1
            seq = self._next_seq()
            started = time.perf_counter()
            try:
                if self.faults is not None:
                    self.faults.apply_inline(seq, state.config)
                self.runner.run(state.config)
            except WorkerCrash as exc:
                report.worker_crashes += 1
                REGISTRY.count("parallel.worker_crashes")
                self._emit(
                    HARNESS_WORKER_CRASH,
                    benchmark=state.config.benchmark,
                    scheme=state.config.scheme,
                )
                exc.attempts = state.attempts
                self._after_failure(state, exc, pending, report)
            except Exception as exc:  # quarantine, never abort the suite
                failure = RunFailure(
                    f"{state.config.benchmark}/{state.config.scheme} failed: {exc}",
                    config=state.config,
                    attempts=state.attempts,
                )
                failure.__cause__ = exc
                REGISTRY.count("parallel.task_errors")
                self._after_failure(state, failure, pending, report)
            else:
                state.status = OK
                METRICS.histogram("harness.task_seconds", mode="serial").observe(
                    max(time.perf_counter() - started, 0.0)
                )

    # -- pooled path ----------------------------------------------------
    def _execute_pool(
        self, pending: Deque[_TaskState], jobs: int, report: SuiteReport
    ) -> None:
        policy = self.policy
        workers = min(jobs, len(pending))
        rebuilds = 0
        pool = ProcessPoolExecutor(max_workers=workers)
        try:
            while pending:
                inflight, submit_broken = self._submit_round(pool, pending)
                broken = submit_broken
                for state, future, dispatched in inflight:
                    if broken or state.status is not None or state in pending:
                        continue
                    try:
                        payload = future.result(timeout=policy.timeout)
                        result = SimResult.from_dict(payload)
                    except BrokenExecutor:
                        broken = True
                    except FuturesTimeout:
                        future.cancel()
                        failure = TaskTimeout(
                            f"{state.config.benchmark}/{state.config.scheme} "
                            f"exceeded the {policy.timeout:g}s task timeout",
                            config=state.config,
                            attempts=state.attempts,
                        )
                        report.timeouts += 1
                        REGISTRY.count("parallel.timeouts")
                        self._emit(
                            HARNESS_TIMEOUT,
                            benchmark=state.config.benchmark,
                            scheme=state.config.scheme,
                            timeout=policy.timeout,
                        )
                        self._after_failure(state, failure, pending, report)
                    except Exception as exc:  # task raised / torn payload
                        failure = RunFailure(
                            f"{state.config.benchmark}/{state.config.scheme} "
                            f"failed: {exc}",
                            config=state.config,
                            attempts=state.attempts,
                        )
                        failure.__cause__ = exc
                        REGISTRY.count("parallel.task_errors")
                        self._after_failure(state, failure, pending, report)
                    else:
                        self.runner.cache_result(state.config, result)
                        state.status = OK
                        # Dispatch-to-result round trip (queue wait behind
                        # slower tasks included), the pool-side analog of
                        # the serial per-run timer.
                        METRICS.histogram(
                            "harness.task_seconds", mode="pool"
                        ).observe(max(time.perf_counter() - dispatched, 0.0))
                if broken:
                    rebuilds += 1
                    report.worker_crashes += 1
                    REGISTRY.count("parallel.worker_crashes")
                    self._emit(HARNESS_WORKER_CRASH, inflight=len(inflight))
                    self._requeue_lost(inflight, pending, report)
                    pool.shutdown(wait=False, cancel_futures=True)
                    if rebuilds > policy.max_pool_rebuilds:
                        report.serial_fallback = True
                        REGISTRY.count("parallel.serial_fallback")
                        self._emit(HARNESS_SERIAL_FALLBACK, remaining=len(pending))
                        self._execute_serial(pending, report)
                        return
                    report.pool_rebuilds += 1
                    REGISTRY.count("parallel.pool_rebuilds")
                    self._emit(HARNESS_POOL_REBUILD, rebuilds=rebuilds)
                    pool = ProcessPoolExecutor(max_workers=workers)
                if self._fail_fast_triggered(report):
                    while pending:
                        self._skip(pending.popleft(), pending, report)
                    return
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _submit_round(self, pool, pending: Deque[_TaskState]):
        """Dispatch everything currently pending; returns (inflight, broken).

        ``inflight`` entries are ``(state, future, dispatched_at)`` — the
        dispatch stamp feeds the ``harness.task_seconds`` histogram.
        """
        inflight = []
        while pending:
            state = pending.popleft()
            if state.status is not None:
                continue
            state.attempts += 1
            seq = self._next_seq()
            task = (
                state.config,
                self.runner.config,
                self.runner.max_events,
                seq,
                self.faults.to_dict() if self.faults is not None else None,
            )
            try:
                future = pool.submit(_simulate_payload, task)
            except (BrokenExecutor, RuntimeError):
                # The pool died between rounds; undo this dispatch and let
                # the crash path requeue everything.
                state.attempts -= 1
                pending.appendleft(state)
                return inflight, True
            inflight.append((state, future, time.perf_counter()))
        return inflight, False

    def _requeue_lost(self, inflight, pending: Deque[_TaskState], report) -> None:
        """Every in-flight task without a terminal status died with the pool."""
        for state, _future, _dispatched in inflight:
            if state.status is not None or state in pending:
                continue
            failure = WorkerCrash(
                f"{state.config.benchmark}/{state.config.scheme} was lost "
                "to a worker crash",
                config=state.config,
                attempts=state.attempts,
            )
            requeued = self._after_failure(state, failure, pending, report)
            if requeued:
                REGISTRY.count("parallel.requeued")
                self._emit(
                    HARNESS_REQUEUE,
                    benchmark=state.config.benchmark,
                    scheme=state.config.scheme,
                )

    # -- shared failure bookkeeping -------------------------------------
    def _after_failure(
        self,
        state: _TaskState,
        failure: RunFailure,
        pending: Deque[_TaskState],
        report: SuiteReport,
    ) -> bool:
        """Requeue ``state`` for another attempt or quarantine it.

        Returns True when the task got another attempt.  Permanent
        injected failures are retried like real ones — proving quarantine
        needs the retry budget to be spent first.
        """
        if state.attempts <= self.policy.max_retries:
            delay = self.policy.backoff_seconds(state.attempts)
            if delay > 0:
                time.sleep(delay)
            report.retries += 1
            REGISTRY.count("parallel.retries")
            METRICS.counter("harness.retries_total").inc()
            self._emit(
                HARNESS_RETRY,
                benchmark=state.config.benchmark,
                scheme=state.config.scheme,
                attempt=state.attempts + 1,
            )
            pending.append(state)
            return True
        state.status = FAILED
        state.error = str(failure)
        state.failure = failure
        report.quarantined += 1
        REGISTRY.count("parallel.quarantined")
        METRICS.counter("harness.quarantined_total").inc()
        self._emit(
            HARNESS_QUARANTINE,
            benchmark=state.config.benchmark,
            scheme=state.config.scheme,
            attempts=state.attempts,
            error=str(failure),
        )
        return False

    def _skip(self, state, pending, report) -> None:
        if state.status is None:
            state.status = SKIPPED
            state.error = "skipped after an earlier failure (fail-fast)"

    def _fail_fast_triggered(self, report: SuiteReport) -> bool:
        return self.policy.fail_fast and report.quarantined > 0

    def _next_seq(self) -> int:
        seq = self._dispatch_seq
        self._dispatch_seq += 1
        return seq

    def _emit(self, kind: str, **args) -> None:
        if self.tracer.enabled:
            self.tracer.emit(kind, ts=time.perf_counter(), **args)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    def _resolve(self, config: RunConfig) -> Optional[SimResult]:
        """Answer one requested config from the now-warm caches.

        Returns None when the run (or, for Offline-Search, any run of its
        defining sweep) was quarantined — resolution never re-simulates,
        so a quarantined failure cannot sneak back in through the parent.
        """
        spec = sch.SchemeSpec.parse(config.scheme)
        if spec.name != sch.OFFLINE:
            return self.runner.cached(config)
        # Re-derive Offline-Search from the (now cached) sweep runs, with
        # the same selection rule as harness.sweep.offline_search: best
        # speedup over flat, first threshold winning ties.
        variants = self._offline_expansion(config)
        flat = self.runner.cached(variants[0])
        if flat is None:
            return None
        best: Optional[Tuple[float, SimResult]] = None
        for variant in variants[1:]:
            result = self.runner.cached(variant)
            if result is None:
                return None
            if result.makespan <= 0:
                raise HarnessError(
                    f"{config.benchmark}/{variant.scheme}: zero makespan"
                )
            speedup = flat.makespan / result.makespan
            if best is None or speedup > best[0]:
                best = (speedup, result)
        assert best is not None  # sweep lists are never empty
        return best[1]
