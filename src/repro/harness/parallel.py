"""Parallel experiment fan-out over a process pool.

The simulator is single-threaded pure Python, so the only way to use a
multi-core machine for the evaluation suite is to run *different*
simulations in different processes.  This module adds a plan/execute
split on top of :class:`~repro.harness.runner.Runner`:

1. **Plan.**  Callers declare the full run-set up front as a list of
   :class:`RunConfig` (experiment modules expose these via
   :mod:`repro.experiments.plans`).  ``offline`` entries are expanded into
   the threshold sweep that defines them, so every scheme in
   ``DP_SCHEMES`` — including Offline-Search — can be fanned out.
2. **Execute.**  Unique, uncached configs are shipped to a
   ``ProcessPoolExecutor``; each worker simulates independently and
   returns a JSON payload (:meth:`SimResult.to_dict`).  Workers never
   touch the disk store — the parent merges every payload back into the
   shared memory cache *and* the persistent store, keeping writes
   single-producer per process tree.
3. **Resolve.**  Results are returned in input order via the now-warm
   runner, so ``run_many`` output is bit-identical to running the same
   configs serially (simulations are deterministic and workers use the
   same GPU config and event budget as the parent).

Determinism note: worker-process results are merged in *input order*, not
completion order, so scheduling jitter in the pool cannot reorder
anything observable.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.harness import schemes as sch
from repro.harness.runner import RunConfig, Runner
from repro.obs.profile import REGISTRY
from repro.sim.config import GPUConfig
from repro.sim.engine import SimResult
from repro.workloads.base import get_benchmark


def default_jobs() -> int:
    """Default worker count: the machine's cores, at least 1."""
    return max(os.cpu_count() or 1, 1)


def _simulate_payload(task: Tuple[RunConfig, GPUConfig, int]) -> Dict:
    """Worker entry point: simulate one config, return a JSON payload.

    Module-level so it pickles under every start method.  The worker uses
    a fresh memory-only runner — persistence is the parent's job.
    """
    run_config, gpu_config, max_events = task
    runner = Runner(gpu_config, max_events=max_events)
    return runner.run(run_config).to_dict()


class ParallelRunner:
    """Fans a declared run-set out across worker processes.

    Wraps (and shares caches with) a :class:`Runner`; after ``run_many``
    the wrapped runner answers every planned config from cache, so
    experiment modules can keep their serial ``runner.run`` code and
    still benefit.
    """

    def __init__(self, runner: Optional[Runner] = None, *, jobs: Optional[int] = None):
        self.runner = runner if runner is not None else Runner()
        self.jobs = jobs if jobs is not None else default_jobs()

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------
    def expand(self, configs: Sequence[RunConfig]) -> List[RunConfig]:
        """Concrete, deduplicated work-set for ``configs`` (input order).

        ``offline`` is not directly runnable — it is *defined* as the best
        static threshold found by sweeping — so an offline entry expands
        into its benchmark's flat run plus every ``threshold:<T>`` in the
        sweep list (matching :func:`repro.harness.sweep.offline_search`).
        """
        expanded: List[RunConfig] = []
        seen: set = set()

        def add(config: RunConfig) -> None:
            key = config.key()
            if key not in seen:
                seen.add(key)
                expanded.append(config)

        for config in configs:
            spec = sch.parse_scheme(config.scheme)
            if spec.name == sch.OFFLINE:
                for concrete in self._offline_expansion(config):
                    add(concrete)
            else:
                add(config)
        return expanded

    @staticmethod
    def _offline_expansion(config: RunConfig) -> List[RunConfig]:
        benchmark = get_benchmark(config.benchmark)
        variants = [sch.FLAT]
        variants.extend(
            f"threshold:{threshold}" for threshold in benchmark.sweep_thresholds
        )
        return [
            RunConfig(
                benchmark=config.benchmark,
                scheme=scheme,
                seed=config.seed,
                cta_threads=config.cta_threads,
                stream_policy=config.stream_policy,
                trace_interval=config.trace_interval,
            )
            for scheme in variants
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run_many(
        self, configs: Sequence[RunConfig], *, jobs: Optional[int] = None
    ) -> List[SimResult]:
        """Run every config (fanning misses out) and return results in order."""
        configs = list(configs)
        if not configs:
            return []
        jobs = jobs if jobs is not None else self.jobs
        if jobs < 1:
            raise HarnessError(f"jobs must be >= 1, got {jobs}")
        work = [
            config
            for config in self.expand(configs)
            if self.runner.cached(config) is None
        ]
        if work:
            self._execute(work, jobs)
        return [self._resolve(config) for config in configs]

    def _execute(self, work: List[RunConfig], jobs: int) -> None:
        runner = self.runner
        REGISTRY.count("parallel.fanned_out", len(work))
        if jobs == 1 or len(work) == 1:
            # Not worth a pool; run in-process through the shared runner.
            for config in work:
                runner.run(config)
            return
        tasks = [(config, runner.config, runner.max_events) for config in work]
        workers = min(jobs, len(tasks))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            payloads = pool.map(_simulate_payload, tasks, chunksize=1)
            for config, payload in zip(work, payloads):
                runner.cache_result(config, SimResult.from_dict(payload))

    def _resolve(self, config: RunConfig) -> SimResult:
        spec = sch.parse_scheme(config.scheme)
        if spec.name != sch.OFFLINE:
            return self.runner.run(config)  # warm: a cache hit
        # Re-derive Offline-Search from the (now cached) sweep runs, with
        # the same selection rule as harness.sweep.offline_search: best
        # speedup over flat, first threshold winning ties.
        variants = self._offline_expansion(config)
        flat = self.runner.run(variants[0])
        best: Optional[Tuple[float, SimResult]] = None
        for variant in variants[1:]:
            result = self.runner.run(variant)
            if result.makespan <= 0:
                raise HarnessError(
                    f"{config.benchmark}/{variant.scheme}: zero makespan"
                )
            speedup = flat.makespan / result.makespan
            if best is None or speedup > best[0]:
                best = (speedup, result)
        assert best is not None  # sweep lists are never empty
        return best[1]
