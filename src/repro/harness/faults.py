"""Deterministic, config-driven fault injection for the execution layer.

The fault-tolerant :class:`~repro.harness.parallel.ParallelRunner` is only
trustworthy if its failure paths are *tested* — and worker crashes, hangs,
and torn payloads do not happen on demand.  This module makes them happen
on demand, deterministically:

* Every task dispatch gets a monotonically increasing **dispatch sequence
  number** from the parent.  A :class:`FaultPlan` names the sequence
  numbers at which to misbehave (``kill_on_dispatch=3`` kills the worker
  process servicing dispatch #3), so a fault fires exactly once — a
  re-dispatched task carries a fresh, higher sequence number and runs
  clean.  Chaos tests can therefore assert *bit-identical* results between
  a faulted parallel run and a fault-free serial one.
* Permanent failures (for quarantine testing) are keyed on the run's
  benchmark/scheme instead, so they fire on every attempt.
* Store IO faults are injected by wrapping a
  :class:`~repro.harness.store.ResultStore` in :class:`FlakyStore`, whose
  first *N* loads/saves raise :class:`OSError`.

Plans serialize to flat JSON dicts so they cross the process boundary to
workers, and can be supplied to the CLI via the ``REPRO_FAULTS``
environment variable (used by the CI chaos smoke job)::

    REPRO_FAULTS='{"kill_on_dispatch": 0}' repro suite --jobs 2 ...

Nothing here is imported by the simulator: a production run with no fault
plan pays zero cost.
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import HarnessError, SimulationError, WorkerCrash

#: Exit status used by the injected worker kill (visible in pool logs).
KILL_EXIT_CODE = 87

#: Environment variable carrying a JSON-encoded fault plan for the CLI.
ENV_FAULTS = "REPRO_FAULTS"


@dataclass(frozen=True)
class FaultPlan:
    """Declarative description of which faults to inject, and when.

    ``*_on_dispatch`` fields name one parent-assigned dispatch sequence
    number (0-based, counting every task submission including retries);
    ``None`` disables that fault.  ``fail_benchmark``/``fail_scheme``
    select runs that fail *every* attempt (both must match when both are
    set; a permanent failure needs at least one of them).
    """

    kill_on_dispatch: Optional[int] = None  # worker os._exit()s mid-task
    delay_on_dispatch: Optional[int] = None  # task sleeps before returning
    delay_seconds: float = 0.0
    corrupt_on_dispatch: Optional[int] = None  # task returns a torn payload
    fail_benchmark: Optional[str] = None  # permanent failure selector
    fail_scheme: Optional[str] = None
    store_save_errors: int = 0  # first N FlakyStore saves raise OSError
    store_load_errors: int = 0

    def __post_init__(self) -> None:
        if self.delay_on_dispatch is not None and self.delay_seconds <= 0:
            raise HarnessError("delay_on_dispatch needs delay_seconds > 0")

    def is_noop(self) -> bool:
        """True when this plan injects nothing at all."""
        return self == FaultPlan()

    # ------------------------------------------------------------------
    # Serialization (plans cross the process boundary as plain dicts)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise HarnessError(f"unknown fault plan field(s): {', '.join(unknown)}")
        return cls(**payload)

    @classmethod
    def from_env(cls, env: str = ENV_FAULTS) -> Optional["FaultPlan"]:
        """Plan from ``$REPRO_FAULTS`` (JSON), or None when unset/empty."""
        raw = os.environ.get(env, "").strip()
        if not raw:
            return None
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise HarnessError(f"${env} is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise HarnessError(f"${env} must be a JSON object")
        return cls.from_dict(payload)

    # ------------------------------------------------------------------
    # Injection points
    # ------------------------------------------------------------------
    def permanently_fails(self, run_config) -> bool:
        """True when ``run_config`` is selected to fail on every attempt."""
        if self.fail_benchmark is None and self.fail_scheme is None:
            return False
        if self.fail_benchmark is not None:
            if run_config.benchmark != self.fail_benchmark:
                return False
        if self.fail_scheme is not None:
            if run_config.scheme != self.fail_scheme:
                return False
        return True

    def apply_in_worker(self, seq: int, run_config) -> bool:
        """Inject faults inside a worker process servicing dispatch ``seq``.

        Returns True when the worker should return a corrupted payload
        instead of simulating.  May kill the process or raise.
        """
        if seq == self.kill_on_dispatch:
            os._exit(KILL_EXIT_CODE)
        if self.permanently_fails(run_config):
            raise SimulationError(
                "injected permanent failure for "
                f"{run_config.benchmark}/{run_config.scheme}"
            )
        if seq == self.delay_on_dispatch:
            time.sleep(self.delay_seconds)
        return seq == self.corrupt_on_dispatch

    def apply_inline(self, seq: int, run_config) -> None:
        """Inject faults for in-process (serial) execution of ``seq``.

        A kill becomes a raised :class:`WorkerCrash` (killing the parent
        would defeat the point) and a corrupt payload becomes a
        :class:`ValueError`, mirroring what the parent-side payload decode
        would raise; both still exercise the retry/quarantine machinery.
        """
        if seq == self.kill_on_dispatch:
            raise WorkerCrash(
                "injected worker kill (inline execution)", config=run_config
            )
        if self.permanently_fails(run_config):
            raise SimulationError(
                "injected permanent failure for "
                f"{run_config.benchmark}/{run_config.scheme}"
            )
        if seq == self.delay_on_dispatch:
            time.sleep(self.delay_seconds)
        if seq == self.corrupt_on_dispatch:
            raise ValueError("injected corrupt payload (inline execution)")

    def flaky_store(self, store):
        """Wrap ``store`` per this plan's IO-error budget (or pass through)."""
        if store is None or (not self.store_save_errors and not self.store_load_errors):
            return store
        return FlakyStore(
            store,
            save_errors=self.store_save_errors,
            load_errors=self.store_load_errors,
        )


class FlakyStore:
    """ResultStore wrapper whose first *N* loads/saves raise OSError.

    Everything else (``key_for``, ``stats``, ...) delegates to the wrapped
    store, so a :class:`~repro.harness.runner.Runner` cannot tell it apart
    from a store on a failing disk.
    """

    def __init__(self, store, *, save_errors: int = 0, load_errors: int = 0):
        self._store = store
        self.save_errors_left = save_errors
        self.load_errors_left = load_errors

    def load(self, key):
        if self.load_errors_left > 0:
            self.load_errors_left -= 1
            raise OSError("injected store load error")
        return self._store.load(key)

    def save(self, key, result):
        if self.save_errors_left > 0:
            self.save_errors_left -= 1
            raise OSError("injected store save error")
        return self._store.save(key, result)

    def __getattr__(self, name):
        return getattr(self._store, name)
