"""Persistent, content-addressed result store under ``.repro-cache/``.

The in-process :class:`~repro.harness.runner.Runner` cache dies with the
interpreter, so every CLI invocation and CI job used to re-simulate runs it
had already done.  This module gives results a durable home:

* **Content-addressed keys.**  An entry's filename is the SHA-256 of a
  canonical JSON document covering *everything that determines the result*:
  the cache schema version, every :class:`RunConfig` field (including
  ``trace_interval``), the full :class:`~repro.sim.config.GPUConfig`
  (nested dataclasses and all), and the event budget.  Change any input and
  the key changes; bump :data:`SCHEMA_VERSION` and every old entry becomes
  unreachable (stale entries are never *read wrong*, only orphaned).
* **Atomic writes.**  Entries are written to a temp file in the same
  directory and ``os.replace``-d into place, so concurrent workers (the
  parallel harness) and overlapping CI jobs never observe torn JSON.
* **Corruption tolerance.**  An unreadable or schema-mismatched entry is
  treated as a miss and deleted; the run is simply redone.

Layout: ``<root>/<first two key hex chars>/<key>.json`` — two-level fanout
keeps directory listings short even for thousands of entries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

from repro.obs.metrics import DEFAULT_IO_BUCKETS, METRICS
from repro.sim.config import GPUConfig
from repro.sim.engine import SimResult

#: Bump whenever the serialized payload or the simulation semantics change
#: in a way that invalidates stored results.  The version participates in
#: the hashed key, so a bump orphans (rather than misreads) old entries.
#: v2: the run portion of the key document is RunConfig.key() verbatim.
#: v3: RunConfig grew the ``engine`` field (fast vs. reference results
#: must never collide, even though the fast core is certified identical).
SCHEMA_VERSION = 3

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default on-disk location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of the on-disk cache, for ``repro cache stats``."""

    root: str
    entries: int
    total_bytes: int


class ResultStore:
    """Content-addressed on-disk cache of :class:`SimResult` payloads."""

    def __init__(self, root: Optional[os.PathLike] = None):
        self.root = Path(root) if root is not None else default_cache_dir()

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(run_config, gpu_config: GPUConfig, max_events: int) -> str:
        """SHA-256 hex key covering every input that shapes the result.

        The run portion is :meth:`RunConfig.key` verbatim, so the runner's
        memory-cache identity is the single source of truth: a new
        ``RunConfig`` field added to ``key()`` automatically changes the
        disk key too, instead of silently missing from a second field
        enumeration here.
        """
        document = {
            "schema": SCHEMA_VERSION,
            "run": list(run_config.key()),
            "gpu": dataclasses.asdict(gpu_config),
            "max_events": max_events,
        }
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[SimResult]:
        """The stored result for ``key``, or None (miss / corrupt entry)."""
        result = self._load(key)
        METRICS.counter(
            "store.reads_total",
            outcome="hit" if result is not None else "miss",
        ).inc()
        return result

    def _load(self, key: str) -> Optional[SimResult]:
        path = self._path(key)
        started = time.perf_counter()
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # Torn or corrupt entry (e.g. a crashed writer on a filesystem
            # without atomic replace): drop it and re-simulate.
            self._discard(path)
            return None
        # Only successful reads are timed: a cold miss fails open() fast
        # and would drown the histogram in not-found noise.
        self._observe_io("load", started)
        if payload.get("schema") != SCHEMA_VERSION:
            self._discard(path)
            return None
        try:
            return SimResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            return None

    def save(self, key: str, result: SimResult) -> Path:
        """Atomically persist ``result`` under ``key``; returns the path."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"schema": SCHEMA_VERSION, "result": result.to_dict()}
        started = time.perf_counter()
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                # allow_nan=False enforces the strict-JSON contract: any
                # non-finite float must already be tagged by the stats
                # encoder (repro.sim.stats.encode_json_floats), never
                # smuggled through as an invalid NaN/Infinity literal.
                json.dump(payload, handle, allow_nan=False)
            os.replace(tmp_name, path)
        except BaseException:
            self._discard(Path(tmp_name))
            raise
        self._observe_io("save", started)
        return path

    @staticmethod
    def _observe_io(op: str, started: float) -> None:
        METRICS.histogram(
            "store.io_seconds", buckets=DEFAULT_IO_BUCKETS, op=op
        ).observe(max(time.perf_counter() - started, 0.0))

    def contains(self, key: str) -> bool:
        return self._path(key).is_file()

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _entries(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path

    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        for path in self._entries():
            entries += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return StoreStats(root=str(self.root), entries=entries, total_bytes=total)

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in self._entries():
            self._discard(path)
            removed += 1
        # Sweep now-empty fanout directories (best effort).
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    try:
                        child.rmdir()
                    except OSError:
                        pass
        return removed
