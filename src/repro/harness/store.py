"""Persistent, content-addressed result store over pluggable backends.

The in-process :class:`~repro.harness.runner.Runner` cache dies with the
interpreter, so every CLI invocation and CI job used to re-simulate runs
it had already done.  This module gives results a durable home:

* **Content-addressed keys.**  An entry's key is the SHA-256 of a
  canonical JSON document covering *everything that determines the
  result*: the cache schema version, every :class:`RunConfig` field
  (including ``trace_interval``), the full
  :class:`~repro.sim.config.GPUConfig` (nested dataclasses and all), and
  the event budget.  Change any input and the key changes; bump
  :data:`SCHEMA_VERSION` and every old entry becomes unreachable (stale
  entries are never *read wrong*, only orphaned).
* **Pluggable transport.**  :class:`ResultStore` owns the semantics —
  keying, schema validation, :class:`~repro.sim.engine.SimResult`
  serialization, and metrics — and delegates durability to a
  :class:`~repro.harness.backends.StoreBackend`: the historical
  directory of JSON files (``dir://``), a WAL-mode SQLite file shards
  can share (``sqlite://``), or a network KV shim (``kv://``).  Open one
  from a URL with :func:`open_store`.
* **Corruption tolerance.**  An unreadable or schema-mismatched entry is
  treated as a miss and deleted; the run is simply redone.  Backends
  surface infrastructure failure uniformly as ``OSError``, which the
  runner tolerates (a broken cache never takes a simulation down).

Every backend reports under the same metric names —
``store.reads_total`` (hit/miss) and ``store.io_seconds`` (load/save
timings) — labeled with ``backend=dir|sqlite|kv``, because observation
happens here, above the protocol, not inside any one implementation.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import time
import warnings
from pathlib import Path
from typing import Optional

from repro.harness.backends.base import (
    StoreBackend,
    StoreStats,
    describe,
    open_backend,
)
from repro.harness.backends.directory import DirectoryBackend
from repro.obs.metrics import DEFAULT_IO_BUCKETS, METRICS
from repro.sim.config import GPUConfig
from repro.sim.engine import SimResult

#: Bump whenever the serialized payload or the simulation semantics change
#: in a way that invalidates stored results.  The version participates in
#: the hashed key, so a bump orphans (rather than misreads) old entries.
#: v2: the run portion of the key document is RunConfig.key() verbatim.
#: v3: RunConfig grew the ``engine`` field (fast vs. reference results
#: must never collide, even though the fast core is certified identical).
#: v4: the scheme zoo (consolidate / aggregate:<g> / acs) changed launch
#: accounting (merged kernels, new SimStats counters), so pre-zoo stored
#: payloads must not be served to post-zoo readers.
SCHEMA_VERSION = 4

#: Environment variable overriding the default cache directory.
ENV_CACHE_DIR = "REPRO_CACHE_DIR"

#: Default on-disk location, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """Resolve the cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get(ENV_CACHE_DIR) or DEFAULT_CACHE_DIR)


def open_store(url=None) -> "ResultStore":
    """Open a :class:`ResultStore` from a store URL (or bare path).

    The one-stop constructor the CLI and API route through::

        open_store()                      default directory cache
        open_store("dir://.repro-cache")  directory of JSON files
        open_store("sqlite://cache.db")   shared WAL-mode SQLite file
        open_store("kv://127.0.0.1:7077") network KV shim client
        open_store("/some/path")          bare path == dir://

    """
    return ResultStore(backend=open_backend(url))


class ResultStore:
    """Content-addressed cache of :class:`SimResult` payloads.

    Construct with ``backend=`` (or via :func:`open_store`); the
    positional ``root`` path spelling still works but is deprecated —
    it wires up the directory backend exactly as before.
    """

    def __init__(
        self,
        root: Optional[os.PathLike] = None,
        *,
        backend: Optional[StoreBackend] = None,
    ):
        if backend is not None and root is not None:
            raise TypeError("pass either root or backend, not both")
        if backend is None:
            if root is not None:
                warnings.warn(
                    "ResultStore(root=...) is deprecated; use "
                    "repro.harness.store.open_store(url) or "
                    "ResultStore(backend=...) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
                backend = DirectoryBackend(root)
            else:
                backend = DirectoryBackend(default_cache_dir())
        self.backend = backend

    @property
    def root(self) -> Path:
        """The backend's location as a path (kept for compatibility).

        Meaningful for directory and SQLite backends; for ``kv://`` it
        is the ``host:port`` string wrapped in a Path.  Prefer
        :attr:`url` for display.
        """
        return Path(self.backend.location)

    @property
    def url(self) -> str:
        """Canonical ``scheme://location`` spelling of the backend."""
        return describe(self.backend)

    # ------------------------------------------------------------------
    # Keying
    # ------------------------------------------------------------------
    @staticmethod
    def key_for(run_config, gpu_config: GPUConfig, max_events: int) -> str:
        """SHA-256 hex key covering every input that shapes the result.

        The run portion is :meth:`RunConfig.key` verbatim, so the runner's
        memory-cache identity is the single source of truth: a new
        ``RunConfig`` field added to ``key()`` automatically changes the
        disk key too, instead of silently missing from a second field
        enumeration here.
        """
        document = {
            "schema": SCHEMA_VERSION,
            "run": list(run_config.key()),
            "gpu": dataclasses.asdict(gpu_config),
            "max_events": max_events,
        }
        canonical = json.dumps(document, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def _path(self, key: str) -> Path:
        """Directory-backend entry path (compatibility helper)."""
        return self.backend.path_for(key)  # type: ignore[attr-defined]

    # ------------------------------------------------------------------
    # Load / save
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[SimResult]:
        """The stored result for ``key``, or None (miss / corrupt entry)."""
        result = self._load(key)
        METRICS.counter(
            "store.reads_total",
            backend=self.backend.name,
            outcome="hit" if result is not None else "miss",
        ).inc()
        return result

    def _load(self, key: str) -> Optional[SimResult]:
        started = time.perf_counter()
        payload = self.backend.load(key)
        if payload is None:
            return None
        # Only successful reads are timed: a cold miss fails fast and
        # would drown the histogram in not-found noise.
        self._observe_io("load", started)
        if payload.get("schema") != SCHEMA_VERSION:
            self.backend.delete(key)
            return None
        try:
            return SimResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            self.backend.delete(key)
            return None

    def save(self, key: str, result: SimResult) -> Optional[Path]:
        """Durably persist ``result`` under ``key`` (atomic, last wins).

        Returns the entry's on-disk path when the backend is file-per-key
        (the historical return value); backends without per-entry paths
        return None.
        """
        payload = {"schema": SCHEMA_VERSION, "result": result.to_dict()}
        started = time.perf_counter()
        self.backend.save(key, payload)
        self._observe_io("save", started)
        path_for = getattr(self.backend, "path_for", None)
        return path_for(key) if path_for is not None else None

    def _observe_io(self, op: str, started: float) -> None:
        METRICS.histogram(
            "store.io_seconds",
            buckets=DEFAULT_IO_BUCKETS,
            backend=self.backend.name,
            op=op,
        ).observe(max(time.perf_counter() - started, 0.0))

    def contains(self, key: str) -> bool:
        return self.backend.contains(key)

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def stats(self) -> StoreStats:
        return self.backend.stats()

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        return self.backend.clear()

    def close(self) -> None:
        self.backend.close()


__all__ = [
    "SCHEMA_VERSION",
    "ENV_CACHE_DIR",
    "DEFAULT_CACHE_DIR",
    "default_cache_dir",
    "open_store",
    "ResultStore",
    "StoreBackend",
    "StoreStats",
]
