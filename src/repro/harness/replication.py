"""Seed replication: run schemes across input seeds and aggregate.

The paper reports single-input results; a reproduction should show its
conclusions are not one-seed artifacts.  ``replicate`` re-generates each
benchmark's synthetic input under several seeds, re-runs the requested
schemes, and reports per-scheme speedup statistics over the flat variant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.harness.runner import RunConfig, Runner


@dataclass(frozen=True)
class SchemeStats:
    """Speedup-over-flat statistics for one scheme across seeds."""

    scheme: str
    speedups: Tuple[float, ...]

    @property
    def mean(self) -> float:
        return sum(self.speedups) / len(self.speedups)

    @property
    def std(self) -> float:
        if len(self.speedups) < 2:
            return 0.0
        mu = self.mean
        return math.sqrt(
            sum((s - mu) ** 2 for s in self.speedups) / (len(self.speedups) - 1)
        )

    @property
    def min(self) -> float:
        return min(self.speedups)

    @property
    def max(self) -> float:
        return max(self.speedups)

    def always_above(self, bound: float) -> bool:
        """True if every seed's speedup exceeds ``bound``."""
        return all(s > bound for s in self.speedups)


@dataclass(frozen=True)
class ReplicationResult:
    benchmark: str
    seeds: Tuple[int, ...]
    stats: Dict[str, SchemeStats]

    def scheme(self, name: str) -> SchemeStats:
        try:
            return self.stats[name]
        except KeyError:
            raise HarnessError(
                f"scheme {name!r} was not part of this replication"
            ) from None

    def consistently_ordered(self, faster: str, slower: str) -> bool:
        """True if ``faster`` beats ``slower`` on every seed."""
        fast = self.scheme(faster).speedups
        slow = self.scheme(slower).speedups
        return all(f > s for f, s in zip(fast, slow))


def replication_plan(
    benchmark: str,
    *,
    schemes: Sequence[str] = ("baseline-dp", "spawn"),
    seeds: Sequence[int] = (1, 2, 3),
) -> List[RunConfig]:
    """The run-set :func:`replicate` needs (flat + schemes, per seed).

    Feed this to the parallel harness to warm the cache; seeds are
    independent simulations, so replication fans out near-perfectly.
    """
    plan: List[RunConfig] = []
    for seed in seeds:
        plan.append(RunConfig(benchmark=benchmark, scheme="flat", seed=seed))
        plan.extend(
            RunConfig(benchmark=benchmark, scheme=scheme, seed=seed)
            for scheme in schemes
        )
    return plan


def replicate(
    benchmark: str,
    *,
    schemes: Sequence[str] = ("baseline-dp", "spawn"),
    seeds: Sequence[int] = (1, 2, 3),
    runner: Optional[Runner] = None,
    jobs: int = 1,
    policy=None,
) -> ReplicationResult:
    """Run ``schemes`` on ``benchmark`` across ``seeds``; aggregate speedups.

    ``jobs > 1`` pre-runs the whole seed/scheme grid across worker
    processes; the aggregation below then reads pure cache hits.
    ``policy`` is an optional
    :class:`~repro.harness.parallel.ExecutionPolicy` for the fan-out.
    """
    if not seeds:
        raise HarnessError("replication needs at least one seed")
    if not schemes:
        raise HarnessError("replication needs at least one scheme")
    runner = runner or Runner()
    if jobs > 1:
        from repro.harness.parallel import ParallelRunner

        ParallelRunner(runner, policy=policy).run_many(
            replication_plan(benchmark, schemes=schemes, seeds=seeds), jobs=jobs
        )
    stats: Dict[str, SchemeStats] = {}
    for scheme in schemes:
        speedups = []
        for seed in seeds:
            flat = runner.run(RunConfig(benchmark=benchmark, scheme="flat", seed=seed))
            result = runner.run(RunConfig(benchmark=benchmark, scheme=scheme, seed=seed))
            speedups.append(flat.makespan / result.makespan)
        stats[scheme] = SchemeStats(scheme=scheme, speedups=tuple(speedups))
    return ReplicationResult(
        benchmark=benchmark, seeds=tuple(seeds), stats=stats
    )
