"""Single-file SQLite backend (``sqlite://``) in WAL mode.

The shard-fleet store: WAL journaling lets many processes read while one
writes (readers never block writers and vice versa), so N shard services
can share one cache file and still dedup each other's work.  One table::

    entries(key TEXT PRIMARY KEY, payload TEXT NOT NULL)

Payloads are canonical JSON text; a row whose text no longer parses is
orphaned on read, mirroring the directory backend's corruption handling.

Connections are per-thread (``sqlite3`` connections must not hop
threads; the service dispatches store IO from executor threads), created
lazily and tracked so :meth:`close` can release them all.  Every
``sqlite3.Error`` is translated to ``OSError`` so the runner's store-IO
fault tolerance — and the chaos suite's expectations — apply unchanged.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from pathlib import Path
from typing import Optional

from repro.harness.backends.base import SQLITE_SCHEME, StoreStats

#: How long a writer waits on a locked database before failing (seconds).
#: WAL makes contention rare; the timeout covers checkpoint collisions.
BUSY_TIMEOUT_S = 10.0

_SCHEMA = """
CREATE TABLE IF NOT EXISTS entries (
    key TEXT PRIMARY KEY,
    payload TEXT NOT NULL
)
"""


class SQLiteBackend:
    """Opaque-key JSON storage in one WAL-mode SQLite file."""

    name = SQLITE_SCHEME

    def __init__(self, path: os.PathLike):
        self.path = Path(path)
        self._local = threading.local()
        self._connections = []
        self._connections_lock = threading.Lock()
        self._closed = False
        # Create the file and schema eagerly: misconfiguration (an
        # unwritable path) should fail at the door, not mid-suite.
        self._connection()

    @property
    def location(self) -> str:
        return str(self.path)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connection(self) -> sqlite3.Connection:
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn
        if self._closed:
            raise OSError(f"sqlite store {self.path} is closed")
        try:
            if self.path.parent != Path(""):
                self.path.parent.mkdir(parents=True, exist_ok=True)
            conn = sqlite3.connect(
                str(self.path), timeout=BUSY_TIMEOUT_S, isolation_level=None
            )
            # WAL survives in the file itself; setting it on every
            # connection is idempotent.  synchronous=NORMAL is the
            # documented WAL pairing: durable at checkpoint, fast per
            # commit — this is a cache, re-simulation is the recovery.
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute(_SCHEMA)
        except sqlite3.Error as exc:
            raise OSError(f"cannot open sqlite store {self.path}: {exc}") from exc
        self._local.conn = conn
        with self._connections_lock:
            self._connections.append(conn)
        return conn

    def close(self) -> None:
        self._closed = True
        with self._connections_lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except sqlite3.Error:
                pass
        self._local = threading.local()

    # ------------------------------------------------------------------
    # Mapping operations
    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[dict]:
        try:
            row = self._connection().execute(
                "SELECT payload FROM entries WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error as exc:
            raise OSError(f"sqlite load failed: {exc}") from exc
        if row is None:
            return None
        try:
            payload = json.loads(row[0])
        except (TypeError, json.JSONDecodeError):
            self.delete(key)
            return None
        if not isinstance(payload, dict):
            self.delete(key)
            return None
        return payload

    def save(self, key: str, payload: dict) -> None:
        # Serialize (and enforce strict JSON) before opening a write
        # transaction: a ValueError must leave the database untouched.
        text = json.dumps(payload, allow_nan=False)
        try:
            self._connection().execute(
                "INSERT INTO entries(key, payload) VALUES(?, ?) "
                "ON CONFLICT(key) DO UPDATE SET payload = excluded.payload",
                (key, text),
            )
        except sqlite3.Error as exc:
            raise OSError(f"sqlite save failed: {exc}") from exc

    def contains(self, key: str) -> bool:
        try:
            row = self._connection().execute(
                "SELECT 1 FROM entries WHERE key = ?", (key,)
            ).fetchone()
        except sqlite3.Error as exc:
            raise OSError(f"sqlite contains failed: {exc}") from exc
        return row is not None

    def delete(self, key: str) -> None:
        try:
            self._connection().execute(
                "DELETE FROM entries WHERE key = ?", (key,)
            )
        except sqlite3.Error:
            # Deletion is best-effort orphaning, like the directory
            # backend's unlink: a locked database just leaves the entry
            # for the next reader to retry.
            pass

    def stats(self) -> StoreStats:
        try:
            row = self._connection().execute(
                "SELECT COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
                "FROM entries"
            ).fetchone()
        except sqlite3.Error as exc:
            raise OSError(f"sqlite stats failed: {exc}") from exc
        return StoreStats(
            root=str(self.path), entries=row[0], total_bytes=row[1]
        )

    def clear(self) -> int:
        try:
            cursor = self._connection().execute("DELETE FROM entries")
        except sqlite3.Error as exc:
            raise OSError(f"sqlite clear failed: {exc}") from exc
        return cursor.rowcount
