"""Directory-of-JSON-files backend (``dir://``) — the historical layout.

Layout: ``<root>/<first two key hex chars>/<key>.json`` — two-level
fanout keeps directory listings short even for thousands of entries.
Writes go to a temp file in the same directory and are ``os.replace``-d
into place, so concurrent workers (the parallel harness) and overlapping
CI jobs never observe torn JSON.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Optional

from repro.harness.backends.base import DIR_SCHEME, StoreStats


class DirectoryBackend:
    """Content-addressed JSON files under a root directory."""

    name = DIR_SCHEME

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    @property
    def location(self) -> str:
        return str(self.root)

    def path_for(self, key: str) -> Path:
        """Where ``key``'s entry lives (exists or not)."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[dict]:
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            # Torn or corrupt entry (e.g. a crashed writer on a
            # filesystem without atomic replace): orphan it.
            self.delete(key)
            return None
        if not isinstance(payload, dict):
            self.delete(key)
            return None
        return payload

    def save(self, key: str, payload: dict) -> None:
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        # allow_nan=False enforces the strict-JSON contract (see the
        # backend protocol docs): serialize before touching the disk so
        # a rejected payload leaves nothing behind.
        text = json.dumps(payload, allow_nan=False)
        fd, tmp_name = tempfile.mkstemp(
            prefix=f".{key[:8]}.", suffix=".tmp", dir=path.parent
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text)
            os.replace(tmp_name, path)
        except BaseException:
            self._unlink(Path(tmp_name))
            raise

    def contains(self, key: str) -> bool:
        return self.path_for(key).is_file()

    def delete(self, key: str) -> None:
        self._unlink(self.path_for(key))

    @staticmethod
    def _unlink(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def _entries(self):
        if not self.root.is_dir():
            return
        for path in sorted(self.root.glob("*/*.json")):
            yield path

    def stats(self) -> StoreStats:
        entries = 0
        total = 0
        for path in self._entries():
            entries += 1
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return StoreStats(
            root=str(self.root), entries=entries, total_bytes=total
        )

    def clear(self) -> int:
        removed = 0
        for path in self._entries():
            self._unlink(path)
            removed += 1
        # Sweep now-empty fanout directories (best effort).
        if self.root.is_dir():
            for child in self.root.iterdir():
                if child.is_dir():
                    try:
                        child.rmdir()
                    except OSError:
                        pass
        return removed

    def close(self) -> None:
        """Nothing to release — files are opened per operation."""
