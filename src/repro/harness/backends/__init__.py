"""Pluggable storage backends for the content-addressed result cache.

The :class:`~repro.harness.store.ResultStore` façade owns *semantics* —
keying, schema versioning, :class:`~repro.sim.engine.SimResult`
serialization, metrics — while a :class:`StoreBackend` owns *transport*:
how an opaque key maps to a durable JSON payload.  Three implementations
ship:

* :class:`~repro.harness.backends.directory.DirectoryBackend` — the
  historical two-level-fanout directory of JSON files (``dir://path``).
* :class:`~repro.harness.backends.sqlite.SQLiteBackend` — a single
  SQLite file in WAL mode, safe for concurrent readers/writers across
  processes (``sqlite://path``) — the natural fit for a shard fleet
  sharing one cache.
* :class:`~repro.harness.backends.kv.KVBackend` — a client for the
  in-process network KV shim (``kv://host:port``), whose server side
  (:class:`~repro.harness.backends.kv.KVStoreServer`) fronts any other
  backend over a newline-delimited JSON protocol.

:func:`open_backend` parses store URLs into backend instances; the
higher-level :func:`repro.harness.store.open_store` wraps the result in
a :class:`~repro.harness.store.ResultStore`.
"""

from repro.harness.backends.base import StoreBackend, StoreStats, open_backend
from repro.harness.backends.directory import DirectoryBackend
from repro.harness.backends.kv import KVBackend, KVStoreServer
from repro.harness.backends.sqlite import SQLiteBackend

__all__ = [
    "StoreBackend",
    "StoreStats",
    "open_backend",
    "DirectoryBackend",
    "SQLiteBackend",
    "KVBackend",
    "KVStoreServer",
]
