"""The storage-backend protocol and the ``open_backend`` URL factory.

A backend is a durable mapping from opaque string keys to JSON-object
payloads.  It knows nothing about simulation results, cache schemas, or
metrics — those live one level up, in
:class:`~repro.harness.store.ResultStore` — which is exactly what lets
one store façade run against a directory tree, a SQLite file, or a
remote KV endpoint interchangeably.

Contract every implementation must honour (pinned by the parametrized
suite in ``tests/test_backends.py``):

* ``load`` returns the saved payload dict or ``None``; an unreadable or
  corrupt entry is **orphaned** (deleted, best effort) and reported as a
  miss, never surfaced as garbage.
* ``save`` is atomic with respect to concurrent readers (no torn
  payloads) and last-writer-wins for concurrent writers of the same key.
* ``save`` rejects non-finite floats (``ValueError``) — the strict-JSON
  contract: NaN/Infinity must be tagged by the stats encoder upstream,
  never smuggled into storage as invalid JSON literals.
* Infrastructure failures surface as ``OSError`` (SQLite and socket
  errors are translated), so the runner's store-IO fault tolerance
  applies uniformly to every backend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Protocol, runtime_checkable

#: URL scheme names recognized by :func:`open_backend`.
DIR_SCHEME = "dir"
SQLITE_SCHEME = "sqlite"
KV_SCHEME = "kv"


@dataclass(frozen=True)
class StoreStats:
    """Snapshot of a backend's contents, for ``repro cache stats``.

    ``root`` is the backend's location string (directory path, database
    file, or ``host:port``) — the name predates the backend split and is
    kept for compatibility with existing callers and JSON consumers.
    """

    root: str
    entries: int
    total_bytes: int


@runtime_checkable
class StoreBackend(Protocol):
    """Durable opaque-key -> JSON-payload mapping (see module docstring).

    ``name`` is the short backend identifier used as the ``backend=``
    metric label (``dir`` / ``sqlite`` / ``kv``); ``location`` is the
    human-readable address the backend talks to.
    """

    name: str
    location: str

    def load(self, key: str) -> Optional[dict]:
        """The payload stored under ``key``, or None (miss / corrupt)."""
        ...

    def save(self, key: str, payload: dict) -> None:
        """Durably store ``payload`` under ``key`` (atomic, last wins)."""
        ...

    def contains(self, key: str) -> bool:
        """Whether an entry exists under ``key`` (no payload validation)."""
        ...

    def delete(self, key: str) -> None:
        """Remove the entry under ``key`` if present (idempotent)."""
        ...

    def stats(self) -> StoreStats:
        """Entry count and payload byte total."""
        ...

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        ...

    def close(self) -> None:
        """Release connections/handles (idempotent; optional to call)."""
        ...


def describe(backend: StoreBackend) -> str:
    """``scheme://location`` — the canonical URL spelling of a backend."""
    return f"{backend.name}://{backend.location}"


def open_backend(url) -> StoreBackend:
    """Build a backend from a store URL (or a bare directory path).

    Recognized forms::

        dir://path/to/cache      directory of JSON files
        sqlite://path/to/file.db single SQLite database (WAL)
        kv://host:port           network KV shim client
        path/to/cache            bare path == dir:// (compatibility)

    ``None`` resolves to the default directory cache
    (``$REPRO_CACHE_DIR`` or ``.repro-cache``).
    """
    # Imported here (not at module top) to keep base free of circular
    # imports — directory.py imports StoreStats from this module.
    from repro.harness.backends.directory import DirectoryBackend
    from repro.harness.backends.kv import KVBackend
    from repro.harness.backends.sqlite import SQLiteBackend

    if url is None:
        from repro.harness.store import default_cache_dir

        return DirectoryBackend(default_cache_dir())
    text = str(url)
    scheme, sep, rest = text.partition("://")
    if not sep:
        return DirectoryBackend(text)
    if scheme == DIR_SCHEME:
        return DirectoryBackend(rest)
    if scheme == SQLITE_SCHEME:
        return SQLiteBackend(rest)
    if scheme == KV_SCHEME:
        host, _, port = rest.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"kv:// URL must be kv://host:port, got {text!r}"
            )
        return KVBackend(host, int(port))
    raise ValueError(
        f"unknown store URL scheme {scheme!r} in {text!r} "
        f"(choose from {DIR_SCHEME}, {SQLITE_SCHEME}, {KV_SCHEME})"
    )


def sum_stats(parts: Iterable[StoreStats], *, root: str) -> StoreStats:
    """Aggregate per-shard/per-backend snapshots into one."""
    entries = 0
    total = 0
    for part in parts:
        entries += part.entries
        total += part.total_bytes
    return StoreStats(root=root, entries=entries, total_bytes=total)
