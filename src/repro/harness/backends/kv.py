"""In-process network KV shim (``kv://host:port``): server + client.

The fleet-sharing transport: one :class:`KVStoreServer` fronts an
*authoritative* backend (directory or SQLite) and any number of
:class:`KVBackend` clients — one per shard, or per process — talk to it
over a newline-delimited JSON protocol::

    -> {"op": "save", "key": "ab12...", "payload": {...}}
    <- {"ok": true, "value": null}
    -> {"op": "load", "key": "ab12..."}
    <- {"ok": true, "value": {...}}  (or null on a miss)

One request per line, one response per line, UTF-8.  Connections may be
reused for many requests; the shipped client opens one per operation,
which keeps it trivially thread-safe (shard services issue store IO from
executor threads).

Failure translation keeps the backend contract uniform: server-side
errors come back as ``{"ok": false, "error": ...}`` and are re-raised
client-side as ``OSError``; so are socket/connection failures — the
runner's store fault tolerance treats an unreachable KV server exactly
like a failing disk.  NaN rejection (``ValueError``) happens client-side
at serialization time, before any bytes hit the wire.
"""

from __future__ import annotations

import json
import socket
import socketserver
import threading
from typing import Optional, Tuple

from repro.harness.backends.base import KV_SCHEME, StoreBackend, StoreStats

#: Client-side socket timeout (seconds).  Generous: payloads are small,
#: but a CI runner under load can stall accept loops.
CLIENT_TIMEOUT_S = 30.0

#: Cap on one protocol line (16 MiB) — a corrupted stream must not make
#: either side buffer without bound.
MAX_LINE_BYTES = 16 * 1024 * 1024

#: Operations the server accepts.
OPS = ("ping", "load", "save", "contains", "delete", "stats", "clear")


def _send_line(wfile, payload: dict) -> None:
    wfile.write(json.dumps(payload, allow_nan=False).encode("utf-8") + b"\n")
    wfile.flush()


class _Handler(socketserver.StreamRequestHandler):
    """One client connection: a loop of request/response lines."""

    def handle(self) -> None:
        while True:
            try:
                line = self.rfile.readline(MAX_LINE_BYTES)
            except OSError:
                return
            if not line:
                return  # client closed
            try:
                response = self._respond(line)
            except OSError:
                return  # client went away mid-response
            try:
                _send_line(self.wfile, response)
            except OSError:
                return

    def _respond(self, line: bytes) -> dict:
        backend = self.server.backend  # type: ignore[attr-defined]
        try:
            request = json.loads(line)
            op = request.get("op")
            if op not in OPS:
                raise ValueError(f"unknown op {op!r}")
            if op == "ping":
                value = "pong"
            elif op == "load":
                value = backend.load(request["key"])
            elif op == "save":
                backend.save(request["key"], request["payload"])
                value = None
            elif op == "contains":
                value = backend.contains(request["key"])
            elif op == "delete":
                backend.delete(request["key"])
                value = None
            elif op == "stats":
                snapshot = backend.stats()
                value = {
                    "root": snapshot.root,
                    "entries": snapshot.entries,
                    "total_bytes": snapshot.total_bytes,
                }
            else:  # clear
                value = backend.clear()
        except Exception as exc:  # noqa: BLE001 — wire back, don't die
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}
        return {"ok": True, "value": value}


class _Server(socketserver.ThreadingTCPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, backend: StoreBackend):
        super().__init__(address, _Handler)
        self.backend = backend


class KVStoreServer:
    """Serve an authoritative backend to KV clients on a TCP port.

    Use as a context manager (or call :meth:`start`/:meth:`close`)::

        with KVStoreServer(DirectoryBackend(root)) as server:
            store = open_store(server.url)

    ``port=0`` (the default) lets the OS pick a free port — read it back
    from :attr:`address` / :attr:`url` after :meth:`start`.
    """

    def __init__(
        self,
        backend: StoreBackend,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.backend = backend
        self._server = _Server((host, port), backend)
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return host, port

    @property
    def url(self) -> str:
        host, port = self.address
        return f"{KV_SCHEME}://{host}:{port}"

    def start(self) -> "KVStoreServer":
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-kv-server",
                daemon=True,
            )
            self._thread.start()
        return self

    def close(self) -> None:
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join(timeout=5.0)
            self._thread = None
        self._server.server_close()

    def __enter__(self) -> "KVStoreServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class KVBackend:
    """Client half of the KV shim: a backend that talks to a server."""

    name = KV_SCHEME

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = port

    @property
    def location(self) -> str:
        return f"{self.host}:{self.port}"

    def _call(self, op: str, **fields):
        request = {"op": op, **fields}
        # Serialize before connecting so a NaN payload raises ValueError
        # (the strict-JSON contract) without a wasted round trip.
        wire = json.dumps(request, allow_nan=False).encode("utf-8") + b"\n"
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=CLIENT_TIMEOUT_S
            ) as sock:
                with sock.makefile("rwb") as stream:
                    stream.write(wire)
                    stream.flush()
                    line = stream.readline(MAX_LINE_BYTES)
        except OSError as exc:
            raise OSError(
                f"kv store {self.location} unreachable: {exc}"
            ) from exc
        if not line:
            raise OSError(f"kv store {self.location}: connection closed")
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise OSError(
                f"kv store {self.location}: invalid response: {exc}"
            ) from exc
        if not response.get("ok"):
            raise OSError(
                f"kv store {self.location}: {op} failed: "
                f"{response.get('error', 'unknown error')}"
            )
        return response.get("value")

    def ping(self) -> bool:
        return self._call("ping") == "pong"

    def load(self, key: str) -> Optional[dict]:
        value = self._call("load", key=key)
        if value is not None and not isinstance(value, dict):
            raise OSError(
                f"kv store {self.location}: malformed load payload"
            )
        return value

    def save(self, key: str, payload: dict) -> None:
        self._call("save", key=key, payload=payload)

    def contains(self, key: str) -> bool:
        return bool(self._call("contains", key=key))

    def delete(self, key: str) -> None:
        self._call("delete", key=key)

    def stats(self) -> StoreStats:
        value = self._call("stats")
        return StoreStats(
            root=value["root"],
            entries=int(value["entries"]),
            total_bytes=int(value["total_bytes"]),
        )

    def clear(self) -> int:
        return int(self._call("clear"))

    def close(self) -> None:
        """Nothing held open — connections are per operation."""
