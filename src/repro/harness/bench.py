"""Engine wall-clock benchmark (``repro bench``).

Times a fixed run-set — the slowest benchmark/scheme pairs in the suite,
where event-loop overhead dominates — and compares against reference
timings recorded on the pre-optimization engine (same host class, warm
workload generation, best-of-3).  Two things are checked:

* **Speed**: per-pair speedup vs. the reference engine.  The optimization
  work targets >= 1.3x on the slowest pairs.
* **Fidelity**: the makespan of every pair must equal the reference
  makespan *bit-for-bit* — the engine optimizations are required to be
  pure reorderings of arithmetic-identical work, never approximations.

Results are written as ``BENCH_<YYYYMMDD>.json`` so CI can archive a
timing history alongside the repo.

Methodology notes: each timed run constructs a fresh memory-only
:class:`Runner` (no cache can hit), and every benchmark's synthetic input
is generated *before* timing starts — input generation is ``lru_cache``-d
per process and would otherwise be billed to whichever pair runs first.
"""

from __future__ import annotations

import datetime
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import RunConfig, Runner
from repro.workloads.base import get_benchmark

#: The timed pairs: the suite's slowest simulations plus one fast control,
#: and the scheme-zoo pairs (merge-buffer flushing and ACS binding put
#: different pressure on the event loop than plain DP launches).
BENCH_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("SA-thaliana", "spawn"),
    ("SA-thaliana", "baseline-dp"),
    ("GC-graph500", "baseline-dp"),
    ("JOIN-uniform", "spawn"),
    ("BFS-graph500", "spawn"),
    ("SSSP-citation", "consolidate"),
    ("SSSP-citation", "aggregate:block"),
    ("SSSP-citation", "acs"),
)

#: Pre-optimization engine timings (seconds, best of 3, warm inputs) and
#: the makespans those runs produced.  Seconds are a point of reference,
#: not a contract — they shift with the host.  Makespans ARE a contract.
REFERENCE: Dict[str, Dict[str, float]] = {
    "SA-thaliana/spawn": {"seconds": 2.6117, "makespan": 160831.29795496378},
    "SA-thaliana/baseline-dp": {"seconds": 2.7059, "makespan": 212893.52118260306},
    "GC-graph500/baseline-dp": {"seconds": 1.7078, "makespan": 1430960.9621359222},
    "JOIN-uniform/spawn": {"seconds": 1.7569, "makespan": 208378.7464706742},
    "BFS-graph500/spawn": {"seconds": 0.177, "makespan": 196628.69311875236},
    # Scheme-zoo pairs, recorded on the default engine at introduction
    # (PR 9); the makespans double as the cross-engine fidelity contract.
    "SSSP-citation/consolidate": {
        "seconds": 0.5538, "makespan": 209957.2411666201,
    },
    "SSSP-citation/aggregate:block": {
        "seconds": 0.4943, "makespan": 213973.54846833518,
    },
    "SSSP-citation/acs": {"seconds": 0.5155, "makespan": 493845.2103887623},
}


def _warm_inputs(pairs: Sequence[Tuple[str, str]], seed: int) -> None:
    """Generate every pair's synthetic input before any clock starts."""
    for name, _scheme in pairs:
        benchmark = get_benchmark(name)
        benchmark.flat(seed)
        benchmark.dp(seed)


def _timed_run(name: str, scheme: str, seed: int, engine: str, store=None):
    """One cold run; returns (wall seconds, makespan).

    ``store`` (a :class:`~repro.harness.store.ResultStore`) persists the
    result *after* the clock stops: timing stays cold — a cache hit
    would measure nothing — but benched simulations are full-fidelity
    runs other commands can reuse, so write-through warming is free.
    """
    runner = Runner()  # fresh: no memory cache, no disk store
    config = RunConfig(benchmark=name, scheme=scheme, seed=seed, engine=engine)
    start = time.perf_counter()
    result = runner.run(config)
    elapsed = time.perf_counter() - start
    if store is not None:
        try:
            store.save(
                store.key_for(config, runner.config, runner.max_events),
                result,
            )
        except OSError:
            pass  # the store is an optimization, never a bench failure
    return elapsed, result.makespan


def run_bench(
    *,
    pairs: Sequence[Tuple[str, str]] = BENCH_PAIRS,
    repeat: int = 3,
    seed: int = 1,
    engine: str = "default",
    store=None,
) -> Dict:
    """Time the fixed run-set; returns the (JSON-ready) report dict.

    ``engine`` selects the simulation core for every timed run.  The
    recorded :data:`REFERENCE` seconds were measured on the
    pre-optimization default engine, so the ``speedup`` column reads as
    "vs. the PR-2 baseline" whichever engine runs — and the makespan
    contract is engine-independent, because the fast core is certified
    bit-identical.
    """
    _warm_inputs(pairs, seed)
    rows: List[Dict] = []
    for name, scheme in pairs:
        pair = f"{name}/{scheme}"
        best = float("inf")
        makespan = None
        for _ in range(max(repeat, 1)):
            elapsed, makespan = _timed_run(name, scheme, seed, engine, store)
            if elapsed < best:
                best = elapsed
        row = {
            "pair": pair,
            "seconds": round(best, 4),
            "makespan": makespan,
        }
        reference = REFERENCE.get(pair)
        if reference is not None:
            row["reference_seconds"] = reference["seconds"]
            row["speedup"] = round(reference["seconds"] / best, 3)
            row["makespan_identical"] = makespan == reference["makespan"]
        rows.append(row)
    return {
        "repeat": max(repeat, 1),
        "seed": seed,
        "engine": engine,
        "pairs": rows,
    }


def compare_engines(
    *,
    pairs: Sequence[Tuple[str, str]] = BENCH_PAIRS,
    engines: Sequence[str] = ("default", "fast"),
    repeat: int = 3,
    seed: int = 1,
    store=None,
) -> Dict:
    """Time every pair under every engine and build the speedup matrix.

    Unlike :func:`run_bench`'s comparison against *recorded* reference
    seconds, both sides here run on the same host in the same process,
    interleaved repetition by repetition — host speed and thermal drift
    cancel, so the per-pair ``speedup`` (first engine's best over this
    engine's best) is a clean like-for-like ratio.  Every non-baseline
    engine's makespan is also checked bit-for-bit against the baseline
    engine's: the certified-identical contract, enforced at bench time.
    """
    if len(engines) < 2:
        raise ValueError(f"need at least two engines to compare, got {engines}")
    _warm_inputs(pairs, seed)
    best: Dict[Tuple[str, str, str], float] = {}
    makespans: Dict[Tuple[str, str, str], float] = {}
    for _ in range(max(repeat, 1)):
        for name, scheme in pairs:
            for engine in engines:
                elapsed, makespan = _timed_run(name, scheme, seed, engine, store)
                key = (name, scheme, engine)
                if elapsed < best.get(key, float("inf")):
                    best[key] = elapsed
                makespans[key] = makespan
    baseline = engines[0]
    rows: List[Dict] = []
    for name, scheme in pairs:
        pair = f"{name}/{scheme}"
        base_seconds = best[(name, scheme, baseline)]
        base_makespan = makespans[(name, scheme, baseline)]
        row: Dict = {"pair": pair, "engines": {}}
        for engine in engines:
            entry: Dict = {
                "seconds": round(best[(name, scheme, engine)], 4),
                "makespan": makespans[(name, scheme, engine)],
            }
            if engine != baseline:
                entry["speedup"] = round(
                    base_seconds / best[(name, scheme, engine)], 3
                )
                entry["makespan_identical"] = (
                    makespans[(name, scheme, engine)] == base_makespan
                )
            row["engines"][engine] = entry
        reference = REFERENCE.get(pair)
        if reference is not None:
            row["reference_makespan_identical"] = (
                base_makespan == reference["makespan"]
            )
        rows.append(row)
    totals = {
        engine: sum(best[(name, scheme, engine)] for name, scheme in pairs)
        for engine in engines
    }
    return {
        "mode": "compare-engines",
        "repeat": max(repeat, 1),
        "seed": seed,
        "engines": list(engines),
        "baseline_engine": baseline,
        "aggregate_seconds": {
            engine: round(seconds, 4) for engine, seconds in totals.items()
        },
        "aggregate_speedup": {
            engine: round(totals[baseline] / totals[engine], 3)
            for engine in engines
            if engine != baseline
        },
        "pairs": rows,
    }


#: Default regression gate for ``repro bench``: fail when a pair runs
#: slower than a quarter of its reference speed.  Deliberately loose —
#: reference seconds were recorded on one host class and CI machines
#: vary — but tight enough to catch an accidental O(n^2) in the engine.
DEFAULT_MIN_SPEEDUP: float = 0.25


def regressions(report: Dict, min_speedup: float) -> List[Dict]:
    """Pairs in ``report`` whose speedup fell below ``min_speedup``.

    Pairs without a recorded reference (no ``speedup`` key) never count
    as regressed — there is nothing to regress against.
    """
    return [
        row
        for row in report.get("pairs", [])
        if row.get("speedup") is not None and row["speedup"] < min_speedup
    ]


def compare_regressions(report: Dict, min_speedup: float) -> List[Dict]:
    """Engine entries in a :func:`compare_engines` report below the gate.

    Returns flat rows (``pair``, ``engine``, ``speedup``) for every
    non-baseline engine whose same-host speedup fell below
    ``min_speedup``.  Same-host ratios carry none of the cross-host
    slack :data:`DEFAULT_MIN_SPEEDUP` allows, so gates near (or above)
    1.0 are meaningful here.
    """
    rows = []
    for row in report.get("pairs", []):
        for engine, entry in row.get("engines", {}).items():
            speedup = entry.get("speedup")
            if speedup is not None and speedup < min_speedup:
                rows.append(
                    {"pair": row["pair"], "engine": engine, "speedup": speedup}
                )
    return rows


def default_output_path(today: Optional[datetime.date] = None) -> Path:
    date = today if today is not None else datetime.date.today()
    return Path(f"BENCH_{date.strftime('%Y%m%d')}.json")


def write_report(report: Dict, path: Optional[Path] = None) -> Path:
    """Write the bench report JSON; returns the path written."""
    path = Path(path) if path is not None else default_output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
