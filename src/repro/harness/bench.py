"""Engine wall-clock benchmark (``repro bench``).

Times a fixed run-set — the slowest benchmark/scheme pairs in the suite,
where event-loop overhead dominates — and compares against reference
timings recorded on the pre-optimization engine (same host class, warm
workload generation, best-of-3).  Two things are checked:

* **Speed**: per-pair speedup vs. the reference engine.  The optimization
  work targets >= 1.3x on the slowest pairs.
* **Fidelity**: the makespan of every pair must equal the reference
  makespan *bit-for-bit* — the engine optimizations are required to be
  pure reorderings of arithmetic-identical work, never approximations.

Results are written as ``BENCH_<YYYYMMDD>.json`` so CI can archive a
timing history alongside the repo.

Methodology notes: each timed run constructs a fresh memory-only
:class:`Runner` (no cache can hit), and every benchmark's synthetic input
is generated *before* timing starts — input generation is ``lru_cache``-d
per process and would otherwise be billed to whichever pair runs first.
"""

from __future__ import annotations

import datetime
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.harness.runner import RunConfig, Runner
from repro.workloads.base import get_benchmark

#: The timed pairs: the suite's slowest simulations plus one fast control.
BENCH_PAIRS: Tuple[Tuple[str, str], ...] = (
    ("SA-thaliana", "spawn"),
    ("SA-thaliana", "baseline-dp"),
    ("GC-graph500", "baseline-dp"),
    ("JOIN-uniform", "spawn"),
    ("BFS-graph500", "spawn"),
)

#: Pre-optimization engine timings (seconds, best of 3, warm inputs) and
#: the makespans those runs produced.  Seconds are a point of reference,
#: not a contract — they shift with the host.  Makespans ARE a contract.
REFERENCE: Dict[str, Dict[str, float]] = {
    "SA-thaliana/spawn": {"seconds": 2.6117, "makespan": 160831.29795496378},
    "SA-thaliana/baseline-dp": {"seconds": 2.7059, "makespan": 212893.52118260306},
    "GC-graph500/baseline-dp": {"seconds": 1.7078, "makespan": 1430960.9621359222},
    "JOIN-uniform/spawn": {"seconds": 1.7569, "makespan": 208378.7464706742},
    "BFS-graph500/spawn": {"seconds": 0.177, "makespan": 196628.69311875236},
}


def run_bench(
    *,
    pairs: Sequence[Tuple[str, str]] = BENCH_PAIRS,
    repeat: int = 3,
    seed: int = 1,
) -> Dict:
    """Time the fixed run-set; returns the (JSON-ready) report dict."""
    for name, _scheme in pairs:
        benchmark = get_benchmark(name)
        benchmark.flat(seed)
        benchmark.dp(seed)
    rows: List[Dict] = []
    for name, scheme in pairs:
        pair = f"{name}/{scheme}"
        best = float("inf")
        makespan = None
        for _ in range(max(repeat, 1)):
            runner = Runner()  # fresh: no memory cache, no disk store
            start = time.perf_counter()
            result = runner.run(RunConfig(benchmark=name, scheme=scheme, seed=seed))
            elapsed = time.perf_counter() - start
            if elapsed < best:
                best = elapsed
            makespan = result.makespan
        row = {
            "pair": pair,
            "seconds": round(best, 4),
            "makespan": makespan,
        }
        reference = REFERENCE.get(pair)
        if reference is not None:
            row["reference_seconds"] = reference["seconds"]
            row["speedup"] = round(reference["seconds"] / best, 3)
            row["makespan_identical"] = makespan == reference["makespan"]
        rows.append(row)
    return {
        "repeat": max(repeat, 1),
        "seed": seed,
        "pairs": rows,
    }


#: Default regression gate for ``repro bench``: fail when a pair runs
#: slower than a quarter of its reference speed.  Deliberately loose —
#: reference seconds were recorded on one host class and CI machines
#: vary — but tight enough to catch an accidental O(n^2) in the engine.
DEFAULT_MIN_SPEEDUP: float = 0.25


def regressions(report: Dict, min_speedup: float) -> List[Dict]:
    """Pairs in ``report`` whose speedup fell below ``min_speedup``.

    Pairs without a recorded reference (no ``speedup`` key) never count
    as regressed — there is nothing to regress against.
    """
    return [
        row
        for row in report.get("pairs", [])
        if row.get("speedup") is not None and row["speedup"] < min_speedup
    ]


def default_output_path(today: Optional[datetime.date] = None) -> Path:
    date = today if today is not None else datetime.date.today()
    return Path(f"BENCH_{date.strftime('%Y%m%d')}.json")


def write_report(report: Dict, path: Optional[Path] = None) -> Path:
    """Write the bench report JSON; returns the path written."""
    path = Path(path) if path is not None else default_output_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path
