"""Plain-text report formatting for the experiment harness.

The experiments print the same rows/series the paper's tables and figures
report; these helpers render them as aligned ASCII tables so benchmark
output is directly comparable with the paper.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    title: str = "",
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for value in row:
            if isinstance(value, float):
                cells.append(float_format.format(value))
            else:
                cells.append(str(value))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append("  ".join(c.ljust(widths[i]) for i, c in enumerate(cells)))
    return "\n".join(lines)


def format_series(name: str, pairs: Iterable[tuple], *, max_points: int = 20) -> str:
    """Render an (x, y) series, down-sampled to ``max_points`` rows."""
    points = list(pairs)
    if len(points) > max_points:
        step = len(points) / max_points
        points = [points[int(i * step)] for i in range(max_points)] + [points[-1]]
    lines = [f"series: {name}"]
    for x, y in points:
        lines.append(f"  {x:>14.1f}  {y}")
    return "\n".join(lines)


def percent(value: float) -> str:
    return f"{100.0 * value:.1f}%"
