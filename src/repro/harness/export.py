"""Export simulation results and experiment tables to JSON / CSV.

The plotting side of a paper reproduction usually lives outside the
simulator (notebooks, gnuplot, matplotlib); these helpers serialize
everything those tools need: run summaries, concurrency timelines, launch
CDFs, and the per-figure experiment tables.
"""

from __future__ import annotations

import csv
import io
import json
from typing import Dict

from typing import TYPE_CHECKING

from repro.sim.engine import SimResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.experiments.common import ExperimentResult


def result_to_dict(result: SimResult, *, include_traces: bool = True) -> Dict:
    """Serializable snapshot of one simulation run."""
    stats = result.stats
    payload: Dict = {
        "app": result.app_name,
        "policy": result.policy_name,
        "summary": stats.summary(),
    }
    if include_traces:
        payload["trace"] = [
            {
                "time": sample.time,
                "parent_ctas": sample.parent_ctas,
                "child_ctas": sample.child_ctas,
                "utilization": sample.utilization,
            }
            for sample in stats.trace
        ]
        payload["launch_cdf"] = stats.launch_cdf()
        payload["child_cta_exec_times"] = list(stats.child_cta_exec_times)
        payload["kernels"] = [
            {
                "kernel_id": rec.kernel_id,
                "name": rec.name,
                "is_child": rec.is_child,
                "depth": rec.depth,
                "num_ctas": rec.num_ctas,
                "launch_call_time": rec.launch_call_time,
                "arrival_time": rec.arrival_time,
                "first_dispatch_time": rec.first_dispatch_time,
                "completion_time": rec.completion_time,
            }
            for rec in stats.kernels.values()
        ]
    return payload


def result_to_json(result: SimResult, **kwargs) -> str:
    """JSON document for one simulation run."""
    return json.dumps(result_to_dict(result, **kwargs), indent=2)


def experiment_to_csv(experiment: "ExperimentResult") -> str:
    """CSV rendering of one reproduced table/figure."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(experiment.headers)
    for row in experiment.rows:
        writer.writerow(row)
    return buffer.getvalue()


def experiment_to_dict(experiment: "ExperimentResult") -> Dict:
    """Serializable snapshot of one reproduced table/figure."""
    return {
        "experiment": experiment.experiment,
        "title": experiment.title,
        "headers": list(experiment.headers),
        "rows": [list(row) for row in experiment.rows],
        "notes": experiment.notes,
    }


def experiment_to_json(experiment: "ExperimentResult") -> str:
    return json.dumps(experiment_to_dict(experiment), indent=2)
