"""Threshold sweeps and Offline-Search (Section III-A / Fig. 5).

Offline-Search is "the best workload distribution ratio [picked] by
performing an exhaustive sweep of the THRESHOLD metric" — here: run every
``threshold:<T>`` in the benchmark's sweep list plus the flat end point, and
keep the fastest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.harness import schemes as sch
from repro.harness.runner import RunConfig, Runner
from repro.sim.engine import SimResult
from repro.workloads.base import get_benchmark


@dataclass(frozen=True)
class SweepPoint:
    """One static-threshold run of the Fig. 5 characterization."""

    threshold: int
    offload_fraction: float  # x-axis of Fig. 5
    makespan: float
    speedup_over_flat: float
    child_kernels: int


@dataclass(frozen=True)
class SweepResult:
    benchmark: str
    points: Tuple[SweepPoint, ...]

    def best(self) -> SweepPoint:
        return max(self.points, key=lambda p: p.speedup_over_flat)


def sweep_plan(
    benchmark_name: str,
    *,
    seed: int = 1,
    thresholds: Optional[Tuple[int, ...]] = None,
) -> List[RunConfig]:
    """The run-set a threshold sweep needs (flat + every threshold).

    Feed this to :meth:`repro.harness.parallel.ParallelRunner.run_many`
    to warm the cache before :func:`threshold_sweep` /
    :func:`offline_search`, which then complete without simulating.
    """
    benchmark = get_benchmark(benchmark_name)
    sweep = thresholds if thresholds is not None else benchmark.sweep_thresholds
    plan = [RunConfig(benchmark=benchmark_name, scheme=sch.FLAT, seed=seed)]
    plan.extend(
        RunConfig(
            benchmark=benchmark_name, scheme=f"threshold:{threshold}", seed=seed
        )
        for threshold in sweep
    )
    return plan


def threshold_sweep(
    runner: Runner,
    benchmark_name: str,
    *,
    seed: int = 1,
    thresholds: Optional[Tuple[int, ...]] = None,
    jobs: int = 1,
    policy=None,
) -> SweepResult:
    """Run the benchmark at every static THRESHOLD (plus the flat bound).

    ``jobs > 1`` fans the sweep's runs out across worker processes first;
    results are identical to the serial sweep (simulations are
    deterministic), just wall-clock faster.  ``policy`` is an optional
    :class:`~repro.harness.parallel.ExecutionPolicy` for the fan-out
    (timeouts/retries).
    """
    benchmark = get_benchmark(benchmark_name)
    sweep = thresholds if thresholds is not None else benchmark.sweep_thresholds
    if jobs > 1:
        from repro.harness.parallel import ParallelRunner

        ParallelRunner(runner, policy=policy).run_many(
            sweep_plan(benchmark_name, seed=seed, thresholds=sweep), jobs=jobs
        )
    flat = runner.run(RunConfig(benchmark=benchmark_name, scheme=sch.FLAT, seed=seed))
    points: List[SweepPoint] = []
    for threshold in sweep:
        result = runner.run(
            RunConfig(
                benchmark=benchmark_name,
                scheme=f"threshold:{threshold}",
                seed=seed,
            )
        )
        points.append(_point(threshold, flat, result))
    return SweepResult(benchmark=benchmark_name, points=tuple(points))


def _point(threshold: int, flat: SimResult, result: SimResult) -> SweepPoint:
    return SweepPoint(
        threshold=threshold,
        offload_fraction=result.stats.offload_fraction,
        makespan=result.makespan,
        speedup_over_flat=flat.makespan / result.makespan,
        child_kernels=result.stats.child_kernels_launched,
    )


def offline_search(
    runner: Runner,
    benchmark_name: str,
    *,
    seed: int = 1,
    jobs: int = 1,
    policy=None,
) -> Tuple[int, SimResult]:
    """Best static threshold and its run (the paper's Offline-Search).

    The flat implementation is *not* a candidate: Offline-Search picks the
    best *DP* workload distribution; a benchmark that prefers ~0% offload
    expresses that through a large THRESHOLD.
    """
    sweep = threshold_sweep(
        runner, benchmark_name, seed=seed, jobs=jobs, policy=policy
    )
    best = sweep.best()
    result = runner.run(
        RunConfig(
            benchmark=benchmark_name,
            scheme=f"threshold:{best.threshold}",
            seed=seed,
        )
    )
    return best.threshold, result
