"""Exception hierarchy for the SPAWN reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator, runtime, or harness with one
``except`` clause while still distinguishing configuration problems from
simulation-time invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent (e.g. zero SMXs)."""


class ResourceError(ReproError):
    """A kernel requests more resources than a single SMX can ever provide."""


class SimulationError(ReproError):
    """An internal invariant of the event-driven simulator was violated."""


class LaunchError(ReproError):
    """A device-side kernel launch was malformed (e.g. empty grid)."""


class WorkloadError(ReproError):
    """A workload generator was given invalid parameters."""


class HarnessError(ReproError):
    """The experiment harness was misconfigured (unknown scheme/benchmark)."""
