"""Exception hierarchy for the SPAWN reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything coming out of the simulator, runtime, or harness with one
``except`` clause while still distinguishing configuration problems from
simulation-time invariant violations.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is invalid or inconsistent (e.g. zero SMXs)."""


class ResourceError(ReproError):
    """A kernel requests more resources than a single SMX can ever provide."""


class SimulationError(ReproError):
    """An internal invariant of the event-driven simulator was violated."""


class LaunchError(ReproError):
    """A device-side kernel launch was malformed (e.g. empty grid)."""


class WorkloadError(ReproError):
    """A workload generator was given invalid parameters."""


class HarnessError(ReproError):
    """The experiment harness was misconfigured (unknown scheme/benchmark)."""


class RunFailure(HarnessError):
    """One run could not produce a result after every allowed attempt.

    Raised (or recorded in a quarantine report) by the fault-tolerant
    execution layer.  Carries the :class:`~repro.harness.runner.RunConfig`
    that failed and how many attempts were made, so suite reports can name
    the exact simulation that was lost.
    """

    def __init__(self, message: str, *, config=None, attempts: int = 0):
        super().__init__(message)
        self.config = config
        self.attempts = attempts


class ConformanceError(ReproError):
    """A simulation violated a checked runtime invariant.

    Raised by :meth:`repro.check.ConformanceChecker.raise_if_violations`
    with the list of :class:`~repro.check.invariants.Violation` records
    attached, so callers (tests, the ``repro check`` CLI) can report every
    broken invariant, not just the first.
    """

    def __init__(self, message: str, *, violations=None):
        super().__init__(message)
        self.violations = list(violations) if violations is not None else []


class ServiceOverloaded(HarnessError):
    """The simulation service shed this request at admission time.

    The SPAWN-analog rejection of :mod:`repro.service`: the admission
    controller predicted that the request would wait in the queue longer
    than the configured deadline (or that the queue is at capacity) and
    declined it instead of letting it rot.  Carries the full
    :class:`~repro.service.admission.AdmissionDecision` as ``decision``,
    so callers can inspect the predicted delay, the deadline it exceeded,
    and the queue depth at rejection time.
    """

    def __init__(self, message: str, *, decision=None):
        super().__init__(message)
        self.decision = decision


class FleetOverloaded(ServiceOverloaded):
    """Every shard a fleet could try shed this request.

    The front-door rejection of :mod:`repro.service.fleet`: the home
    shard (named by ``shard``) shed, and so did every failover candidate
    in ring order.  ``decision`` (inherited) is the home shard's
    :class:`~repro.service.admission.AdmissionDecision`; ``decisions``
    maps each attempted shard index to its decision, so the evidence
    names *which* shards were saturated and why, not just "the fleet".
    """

    def __init__(self, message: str, *, shard=None, decisions=None, decision=None):
        super().__init__(message, decision=decision)
        self.shard = shard
        self.decisions = dict(decisions) if decisions is not None else {}


class ServiceClosed(HarnessError):
    """A request was submitted to a service that is shutting down."""


class ReplayBudgetExceeded(HarnessError):
    """A ledger replay violated its latency / shed-rate budgets.

    The load-test gate of :mod:`repro.service.ledger`: raised by
    :meth:`~repro.service.ledger.ReplayReport.enforce` when a replayed
    request stream measured worse than the budgets allow.  ``evidence``
    is a list of ``{"budget", "measured", "limit"}`` dicts — one per
    violated budget, every violation reported, not just the first — so
    CI logs show the measured-vs-allowed numbers without re-running.
    """

    def __init__(self, message: str, *, evidence=None):
        super().__init__(message)
        self.evidence = list(evidence) if evidence is not None else []


class WorkerCrash(RunFailure):
    """A worker process died (or the pool broke) while holding this task."""


class TaskTimeout(RunFailure):
    """A task exceeded the execution policy's per-task timeout."""
