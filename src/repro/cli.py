"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    The Table I benchmark inventory.
``config``
    The simulated GPU configuration (Table II).
``run BENCHMARK --scheme SCHEME``
    Simulate one benchmark under one scheme and print its summary metrics.
    ``--json`` prints the summary machine-readably; ``--trace FILE`` /
    ``--chrome-trace FILE`` export the structured event stream;
    ``--profile`` appends harness wall-clock timings.
``audit BENCHMARK --scheme spawn``
    Run with tracing and print the SPAWN decision audit: per-benchmark
    prediction-error statistics (predicted vs. actual ``t_child``).
    ``BENCHMARK`` may be ``all``.
``sweep BENCHMARK``
    The Fig. 5 threshold sweep for one benchmark.
``experiment ID``
    Regenerate one paper table/figure (``all`` runs everything).
``suite --jobs N``
    Run the complete evaluation suite, fanning the declared run-set out
    across ``N`` worker processes first and persisting every result in
    the on-disk cache (``.repro-cache/`` or ``$REPRO_CACHE_DIR``); a warm
    cache makes a repeat suite purely a read.
``check [--update-golden]``
    Conformance: simulate the pinned golden benchmark x scheme matrix with
    the runtime invariant checker attached and diff each event trace
    against the committed golden corpus (``tests/golden/``), naming the
    first diverging event.  ``--update-golden`` rewrites the corpus after
    an intentional behaviour change.
``cache [stats|clear]``
    Inspect or empty the persistent result store.
``bench``
    Time the engine on its slowest benchmark/scheme pairs and write
    ``BENCH_<date>.json`` (speedup vs. recorded reference timings plus a
    bit-identical-makespan check).  Exits non-zero when any pair drifts
    in makespan or regresses past ``--min-speedup``; the report file is
    written either way so a failing run still leaves evidence.
``serve [REQUESTS.json]``
    Drive the in-process simulation service with scripted or synthetic
    traffic: duplicate requests are coalesced, cache hits are answered
    without touching the pool, and everything else flows through the
    SPAWN-style admission controller (admit to the batch queue, run
    inline, or shed with a predicted-delay reason once ``--deadline-ms``
    is exceeded).  ``--stats`` prints the admission ledger, latency
    percentiles, and cost model; ``--stats-json FILE`` saves it
    machine-readably; ``--record LEDGER.jsonl`` captures every request's
    arrival and outcome into a replayable ledger.
``replay LEDGER.jsonl``
    Re-drive a recorded request ledger against a fresh service,
    optionally time-compressed (``--speed 10``) and under
    ``REPRO_FAULTS`` chaos.  Verifies that every completed simulation
    reproduces its recorded makespan bit-for-bit, and gates the run on
    latency / shed-rate budgets (``--max-p99-ms``, ``--max-shed-rate``)
    with measured-vs-limit evidence on failure.
``perf``
    Measure the current engine (per-pair wall seconds + makespans via
    the bench run-set) and the service (burst-soak throughput + shed
    rate), append the records to the committed rolling history
    (``bench_history.jsonl``), compare against the trailing window, and
    render ASCII trend charts.  Exits non-zero on a timing regression
    or any makespan drift.

Examples
--------
::

    python -m repro run BFS-graph500 --scheme spawn
    python -m repro run SA-thaliana --scheme spawn --engine fast
    python -m repro run BFS-citation --trace bfs.jsonl --chrome-trace bfs.json
    python -m repro audit all --scheme spawn
    python -m repro sweep SSSP-citation
    python -m repro experiment fig15
    python -m repro suite --jobs 4
    python -m repro check
    python -m repro check --engine fast
    python -m repro cache stats
    python -m repro bench --output BENCH.json
    python -m repro bench --engine fast --min-speedup 0.3
    python -m repro bench --compare-engines --min-speedup 0.9
    python -m repro serve --synthetic 100 --deadline-ms 2000 --stats
    python -m repro serve requests.json --jobs 4 --stats-json stats.json
    python -m repro serve --synthetic 50 --record ledger.jsonl
    python -m repro replay ledger.jsonl --speed 10 --max-p99-ms 5000
    python -m repro perf --pairs MM-small/spawn --soak 50
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.errors import ReproError
from repro.harness.report import format_table
from repro.harness.runner import RunConfig, Runner
from repro.harness.sweep import threshold_sweep
from repro.obs.export import write_json_atomic


def _add_engine_argument(parser: argparse.ArgumentParser, *, what: str) -> None:
    """The shared ``--engine`` flag: which simulation core runs ``what``."""
    parser.add_argument(
        "--engine", default="default", choices=["default", "fast"],
        help=f"simulation core for {what}: the per-event reference engine "
             "or the batch-stepping fast core, certified bit-identical "
             "(default: default)",
    )


def _add_store_argument(
    parser: argparse.ArgumentParser, *, no_store: bool = False
) -> None:
    """The shared ``--store URL`` flag (plus its deprecated alias).

    Every store-touching command accepts the same URL syntax:
    ``dir://PATH``, ``sqlite://PATH.db``, ``kv://HOST:PORT``, or a bare
    path (meaning ``dir://``).  ``--cache-dir DIR`` is kept as a
    warning-deprecated alias for ``--store dir://DIR``.
    """
    parser.add_argument(
        "--store", default=None, metavar="URL",
        help="result store: dir://PATH, sqlite://PATH.db, kv://HOST:PORT, "
             "or a bare directory path "
             "(default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="deprecated alias for --store dir://DIR",
    )
    if no_store:
        parser.add_argument(
            "--no-store", action="store_true",
            help="skip the persistent result store entirely",
        )


def _resolve_store_url(args, *, default: bool):
    """``(use_store, url)`` from ``--store``/``--cache-dir``/``--no-store``.

    ``default=True`` opens the default directory cache when no flag was
    given (suite/serve/replay/cache); ``default=False`` stays storeless
    unless the user named one (run/bench/perf — historically cacheless).
    ``url`` may be None with ``use_store=True``, meaning "the default
    location" (:func:`repro.harness.store.open_store` resolves it).
    """
    from repro.errors import HarnessError

    if getattr(args, "no_store", False):
        return False, None
    url = getattr(args, "store", None)
    cache_dir = getattr(args, "cache_dir", None)
    if cache_dir is not None:
        if url is not None:
            raise HarnessError("pass --store or --cache-dir, not both")
        # Printed, not warnings.warn(): CLI deprecations talk to the
        # terminal; the API-level DeprecationWarning lives in ResultStore.
        print(
            f"warning: --cache-dir is deprecated; use --store dir://{cache_dir}",
            file=sys.stderr,
        )
        url = str(cache_dir)
    if url is None and not default:
        return False, None
    return True, url


def _open_cli_store(args, *, default: bool):
    """A :class:`ResultStore` (or None) from the shared store flags."""
    from repro.harness.store import open_store

    use, url = _resolve_store_url(args, default=default)
    return open_store(url) if use else None


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SPAWN (HPCA 2017) reproduction: simulator, benchmarks, experiments.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list the Table I benchmarks")
    sub.add_parser("config", help="print the simulated GPU configuration (Table II)")

    run = sub.add_parser("run", help="run one benchmark under one scheme")
    run.add_argument("benchmark", help="benchmark name, e.g. BFS-graph500")
    run.add_argument(
        "--scheme",
        default="spawn",
        help="flat | baseline-dp | spawn | dtbl | threshold:<T> (default: spawn)",
    )
    run.add_argument("--seed", type=int, default=1)
    run.add_argument("--cta-threads", type=int, default=None,
                     help="child CTA size override (Fig. 7)")
    run.add_argument("--stream-policy", default="per-child",
                     choices=["per-child", "per-parent-cta"])
    run.add_argument("--json", action="store_true",
                     help="print the summary as JSON instead of a table")
    run.add_argument("--trace", metavar="FILE", default=None,
                     help="dump the structured event trace as JSONL")
    run.add_argument("--chrome-trace", metavar="FILE", default=None,
                     help="export a chrome://tracing / Perfetto trace")
    run.add_argument("--profile", action="store_true",
                     help="print harness wall-clock timings after the run")
    _add_store_argument(run)
    _add_engine_argument(run, what="this run")

    audit = sub.add_parser(
        "audit", help="SPAWN decision audit: prediction error vs. reality"
    )
    audit.add_argument("benchmark", help="benchmark name, or 'all'")
    audit.add_argument("--scheme", default="spawn",
                       help="scheme to audit (default: spawn)")
    audit.add_argument("--seed", type=int, default=1)
    audit.add_argument("--json", action="store_true",
                       help="print the audit statistics as JSON")

    sweep = sub.add_parser("sweep", help="threshold sweep (Fig. 5 panel)")
    sweep.add_argument("benchmark")
    sweep.add_argument("--seed", type=int, default=1)

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("id", help="table1, table2, fig01..fig21, or 'all'")
    exp.add_argument("--seed", type=int, default=1)

    suite = sub.add_parser(
        "suite", help="run every experiment, fanned out over worker processes"
    )
    suite.add_argument("--jobs", type=int, default=None,
                       help="worker processes (default: all cores)")
    suite.add_argument("--seed", type=int, default=1)
    suite.add_argument("--experiments", default=None, metavar="ID[,ID...]",
                       help="comma-separated subset (default: the full suite)")
    _add_store_argument(suite, no_store=True)
    suite.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-task timeout; a hung worker is retried "
                            "instead of hanging the suite (default: none)")
    suite.add_argument("--max-retries", type=int, default=2, metavar="N",
                       help="re-dispatches per task after its first failed "
                            "attempt (default: 2)")
    suite.add_argument("--resume", action="store_true",
                       help="resume a partially-completed suite from the "
                            "persistent store: only missing configs are "
                            "simulated (requires the store)")
    suite.add_argument("--fail-fast", action="store_true",
                       help="abort on the first quarantined run instead of "
                            "completing the rest of the suite")
    _add_engine_argument(suite, what="every suite run")

    check = sub.add_parser(
        "check",
        help="conformance: invariant-check the golden matrix and diff traces",
    )
    check.add_argument(
        "--update-golden", action="store_true",
        help="rewrite the golden trace corpus from the current engine "
             "(review the diff as a semantic change!)",
    )
    check.add_argument(
        "--golden-dir", default=None, metavar="DIR",
        help="golden corpus location (default: tests/golden/ in the repo)",
    )
    check.add_argument(
        "--benchmark", default=None, metavar="NAME",
        help="restrict to one benchmark of the matrix",
    )
    _add_engine_argument(check, what="the matrix runs (the corpus itself "
                                     "is always recorded with the default "
                                     "engine)")

    cache = sub.add_parser(
        "cache", help="inspect or clear the persistent result store"
    )
    cache.add_argument("action", nargs="?", default="stats",
                       choices=["stats", "clear"])
    _add_store_argument(cache)

    bench = sub.add_parser(
        "bench", help="time the engine's slowest pairs; write BENCH_<date>.json"
    )
    bench.add_argument("--repeat", type=int, default=3,
                       help="timed repetitions per pair, best kept (default: 3)")
    bench.add_argument("--seed", type=int, default=1)
    bench.add_argument("--output", default=None, metavar="FILE",
                       help="report path (default: BENCH_<YYYYMMDD>.json)")
    bench.add_argument("--min-speedup", type=float, default=None, metavar="X",
                       help="fail (exit 1) when any pair's speedup vs. its "
                            "recorded reference drops below X, e.g. 0.25 "
                            "(default: drift check only); with "
                            "--compare-engines the gate applies to the "
                            "same-host fast-vs-default ratio instead")
    bench.add_argument("--compare-engines", action="store_true",
                       help="time every pair under BOTH engines, interleaved "
                            "on the same host, and write the speedup matrix "
                            "plus a bit-identical-makespan cross-check into "
                            "the report")
    _add_store_argument(bench)
    _add_engine_argument(bench, what="the timed runs (ignored by "
                                     "--compare-engines, which always times "
                                     "both)")

    serve = sub.add_parser(
        "serve",
        help="drive the batched async simulation service with scripted traffic",
    )
    serve.add_argument(
        "requests", nargs="?", default=None, metavar="REQUESTS.json",
        help="scripted request file (JSON array or JSONL of "
             '{"benchmark", "scheme", "seed"} objects); omit to use '
             "--synthetic traffic",
    )
    serve.add_argument("--jobs", type=int, default=2,
                       help="pool worker processes per batch (default: 2)")
    serve.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                       help="shed requests once predicted queue delay exceeds "
                            "this (default: never shed)")
    serve.add_argument("--inline-ms", type=float, default=0.0, metavar="MS",
                       help="run jobs predicted cheaper than this directly on "
                            "the service thread (default: 0 = never inline)")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="jobs per pool dispatch (default: 8)")
    serve.add_argument("--max-queue", type=int, default=None, metavar="N",
                       help="hard queue-depth cap; beyond it requests shed "
                            "(default: unbounded)")
    serve.add_argument("--synthetic", type=int, default=20, metavar="N",
                       help="without a request file, generate N seeded "
                            "requests (default: 20)")
    serve.add_argument("--traffic-seed", type=int, default=1,
                       help="seed for --synthetic traffic (default: 1)")
    serve.add_argument("--gap-ms", type=float, default=0.0, metavar="MS",
                       help="mean Poisson inter-arrival gap for --synthetic "
                            "traffic (default: 0 = instantaneous burst); "
                            "spacing arrivals lets online feedback loops "
                            "like --autotune learn between requests")
    serve.add_argument("--autotune", action="store_true",
                       help="tune launch parameters online: successive "
                            "halving over each (benchmark, scheme-family) "
                            "sweep grid, warm-started from the store and "
                            "fed by live completions")
    serve.add_argument("--autotune-pulls", type=int, default=1, metavar="N",
                       help="observations per arm per halving round "
                            "(default: 1)")
    serve.add_argument("--shards", type=int, default=1, metavar="N",
                       help="shard the service N ways behind a consistent-"
                            "hash front door: each shard runs its own "
                            "admission controller and worker pool, and "
                            "identical requests always route to the same "
                            "shard (default: 1 = unsharded)")
    _add_store_argument(serve, no_store=True)
    serve.add_argument("--stats", action="store_true",
                       help="print the admission ledger, latency percentiles, "
                            "and cost-model snapshot after draining")
    serve.add_argument("--stats-json", default=None, metavar="FILE",
                       help="write the service stats as JSON")
    serve.add_argument("--record", default=None, metavar="LEDGER.jsonl",
                       help="record every request's arrival and outcome into "
                            "a replayable ledger file")
    _add_engine_argument(serve, what="requests that did not pick one "
                                     "themselves")

    replay = sub.add_parser(
        "replay",
        help="re-drive a recorded request ledger and gate on budgets",
    )
    replay.add_argument("ledger", metavar="LEDGER.jsonl",
                        help="ledger recorded by 'serve --record'")
    replay.add_argument("--speed", type=float, default=1.0, metavar="X",
                        help="time compression: 10 replays arrival gaps ten "
                             "times faster (default: 1)")
    replay.add_argument("--jobs", type=int, default=2,
                        help="pool worker processes per batch (default: 2)")
    replay.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                        help="shed requests once predicted queue delay "
                             "exceeds this (default: never shed)")
    replay.add_argument("--inline-ms", type=float, default=0.0, metavar="MS",
                        help="inline threshold, as for serve (default: 0)")
    replay.add_argument("--max-batch", type=int, default=8, metavar="N",
                        help="jobs per pool dispatch (default: 8)")
    replay.add_argument("--max-queue", type=int, default=None, metavar="N",
                        help="hard queue-depth cap (default: unbounded)")
    replay.add_argument("--shards", type=int, default=1, metavar="N",
                        help="replay against an N-shard fleet instead of a "
                             "single service (default: 1)")
    _add_store_argument(replay, no_store=True)
    replay.add_argument("--max-p99-ms", type=float, default=None, metavar="MS",
                        help="budget: fail when the exact p99 of answered-"
                             "request latency exceeds this")
    replay.add_argument("--max-shed-rate", type=float, default=None,
                        metavar="FRACTION",
                        help="budget: fail when shed/submitted exceeds this "
                             "(e.g. 0.3)")
    replay.add_argument("--stats-json", default=None, metavar="FILE",
                        help="write the replay report as JSON (written before "
                             "budget enforcement, so a failing gate still "
                             "leaves evidence)")
    replay.add_argument("--record", default=None, metavar="LEDGER.jsonl",
                        help="also write the replayed outcomes as a fresh "
                             "ledger")

    perf = sub.add_parser(
        "perf",
        help="append engine + service perf records to the rolling history",
    )
    perf.add_argument("--pairs", default=None, metavar="PAIR[,PAIR...]",
                      help="benchmark/scheme pairs to time, e.g. "
                           "'MM-small/spawn,BFS-graph500/spawn' "
                           "(default: the bench run-set)")
    perf.add_argument("--repeat", type=int, default=3,
                      help="timed repetitions per pair, best kept (default: 3)")
    perf.add_argument("--seed", type=int, default=1)
    perf.add_argument("--soak", type=int, default=0, metavar="N",
                      help="also soak the service with N burst requests and "
                           "record throughput + shed rate (default: off)")
    perf.add_argument("--traffic-seed", type=int, default=1,
                      help="seed for --soak traffic (default: 1)")
    perf.add_argument("--autotune", action="store_true",
                      help="run the --soak with online autotuning enabled; "
                           "records the service-soak@autotuned series so "
                           "the closed-loop trajectory is tracked apart "
                           "from static-scheme baselines")
    perf.add_argument("--deadline-ms", type=float, default=None, metavar="MS",
                      help="soak shed deadline, as for serve (default: never)")
    perf.add_argument("--history", default=None, metavar="FILE",
                      help="history file (default: bench_history.jsonl)")
    perf.add_argument("--no-append", action="store_true",
                      help="compare and chart only; leave the history file "
                           "untouched (CI smoke mode)")
    perf.add_argument("--window", type=int, default=5, metavar="N",
                      help="trailing records per series to compare against "
                           "(default: 5)")
    perf.add_argument("--max-ratio", type=float, default=1.5, metavar="X",
                      help="regression threshold vs. the trailing mean "
                           "(default: 1.5)")
    perf.add_argument("--json", default=None, metavar="FILE",
                      help="write the fresh records + verdicts as JSON")
    _add_store_argument(perf)
    _add_engine_argument(perf, what="the timed pairs (non-default engines "
                                    "record their own @engine-suffixed "
                                    "history series)")

    plot = sub.add_parser(
        "plot", help="ASCII concurrency timeline for one run (Fig. 6/19 style)"
    )
    plot.add_argument("benchmark")
    plot.add_argument("--scheme", default="baseline-dp")
    plot.add_argument("--seed", type=int, default=1)
    return parser


def cmd_list(out) -> int:
    from repro.experiments import tables

    print(tables.run_table1().table(), file=out)
    return 0


def cmd_config(out) -> int:
    from repro.experiments import tables

    print(tables.run_table2().table(), file=out)
    return 0


def cmd_run(args, out) -> int:
    from repro.obs import Tracer, write_chrome_trace, write_jsonl
    from repro.obs.profile import REGISTRY

    # default_engine so the flat run behind speedup_vs_flat uses the same
    # core as the main run (and both land in engine-keyed cache entries).
    # The store stays off unless requested: `repro run` is historically
    # cacheless, and quick one-offs should not populate a store unasked.
    runner = Runner(
        store=_open_cli_store(args, default=False),
        default_engine=args.engine,
    )
    config = RunConfig(
        benchmark=args.benchmark,
        scheme=args.scheme,
        seed=args.seed,
        cta_threads=args.cta_threads,
        stream_policy=args.stream_policy,
        engine=args.engine,
    )
    tracing = args.trace is not None or args.chrome_trace is not None
    tracer = Tracer() if tracing else None
    result = runner.run(config, tracer=tracer)
    summary = dict(result.summary())
    if args.scheme != "flat":
        summary["speedup_vs_flat"] = runner.speedup(
            args.benchmark, args.scheme, seed=args.seed
        )
    if tracer is not None:
        if args.trace:
            count = write_jsonl(tracer.events(), args.trace)
            print(f"wrote {count} events to {args.trace}", file=sys.stderr)
        if args.chrome_trace:
            count = write_chrome_trace(tracer.events(), args.chrome_trace)
            print(
                f"wrote {count} trace entries to {args.chrome_trace} "
                "(load in chrome://tracing or Perfetto)",
                file=sys.stderr,
            )
    if args.json:
        print(json.dumps(summary, sort_keys=True), file=out)
    else:
        print(
            format_table(
                ["metric", "value"],
                list(summary.items()),
                title=f"{args.benchmark} / {args.scheme} (seed {args.seed})",
            ),
            file=out,
        )
    if args.profile:
        print(file=out)
        print(
            format_table(
                ["timer", "calls", "total_s", "mean_s", "max_s"],
                [
                    (name, calls, f"{total:.3f}", f"{mean:.3f}", f"{mx:.3f}")
                    for name, calls, total, mean, mx in REGISTRY.timer_rows()
                ],
                title="harness wall-clock profile",
            ),
            file=out,
        )
    return 0


def cmd_audit(args, out) -> int:
    from repro.obs import DecisionAudit, Tracer
    from repro.workloads import benchmark_names

    if args.benchmark == "all":
        names = list(benchmark_names())
    else:
        names = [args.benchmark]
    all_stats = {}
    for name in names:
        runner = Runner()
        tracer = Tracer()
        config = RunConfig(benchmark=name, scheme=args.scheme, seed=args.seed)
        runner.run(config, tracer=tracer)
        all_stats[name] = DecisionAudit.from_events(tracer.events()).stats()
    if args.json:
        print(json.dumps(all_stats, sort_keys=True), file=out)
        return 0
    rows = []
    for name, s in all_stats.items():
        rows.append(
            (
                name,
                int(s["decisions"]),
                int(s["launched"]),
                int(s["declined"]),
                int(s["bootstrap"]),
                int(s["joined"]),
                f"{100 * s['mean_rel_error']:.1f}%" if "mean_rel_error" in s else "-",
                f"{100 * s['max_rel_error']:.1f}%" if "max_rel_error" in s else "-",
                f"{s['mean_bias']:+.0f}" if "mean_bias" in s else "-",
            )
        )
    print(
        format_table(
            [
                "benchmark",
                "decisions",
                "launched",
                "declined",
                "bootstrap",
                "joined",
                "mean_err",
                "max_err",
                "bias_cyc",
            ],
            rows,
            title=(
                f"{args.scheme} decision audit (seed {args.seed}): "
                "predicted vs. actual t_child"
            ),
        ),
        file=out,
    )
    return 0


def cmd_sweep(args, out) -> int:
    runner = Runner()
    sweep = threshold_sweep(runner, args.benchmark, seed=args.seed)
    best = sweep.best()
    rows = [
        (
            p.threshold,
            f"{100 * p.offload_fraction:.0f}%",
            round(p.speedup_over_flat, 3),
            p.child_kernels,
            "*" if p is best else "",
        )
        for p in sweep.points
    ]
    print(
        format_table(
            ["THRESHOLD", "offloaded", "speedup vs flat", "child kernels", "best"],
            rows,
            title=f"{args.benchmark}: threshold sweep (seed {args.seed})",
        ),
        file=out,
    )
    return 0


def cmd_experiment(args, out) -> int:
    from repro.experiments import ALL_EXPERIMENTS, EXTRA_EXPERIMENTS, run_all

    if args.id == "all":
        for result in run_all(seed=args.seed):
            print(result.table(), file=out)
            print(file=out)
        return 0
    entry = ALL_EXPERIMENTS.get(args.id) or EXTRA_EXPERIMENTS.get(args.id)
    if entry is None:
        known = ", ".join([*ALL_EXPERIMENTS, *EXTRA_EXPERIMENTS])
        print(f"unknown experiment {args.id!r}; known: {known}, all", file=sys.stderr)
        return 2
    print(entry(Runner(), args.seed).table(), file=out)
    return 0


def cmd_suite(args, out) -> int:
    from repro.experiments import ALL_EXPERIMENTS
    from repro.experiments.plans import suite_plan
    from repro.harness.faults import FaultPlan
    from repro.harness.parallel import ExecutionPolicy, ParallelRunner, default_jobs
    from repro.obs.profile import REGISTRY

    jobs = args.jobs if args.jobs is not None else default_jobs()
    if jobs < 1:
        print(f"error: --jobs must be >= 1, got {jobs}", file=sys.stderr)
        return 2
    if args.max_retries < 0:
        print(f"error: --max-retries must be >= 0, got {args.max_retries}",
              file=sys.stderr)
        return 2
    if args.resume and args.no_store:
        print("error: --resume needs the persistent store (drop --no-store)",
              file=sys.stderr)
        return 2
    store = _open_cli_store(args, default=True)
    # default_engine covers the experiment phase: experiment modules build
    # their own RunConfigs, and the runner resolves them onto the same
    # engine-keyed cache entries the fan-out produced.
    runner = Runner(store=store, default_engine=args.engine)
    if args.experiments:
        names = [name.strip() for name in args.experiments.split(",") if name.strip()]
        unknown = [name for name in names if name not in ALL_EXPERIMENTS]
        if unknown:
            print(
                f"unknown experiments: {', '.join(unknown)}; "
                f"known: {', '.join(ALL_EXPERIMENTS)}",
                file=sys.stderr,
            )
            return 2
    else:
        names = list(ALL_EXPERIMENTS)
    policy = ExecutionPolicy(
        timeout=args.timeout,
        max_retries=args.max_retries,
        fail_fast=args.fail_fast,
    )
    faults = FaultPlan.from_env()
    if faults is not None:
        print(f"chaos: injecting faults {faults.to_dict()}", file=sys.stderr)
        if store is not None:
            runner.store = faults.flaky_store(store)
    plan = suite_plan(args.seed, names)
    if args.engine != "default":
        # Worker processes execute the plan configs verbatim (they build
        # their own runners), so the engine must ride on the configs.
        import dataclasses

        plan = [
            dataclasses.replace(c, engine=args.engine)
            if c.engine == "default" else c
            for c in plan
        ]
    parallel = ParallelRunner(runner, policy=policy, faults=faults)
    report = parallel.run_suite(plan, jobs=jobs)
    if args.resume:
        print(
            f"resume: {report.resumed} of "
            f"{report.resumed + len(report.outcomes)} planned runs already "
            "completed; re-simulated only the rest",
            file=sys.stderr,
        )
    if report.failures or report.skipped:
        rows = [
            (o.config.benchmark, o.config.scheme, o.status, o.attempts,
             o.error or "")
            for o in report.outcomes
            if o.status != "ok"
        ]
        print(
            format_table(
                ["benchmark", "scheme", "status", "attempts", "error"],
                rows,
                title="quarantined runs (suite continued without them)",
            ),
            file=sys.stderr,
        )
        if args.fail_fast:
            print("suite aborted (--fail-fast)", file=sys.stderr)
            return 1
    failed_experiments = []
    for name in names:
        try:
            result = ALL_EXPERIMENTS[name](runner, args.seed)
        except ReproError as exc:
            failed_experiments.append((name, str(exc)))
            print(f"experiment {name} failed: {exc}", file=sys.stderr)
            continue
        print(result.table(), file=out)
        print(file=out)
    counters = REGISTRY.counters
    print(
        "suite done: "
        f"jobs={jobs} "
        f"fanned_out={int(counters.get('parallel.fanned_out', 0))} "
        f"resumed={report.resumed} "
        f"retries={report.retries} "
        f"timeouts={report.timeouts} "
        f"worker_crashes={report.worker_crashes} "
        f"quarantined={report.quarantined} "
        f"simulated_inline={int(counters.get('runner.cache_misses', 0))} "
        f"memory_hits={int(counters.get('runner.cache_hits', 0))} "
        f"disk_hits={int(counters.get('runner.disk_hits', 0))}",
        file=sys.stderr,
    )
    return 1 if (report.failures or failed_experiments) else 0


def cmd_check(args, out) -> int:
    from repro.check.golden import (
        GOLDEN_MATRIX,
        GOLDEN_SEED,
        canonical_events,
        default_golden_dir,
        diff_traces,
        golden_path,
        load_golden,
        record_trace,
        write_golden,
    )

    if args.update_golden and args.engine != "default":
        # The corpus is the reference engine's word; recording it with a
        # candidate engine would certify that engine against itself.
        print(
            "error: --update-golden must record with the default engine "
            "(verify a candidate with --engine, never record with it)",
            file=sys.stderr,
        )
        return 2
    golden_dir = args.golden_dir if args.golden_dir else default_golden_dir()
    matrix = [
        pair for pair in GOLDEN_MATRIX
        if args.benchmark is None or pair[0] == args.benchmark
    ]
    if not matrix:
        print(
            f"error: benchmark {args.benchmark!r} is not in the golden matrix",
            file=sys.stderr,
        )
        return 2
    failures = 0
    for benchmark, scheme in matrix:
        checker, result = record_trace(benchmark, scheme, engine=args.engine)
        label = f"{benchmark}/{scheme}"
        if args.engine != "default":
            label = f"{label} [{args.engine}]"
        if checker.violations:
            failures += 1
            print(
                f"FAIL {label}: {len(checker.violations)} invariant "
                "violation(s)",
                file=out,
            )
            for violation in checker.violations[:5]:
                print(f"  {violation}", file=out)
            continue
        events = canonical_events(checker.events())
        path = golden_path(golden_dir, benchmark, scheme)
        if args.update_golden:
            write_golden(
                path,
                events,
                benchmark=benchmark,
                scheme=scheme,
                seed=GOLDEN_SEED,
                makespan=result.makespan,
            )
            print(f"wrote {path} ({len(events)} events)", file=out)
            continue
        _, expected = load_golden(path)
        divergence = diff_traces(expected, events)
        if divergence is not None:
            failures += 1
            print(f"FAIL {label}: {divergence}", file=out)
        else:
            print(
                f"ok   {label}: {len(events)} events, invariants clean, "
                "matches golden",
                file=out,
            )
    if failures:
        print(f"{failures} of {len(matrix)} matrix cells failed", file=sys.stderr)
        return 1
    return 0


def cmd_cache(args, out) -> int:
    store = _open_cli_store(args, default=True)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} entries from {store.url}", file=out)
        return 0
    stats = store.stats()
    print(
        format_table(
            ["field", "value"],
            [
                ("store", store.url),
                ("backend", store.backend.name),
                ("root", stats.root),
                ("entries", stats.entries),
                ("total_bytes", stats.total_bytes),
            ],
            title="persistent result store",
        ),
        file=out,
    )
    return 0


def cmd_bench(args, out) -> int:
    from repro.harness.bench import (
        DEFAULT_MIN_SPEEDUP,
        compare_engines,
        compare_regressions,
        regressions,
        run_bench,
        write_report,
    )

    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}", file=sys.stderr)
        return 2
    if args.min_speedup is not None and args.min_speedup <= 0:
        print(
            f"error: --min-speedup must be > 0, got {args.min_speedup}",
            file=sys.stderr,
        )
        return 2

    # Timed runs stay cold (a cache hit would measure nothing); --store
    # write-throughs each result after its clock stops.
    store = _open_cli_store(args, default=False)
    store_kwargs = {"store": store} if store is not None else {}
    if args.compare_engines:
        report = compare_engines(
            repeat=args.repeat, seed=args.seed, **store_kwargs
        )
        path = write_report(report, args.output)
        rows = [
            (
                row["pair"],
                engine,
                row["engines"][engine]["seconds"],
                row["engines"][engine].get("speedup", "-"),
                {True: "yes", False: "NO"}.get(
                    row["engines"][engine].get("makespan_identical"), "-"
                ),
            )
            for row in report["pairs"]
            for engine in report["engines"]
        ]
        print(
            format_table(
                ["pair", "engine", "seconds", "speedup",
                 "makespan identical"],
                rows,
                title=(
                    "engine comparison, same host "
                    f"(best of {report['repeat']}, speedup vs. "
                    f"{report['baseline_engine']})"
                ),
            ),
            file=out,
        )
        aggregate = ", ".join(
            f"{engine} {speedup}x"
            for engine, speedup in sorted(
                report["aggregate_speedup"].items()
            )
        )
        print(
            f"aggregate speedup vs. {report['baseline_engine']}: {aggregate}",
            file=out,
        )
        print(f"wrote {path}", file=sys.stderr)
        failed = False
        mismatched = [
            f"{row['pair']} ({engine})"
            for row in report["pairs"]
            for engine, entry in row["engines"].items()
            if entry.get("makespan_identical") is False
        ]
        if mismatched:
            print(
                "error: engines disagree on makespan (bit-identity "
                f"contract broken) on: {', '.join(mismatched)}",
                file=sys.stderr,
            )
            failed = True
        if args.min_speedup is not None:
            regressed = compare_regressions(report, args.min_speedup)
            if regressed:
                detail = ", ".join(
                    f"{row['pair']}@{row['engine']} ({row['speedup']}x)"
                    for row in regressed
                )
                print(
                    f"error: same-host speedup below {args.min_speedup}x "
                    f"on: {detail}",
                    file=sys.stderr,
                )
                failed = True
        return 1 if failed else 0

    min_speedup = (
        args.min_speedup if args.min_speedup is not None else DEFAULT_MIN_SPEEDUP
    )
    report = run_bench(
        repeat=args.repeat, seed=args.seed, engine=args.engine, **store_kwargs
    )
    # The report is written before any gate: a failing run must still
    # leave its evidence on disk for CI to archive.
    path = write_report(report, args.output)
    rows = [
        (
            row["pair"],
            row["seconds"],
            row.get("reference_seconds", "-"),
            row.get("speedup", "-"),
            {True: "yes", False: "NO"}.get(row.get("makespan_identical"), "-"),
        )
        for row in report["pairs"]
    ]
    print(
        format_table(
            ["pair", "seconds", "reference_s", "speedup", "makespan identical"],
            rows,
            title=(
                f"engine benchmark (best of {report['repeat']}, "
                f"engine={report['engine']})"
            ),
        ),
        file=out,
    )
    print(f"wrote {path}", file=sys.stderr)
    failed = False
    drifted = [
        row["pair"]
        for row in report["pairs"]
        if row.get("makespan_identical") is False
    ]
    if drifted:
        print(
            f"error: makespan drift vs. reference on: {', '.join(drifted)}",
            file=sys.stderr,
        )
        failed = True
    regressed = regressions(report, min_speedup)
    if regressed:
        detail = ", ".join(
            f"{row['pair']} ({row['speedup']}x)" for row in regressed
        )
        print(
            f"error: speedup below {min_speedup}x vs. reference on: {detail}",
            file=sys.stderr,
        )
        failed = True
    return 1 if failed else 0


def _latency_rows(latency: dict) -> list:
    """Table rows (span, count, p50/p95/p99 in ms) from a latency digest."""
    rows = []
    sections = [
        ("end_to_end", latency.get("end_to_end") or {}),
        ("queue_wait", latency.get("queue_wait") or {}),
    ]
    sections.extend(
        (f"route:{route}", summary)
        for route, summary in sorted((latency.get("routes") or {}).items())
    )
    for name, summary in sections:
        if not summary.get("count"):
            continue
        rows.append(
            (
                name,
                summary["count"],
                f"{summary['p50'] * 1000:.2f}",
                f"{summary['p95'] * 1000:.2f}",
                f"{summary['p99'] * 1000:.2f}",
            )
        )
    return rows


def cmd_serve(args, out) -> int:
    import asyncio

    from repro.harness.faults import FaultPlan
    from repro.harness.store import default_cache_dir, open_store
    from repro.service import (
        FleetConfig,
        RequestLedger,
        ServiceConfig,
        ServiceFleet,
        SimulationService,
        drive_service,
        fleet_runners,
        generate_traffic,
        load_requests,
    )
    from repro.service.ledger import SHED as LEDGER_SHED

    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    if args.requests is not None:
        requests = load_requests(args.requests)
        source = args.requests
    else:
        if args.synthetic < 1:
            print(
                f"error: --synthetic must be >= 1, got {args.synthetic}",
                file=sys.stderr,
            )
            return 2
        if args.gap_ms < 0:
            print(
                f"error: --gap-ms must be >= 0, got {args.gap_ms}",
                file=sys.stderr,
            )
            return 2
        requests = generate_traffic(
            args.synthetic,
            seed=args.traffic_seed,
            mean_gap_s=args.gap_ms / 1000.0,
        )
        source = f"synthetic (seed {args.traffic_seed})"
    if not requests:
        print("error: no requests to serve", file=sys.stderr)
        return 2
    config = ServiceConfig(
        jobs=args.jobs,
        deadline_ms=args.deadline_ms,
        inline_threshold_ms=args.inline_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
        engine=args.engine,
        autotune=args.autotune,
        autotune_pulls=args.autotune_pulls,
        autotune_seed=args.traffic_seed,
    )
    use_store, url = _resolve_store_url(args, default=True)
    faults = FaultPlan.from_env()
    if faults is not None:
        print(f"chaos: injecting faults {faults.to_dict()}", file=sys.stderr)

    if args.shards > 1:
        # Sharded fleet: every shard opens its own handle to the SAME
        # store URL (that shared backend is what fleet-wide dedup rides
        # on), so the default cache dir must be spelled out as a URL.
        store_url = None
        if use_store:
            store_url = url if url is not None else f"dir://{default_cache_dir()}"
        wrap = (
            faults.flaky_store
            if (faults is not None and store_url is not None)
            else None
        )
        runners = fleet_runners(
            args.shards, store_url=store_url, wrap_store=wrap
        )
        service = ServiceFleet(
            runners,
            config=FleetConfig(shards=args.shards, service=config),
            faults=faults,
        )
    else:
        store = open_store(url) if use_store else None
        runner = Runner(store=store)
        if faults is not None and store is not None:
            runner.store = faults.flaky_store(store)
        service = SimulationService(runner, config=config, faults=faults)

    async def drive():
        async with service:
            entries = await drive_service(service, requests)
        return entries, service.stats()

    entries, stats = asyncio.run(drive())
    for entry in entries:
        if entry.outcome == LEDGER_SHED:
            print(
                f"shed: {entry.benchmark}/{entry.scheme} seed {entry.seed}",
                file=sys.stderr,
            )
    if args.record:
        ledger = RequestLedger(entries=list(entries))
        path = ledger.write(args.record)
        print(
            f"recorded {len(ledger)} requests to {path} "
            f"(fingerprint {ledger.fingerprint()[:12]})",
            file=sys.stderr,
        )
    print(
        f"served {len(requests)} requests from {source}: "
        f"completed={stats.completed} failed={stats.failed} "
        f"shed={stats.shed} coalesced={stats.coalesced} "
        f"cache_hits={stats.cache_hits} inline={stats.inline} "
        f"batches={stats.batches} lost={stats.lost}",
        file=sys.stderr,
    )
    if args.stats:
        payload = stats.to_dict()
        model = payload.pop("model")
        autotune = payload.pop("autotune", None)
        latency = payload.pop("latency")
        fleet_info = payload.pop("fleet", None)
        per_shard = payload.pop("per_shard", None)
        print(
            format_table(
                ["counter", "value"],
                sorted(payload.items()),
                title="service admission ledger",
            ),
            file=out,
        )
        if fleet_info is not None and per_shard is not None:
            routed = fleet_info.get("routed", {})
            print(file=out)
            print(
                format_table(
                    ["shard", "routed", "completed", "shed", "cache_hits",
                     "coalesced"],
                    [
                        (
                            index,
                            routed.get(str(index), 0),
                            shard["completed"],
                            shard["shed"],
                            shard["cache_hits"],
                            shard["coalesced"],
                        )
                        for index, shard in enumerate(per_shard)
                    ],
                    title=(
                        f"fleet routing ({fleet_info['shards']} shards, "
                        f"failovers={fleet_info['failovers']}, "
                        f"fleet_shed={fleet_info['fleet_shed']})"
                    ),
                ),
                file=out,
            )
        latency_rows = _latency_rows(latency)
        if latency_rows:
            print(file=out)
            print(
                format_table(
                    ["span", "count", "p50_ms", "p95_ms", "p99_ms"],
                    latency_rows,
                    title="service latency percentiles",
                ),
                file=out,
            )
        if model:
            print(file=out)
            print(
                format_table(
                    ["pair", "predicted_s", "samples", "cycles_per_s"],
                    [
                        (
                            pair,
                            f"{entry['seconds']:.4f}",
                            entry["samples"],
                            f"{entry['cycles_per_second']:.0f}"
                            if entry.get("cycles_per_second")
                            else "-",
                        )
                        for pair, entry in sorted(model.items())
                    ],
                    title="cost model snapshot (windowed EWMA)",
                ),
                file=out,
            )
        if autotune:
            print(file=out)
            print(
                format_table(
                    ["pair", "incumbent", "alive", "round", "pulls",
                     "converged"],
                    [
                        (
                            pair,
                            snap["incumbent"] or "-",
                            f"{snap['arms_alive']}/{snap['arms']}",
                            f"{snap['round']}/{snap['rounds_total']}",
                            snap["pulls"],
                            "yes" if snap["converged"] else "no",
                        )
                        for pair, snap in sorted(autotune.items())
                    ],
                    title="autotuner (successive halving)",
                ),
                file=out,
            )
    if args.stats_json:
        write_json_atomic(stats.to_dict(), args.stats_json)
        print(f"wrote {args.stats_json}", file=sys.stderr)
    if stats.lost:
        print(f"error: {stats.lost} submissions lost", file=sys.stderr)
        return 1
    return 1 if stats.failed else 0


def cmd_replay(args, out) -> int:
    import asyncio

    from repro.errors import ReplayBudgetExceeded
    from repro.harness.faults import FaultPlan
    from repro.harness.store import default_cache_dir, open_store
    from repro.service import (
        ReplayBudgets,
        RequestLedger,
        ServiceConfig,
        fleet_runners,
        replay_ledger,
    )

    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    ledger = RequestLedger.read(args.ledger)
    if not len(ledger):
        print(f"error: {args.ledger} holds no requests", file=sys.stderr)
        return 2
    if args.speed <= 0:
        print(f"error: --speed must be positive, got {args.speed}",
              file=sys.stderr)
        return 2
    config = ServiceConfig(
        jobs=args.jobs,
        deadline_ms=args.deadline_ms,
        inline_threshold_ms=args.inline_ms,
        max_batch=args.max_batch,
        max_queue=args.max_queue,
    )
    use_store, url = _resolve_store_url(args, default=True)
    faults = FaultPlan.from_env()
    if faults is not None:
        print(f"chaos: injecting faults {faults.to_dict()}", file=sys.stderr)
    budgets = ReplayBudgets(
        max_p99_s=(
            args.max_p99_ms / 1000.0 if args.max_p99_ms is not None else None
        ),
        max_shed_rate=args.max_shed_rate,
    )

    if args.shards > 1:
        store_url = None
        if use_store:
            store_url = url if url is not None else f"dir://{default_cache_dir()}"
        wrap = (
            faults.flaky_store
            if (faults is not None and store_url is not None)
            else None
        )
        runners = fleet_runners(
            args.shards, store_url=store_url, wrap_store=wrap
        )
        replay_kwargs = {"runners": runners, "shards": args.shards}
    else:
        store = open_store(url) if use_store else None
        runner = Runner(store=store)
        if faults is not None and store is not None:
            runner.store = faults.flaky_store(store)
        replay_kwargs = {"runner": runner}

    report = asyncio.run(
        replay_ledger(
            ledger,
            speed=args.speed,
            config=config,
            faults=faults,
            **replay_kwargs,
        )
    )
    percentiles = report.percentiles()
    print(
        f"replayed {report.requests} requests at {args.speed:g}x: "
        f"completed={report.completed} failed={report.failed} "
        f"shed={report.shed} shed_rate={report.shed_rate:.3f} "
        + (
            f"p99={percentiles['p99'] * 1000:.1f}ms "
            if "p99" in percentiles else ""
        )
        + f"results_identical={report.results_identical}",
        file=sys.stderr,
    )
    # Evidence before judgement: the report JSON and any re-recorded
    # ledger are written before budgets can fail the run.
    if args.stats_json:
        write_json_atomic(report.to_dict(), args.stats_json)
        print(f"wrote {args.stats_json}", file=sys.stderr)
    if args.record and report.ledger is not None:
        path = report.ledger.write(args.record)
        print(f"re-recorded replay to {path}", file=sys.stderr)
    if not report.results_identical:
        for mismatch in report.mismatches[:10]:
            print(f"mismatch: {mismatch}", file=sys.stderr)
        print(
            "error: replayed simulation results diverge from the recording",
            file=sys.stderr,
        )
        return 1
    try:
        report.enforce(budgets)
    except ReplayBudgetExceeded as exc:
        for item in exc.evidence:
            print(
                f"budget violated: {item['budget']} measured "
                f"{item['measured']:.6g} > limit {item['limit']:.6g}",
                file=sys.stderr,
            )
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print("replay ok: results bit-identical, budgets met", file=sys.stderr)
    return 0


def cmd_perf(args, out) -> int:
    import asyncio
    import datetime

    from repro.harness.bench import BENCH_PAIRS, run_bench
    from repro.harness.history import (
        DEFAULT_HISTORY_PATH,
        append_records,
        compare,
        load_history,
        records_from_bench,
        soak_record,
        trend_chart,
    )
    from repro.service import (
        ServiceConfig,
        SimulationService,
        drive_service,
        generate_traffic,
    )

    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}",
              file=sys.stderr)
        return 2
    if args.pairs:
        pairs = []
        for token in args.pairs.split(","):
            token = token.strip()
            if not token:
                continue
            benchmark, sep, scheme = token.partition("/")
            if not sep or not benchmark or not scheme:
                print(
                    f"error: --pairs entries must be benchmark/scheme, "
                    f"got {token!r}",
                    file=sys.stderr,
                )
                return 2
            pairs.append((benchmark, scheme))
        if not pairs:
            print("error: --pairs named no pairs", file=sys.stderr)
            return 2
    else:
        pairs = list(BENCH_PAIRS)

    at = datetime.datetime.now().isoformat(timespec="seconds")
    history_path = args.history if args.history else DEFAULT_HISTORY_PATH
    history = load_history(history_path)

    bench_report = run_bench(
        pairs=pairs,
        repeat=args.repeat,
        seed=args.seed,
        engine=args.engine,
        store=_open_cli_store(args, default=False),
    )
    fresh = records_from_bench(bench_report, at)

    if args.soak > 0:
        import time as _time

        from repro.harness.runner import Runner as _Runner

        requests = generate_traffic(args.soak, seed=args.traffic_seed)
        config = ServiceConfig(
            jobs=2,
            deadline_ms=args.deadline_ms,
            autotune=args.autotune,
            autotune_seed=args.traffic_seed,
        )

        async def soak():
            # Memory-only runner: a warm disk store would turn the soak
            # into a pure cache read and flatter the throughput number.
            service = SimulationService(_Runner(), config=config)
            async with service:
                if config.autotune:
                    # Converged-service soak: an un-timed sequential
                    # warm-up pass first (each completion feeds the
                    # tuner), so the timed pass below measures the
                    # closed loop's steady state — incumbent arms over
                    # a warm cache — not its exploration phase.
                    for request in requests:
                        job = await service.submit(request.config())
                        await job.result()
                before = service.stats()
                start = _time.perf_counter()
                await drive_service(service, requests)
                seconds = _time.perf_counter() - start
            return seconds, before, service.stats()

        seconds, before, stats = asyncio.run(soak())
        details = {
            "coalesced": stats.coalesced - before.coalesced,
            "cache_hits": stats.cache_hits - before.cache_hits,
            "batches": stats.batches - before.batches,
        }
        # A label suffix makes the closed-loop soak its own history
        # series (like @fast for the engine), so `repro perf` trends and
        # gates it separately from the static-scheme soak.
        label = "service-soak@autotuned" if args.autotune else "service-soak"
        if args.autotune:
            details["autotuned"] = stats.autotuned
            details["converged_pairs"] = sum(
                1 for snap in stats.autotune.values() if snap["converged"]
            )
        fresh.append(
            soak_record(
                requests=stats.submitted - before.submitted,
                seconds=seconds,
                shed=stats.shed - before.shed,
                at=at,
                label=label,
                details=details,
            )
        )

    verdicts = compare(
        history, fresh, window=args.window, max_ratio=args.max_ratio
    )
    if not args.no_append:
        append_records(fresh, history_path)
        print(
            f"appended {len(fresh)} records to {history_path}",
            file=sys.stderr,
        )
    if args.json:
        payload = {
            "at": at,
            "records": [record.to_dict() for record in fresh],
            "verdicts": verdicts,
        }
        write_json_atomic(payload, args.json)
        print(f"wrote {args.json}", file=sys.stderr)

    rows = [
        (
            record.label,
            record.kind,
            f"{record.value:.4g} {record.unit}",
            next(
                (
                    f"{v['baseline']:.4g} (x{v['ratio']})"
                    for v in verdicts if v["label"] == record.label
                ),
                "-",
            ),
        )
        for record in fresh
    ]
    print(
        format_table(
            ["series", "kind", "measured", "trailing baseline"],
            rows,
            title=f"perf records ({at})",
        ),
        file=out,
    )
    chart = trend_chart(
        history + fresh, labels=[record.label for record in fresh]
    )
    print(file=out)
    print(chart, file=out)

    failed = False
    for verdict in verdicts:
        if verdict["drift"]:
            print(
                f"error: {verdict['label']}: makespan drifted from the "
                "last recorded value (simulation results must be "
                "deterministic)",
                file=sys.stderr,
            )
            failed = True
        if verdict["regressed"]:
            print(
                f"error: {verdict['label']}: {verdict['value']:.4g} vs. "
                f"trailing mean {verdict['baseline']:.4g} "
                f"(ratio {verdict['ratio']}, limit {args.max_ratio})",
                file=sys.stderr,
            )
            failed = True
    return 1 if failed else 0


def cmd_plot(args, out) -> int:
    from repro.harness.plotting import timeline

    runner = Runner()
    result = runner.run(
        RunConfig(benchmark=args.benchmark, scheme=args.scheme, seed=args.seed)
    )
    trace = result.stats.trace
    print(
        timeline(
            [(s.time, s.total_ctas) for s in trace],
            title=f"{args.benchmark} / {args.scheme}: concurrent CTAs over time",
        ),
        file=out,
    )
    print(file=out)
    print(
        timeline(
            [(s.time, s.utilization) for s in trace],
            title="resource utilization over time",
        ),
        file=out,
    )
    return 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return cmd_list(out)
        if args.command == "config":
            return cmd_config(out)
        if args.command == "run":
            return cmd_run(args, out)
        if args.command == "audit":
            return cmd_audit(args, out)
        if args.command == "sweep":
            return cmd_sweep(args, out)
        if args.command == "experiment":
            return cmd_experiment(args, out)
        if args.command == "suite":
            return cmd_suite(args, out)
        if args.command == "check":
            return cmd_check(args, out)
        if args.command == "cache":
            return cmd_cache(args, out)
        if args.command == "bench":
            return cmd_bench(args, out)
        if args.command == "serve":
            return cmd_serve(args, out)
        if args.command == "replay":
            return cmd_replay(args, out)
        if args.command == "perf":
            return cmd_perf(args, out)
        if args.command == "plot":
            return cmd_plot(args, out)
        raise AssertionError(f"unhandled command {args.command}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except OSError as exc:
        # Unwritable trace paths, missing cache dirs, full disks: report
        # like any other user-facing error instead of dumping a traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 1
