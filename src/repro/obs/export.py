"""Trace exporters: JSONL event dumps and Chrome ``trace_event`` JSON.

Two formats, two audiences:

* :func:`write_jsonl` — one JSON object per line, the whole structured
  event stream verbatim.  Greppable, streamable, loadable back with
  :func:`read_jsonl` for offline analysis (the decision audit accepts the
  round-tripped events).
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format consumed by ``chrome://tracing`` and Perfetto.
  CTA residencies become duration events on one track per SMX; the GMU
  contributes HWQ-occupancy and pending-kernel counter tracks; the launch
  unit contributes busy-slot/backlog counters; launch decisions appear as
  instant events on their SMX's track, carrying the SPAWN prediction
  payload in ``args`` so hovering a decision shows Equation 1 vs 2.

Timestamps: the simulator clock is in GPU cycles; the Chrome format wants
microseconds.  We write cycles as-if-microseconds (1 cycle = 1 us) — the
viewer's timeline is then labelled in cycles, which is what you want to
read anyway.
"""

from __future__ import annotations

import json
from typing import IO, Dict, Iterable, List, Tuple, Union

from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    HWQ_BIND,
    HWQ_RELEASE,
    KERNEL_ARRIVAL,
    LAUNCH_BATCH_ARRIVE,
    LAUNCH_BATCH_SERVICE,
    LAUNCH_BATCH_SUBMIT,
    LAUNCH_DECISION,
    TraceEvent,
)

PathOrFile = Union[str, IO[str]]

#: Chrome trace process ids, one per hardware component group.
PID_SMX = 0
PID_GMU = 1
PID_LAUNCH_UNIT = 2


def _open_for_write(dest: PathOrFile):
    """(file, should_close) for a path or an already-open file object."""
    if isinstance(dest, str):
        return open(dest, "w", encoding="utf-8"), True
    return dest, False


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def write_jsonl(events: Iterable[TraceEvent], dest: PathOrFile) -> int:
    """Write one JSON object per event; returns the number written."""
    fh, should_close = _open_for_write(dest)
    try:
        count = 0
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
        return count
    finally:
        if should_close:
            fh.close()


def read_jsonl(src: PathOrFile) -> List[TraceEvent]:
    """Load a JSONL dump back into :class:`TraceEvent` objects."""
    if isinstance(src, str):
        fh = open(src, "r", encoding="utf-8")
        should_close = True
    else:
        fh, should_close = src, False
    try:
        events = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            ts = obj.pop("ts")
            kind = obj.pop("kind")
            events.append(TraceEvent(ts, kind, obj))
        return events
    finally:
        if should_close:
            fh.close()


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------
def _metadata(pid: int, name: str) -> Dict[str, object]:
    return {
        "ph": "M",
        "name": "process_name",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def _thread_name(pid: int, tid: int, name: str) -> Dict[str, object]:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _counter(pid: int, ts: float, name: str, values: Dict[str, float]):
    return {"ph": "C", "pid": pid, "tid": 0, "ts": ts, "name": name, "args": values}


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Build a ``trace_event`` document (``{"traceEvents": [...]}``).

    One duration track per SMX, counter tracks for the GMU and launch
    unit, instant markers for launch decisions.
    """
    trace: List[Dict[str, object]] = [
        _metadata(PID_SMX, "SMXs"),
        _metadata(PID_GMU, "GMU"),
        _metadata(PID_LAUNCH_UNIT, "Launch unit"),
    ]
    open_ctas: Dict[Tuple[int, int], TraceEvent] = {}
    smx_seen: Dict[int, None] = {}
    for event in events:
        kind = event.kind
        args = event.args
        if kind == CTA_DISPATCH:
            open_ctas[(args["kernel_id"], args["cta_index"])] = event
            smx_seen.setdefault(args["smx"], None)
        elif kind == CTA_FINISH:
            start = open_ctas.pop((args["kernel_id"], args["cta_index"]), None)
            if start is None:
                continue  # dispatch fell off a ring buffer; skip the slice
            trace.append(
                {
                    "ph": "X",
                    "pid": PID_SMX,
                    "tid": start.args["smx"],
                    "ts": start.ts,
                    "dur": max(event.ts - start.ts, 0.0),
                    "name": f"{start.args['kernel']}#{args['cta_index']}",
                    "cat": "child" if start.args.get("is_child") else "parent",
                    "args": {
                        "kernel_id": args["kernel_id"],
                        "cta_index": args["cta_index"],
                    },
                }
            )
        elif kind in (HWQ_BIND, HWQ_RELEASE):
            trace.append(
                _counter(PID_GMU, event.ts, "HWQ occupancy", {"bound": args["bound"]})
            )
        elif kind == KERNEL_ARRIVAL:
            if "pending" in args:
                trace.append(
                    _counter(
                        PID_GMU, event.ts, "pending kernels",
                        {"pending": args["pending"]},
                    )
                )
        elif kind in (LAUNCH_BATCH_SUBMIT, LAUNCH_BATCH_SERVICE, LAUNCH_BATCH_ARRIVE):
            trace.append(
                _counter(
                    PID_LAUNCH_UNIT,
                    event.ts,
                    "launch unit",
                    {"busy_slots": args["busy_slots"], "backlog": args["backlog"]},
                )
            )
        elif kind == LAUNCH_DECISION:
            marker = {
                "ph": "i",
                "s": "t",
                "pid": PID_SMX,
                "tid": args.get("smx", 0),
                "ts": event.ts,
                "name": f"decision:{args['verdict']}",
                "cat": "decision",
                "args": {
                    k: v
                    for k, v in args.items()
                    if k not in ("smx",) and v is not None
                },
            }
            smx_seen.setdefault(args.get("smx", 0), None)
            trace.append(marker)
    for smx in sorted(smx_seen):
        trace.append(_thread_name(PID_SMX, smx, f"SMX {smx}"))
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: Iterable[TraceEvent], dest: PathOrFile) -> int:
    """Write the Chrome trace JSON; returns the number of trace entries."""
    doc = chrome_trace(events)
    fh, should_close = _open_for_write(dest)
    try:
        json.dump(doc, fh)
        return len(doc["traceEvents"])
    finally:
        if should_close:
            fh.close()
