"""Trace exporters: JSONL event dumps and Chrome ``trace_event`` JSON.

Two formats, two audiences:

* :func:`write_jsonl` — one JSON object per line, the whole structured
  event stream verbatim.  Greppable, streamable, loadable back with
  :func:`read_jsonl` for offline analysis (the decision audit accepts the
  round-tripped events).
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` format consumed by ``chrome://tracing`` and Perfetto.
  CTA residencies become duration events on one track per SMX; the GMU
  contributes HWQ-occupancy and pending-kernel counter tracks; the launch
  unit contributes busy-slot/backlog counters; launch decisions appear as
  instant events on their SMX's track, carrying the SPAWN prediction
  payload in ``args`` so hovering a decision shows Equation 1 vs 2.

Timestamps: the simulator clock is in GPU cycles; the Chrome format wants
microseconds.  We write cycles as-if-microseconds (1 cycle = 1 us) — the
viewer's timeline is then labelled in cycles, which is what you want to
read anyway.

``service.*`` and ``harness.*`` events are different: they are stamped
with *wall-clock seconds* (``time.perf_counter``), not simulated cycles.
They get their own process tracks ("Service", "Harness"), their
timestamps are rebased to the first wall-clock event and scaled to real
microseconds, and each service request renders as a duration slice from
its submit to its terminal event (cache hit, coalesce, shed, complete,
or quarantine) on a free request lane — overlapping in-flight requests
occupy separate lanes, batch dispatches render on lane 0.
"""

from __future__ import annotations

import heapq
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Dict, Iterable, List, Tuple, Union

from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    HWQ_BIND,
    HWQ_RELEASE,
    KERNEL_ARRIVAL,
    LAUNCH_BATCH_ARRIVE,
    LAUNCH_BATCH_SERVICE,
    LAUNCH_BATCH_SUBMIT,
    LAUNCH_DECISION,
    SERVICE_ADMIT,
    SERVICE_BATCH,
    SERVICE_CACHE_HIT,
    SERVICE_COALESCE,
    SERVICE_COMPLETE,
    SERVICE_INLINE,
    SERVICE_QUARANTINE,
    SERVICE_SHED,
    SERVICE_SUBMIT,
    TraceEvent,
)

PathOrFile = Union[str, IO[str]]

#: Chrome trace process ids, one per hardware component group; the
#: serving/harness layers (wall-clock stamped) get their own processes.
PID_SMX = 0
PID_GMU = 1
PID_LAUNCH_UNIT = 2
PID_SERVICE = 3
PID_HARNESS = 4

#: Wall-clock seconds -> trace microseconds.
_WALL_SCALE = 1e6

#: Submit-time terminal kinds: the submission's whole story happened
#: inside one ``submit`` call, so its slice closes immediately.
_SERVICE_IMMEDIATE = frozenset(
    {SERVICE_CACHE_HIT, SERVICE_COALESCE, SERVICE_SHED}
)

#: Kinds that close an admitted/inline request slice.
_SERVICE_TERMINAL = frozenset({SERVICE_COMPLETE, SERVICE_QUARANTINE})


def _open_for_write(dest: PathOrFile):
    """(file, should_close) for a path or an already-open file object."""
    if isinstance(dest, str):
        return open(dest, "w", encoding="utf-8"), True
    return dest, False


def write_json_atomic(payload: object, path) -> Path:
    """Serialize ``payload`` to ``path`` via temp file + ``os.replace``.

    The store's directory-backend idiom applied to report files
    (``repro serve/replay --stats-json``, ``repro perf --json``): the
    JSON is fully serialized before the disk is touched, written to a
    temp file in the destination directory, and renamed into place — a
    reader (or a crash mid-write) can never observe a truncated file.
    Returns the destination path.
    """
    path = Path(path)
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp",
        dir=path.parent if str(path.parent) else ".",
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------
def write_jsonl(events: Iterable[TraceEvent], dest: PathOrFile) -> int:
    """Write one JSON object per event; returns the number written."""
    fh, should_close = _open_for_write(dest)
    try:
        count = 0
        for event in events:
            fh.write(json.dumps(event.to_dict(), sort_keys=True))
            fh.write("\n")
            count += 1
        return count
    finally:
        if should_close:
            fh.close()


def read_jsonl(src: PathOrFile) -> List[TraceEvent]:
    """Load a JSONL dump back into :class:`TraceEvent` objects."""
    if isinstance(src, str):
        fh = open(src, "r", encoding="utf-8")
        should_close = True
    else:
        fh, should_close = src, False
    try:
        events = []
        for line in fh:
            line = line.strip()
            if not line:
                continue
            obj = json.loads(line)
            ts = obj.pop("ts")
            kind = obj.pop("kind")
            events.append(TraceEvent(ts, kind, obj))
        return events
    finally:
        if should_close:
            fh.close()


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------
def _metadata(pid: int, name: str) -> Dict[str, object]:
    return {
        "ph": "M",
        "name": "process_name",
        "pid": pid,
        "tid": 0,
        "args": {"name": name},
    }


def _thread_name(pid: int, tid: int, name: str) -> Dict[str, object]:
    return {
        "ph": "M",
        "name": "thread_name",
        "pid": pid,
        "tid": tid,
        "args": {"name": name},
    }


def _counter(pid: int, ts: float, name: str, values: Dict[str, float]):
    return {"ph": "C", "pid": pid, "tid": 0, "ts": ts, "name": name, "args": values}


def chrome_trace(events: Iterable[TraceEvent]) -> Dict[str, object]:
    """Build a ``trace_event`` document (``{"traceEvents": [...]}``).

    One duration track per SMX, counter tracks for the GMU and launch
    unit, instant markers for launch decisions.
    """
    trace: List[Dict[str, object]] = [
        _metadata(PID_SMX, "SMXs"),
        _metadata(PID_GMU, "GMU"),
        _metadata(PID_LAUNCH_UNIT, "Launch unit"),
    ]
    open_ctas: Dict[Tuple[int, int], TraceEvent] = {}
    smx_seen: Dict[int, None] = {}
    wall_events: List[TraceEvent] = []
    for event in events:
        kind = event.kind
        args = event.args
        if kind.startswith("service.") or kind.startswith("harness."):
            # Wall-clock stamped: rendered after the simulated tracks,
            # rebased to their own epoch (see _wall_clock_tracks).
            wall_events.append(event)
            continue
        if kind == CTA_DISPATCH:
            open_ctas[(args["kernel_id"], args["cta_index"])] = event
            smx_seen.setdefault(args["smx"], None)
        elif kind == CTA_FINISH:
            start = open_ctas.pop((args["kernel_id"], args["cta_index"]), None)
            if start is None:
                continue  # dispatch fell off a ring buffer; skip the slice
            trace.append(
                {
                    "ph": "X",
                    "pid": PID_SMX,
                    "tid": start.args["smx"],
                    "ts": start.ts,
                    "dur": max(event.ts - start.ts, 0.0),
                    "name": f"{start.args['kernel']}#{args['cta_index']}",
                    "cat": "child" if start.args.get("is_child") else "parent",
                    "args": {
                        "kernel_id": args["kernel_id"],
                        "cta_index": args["cta_index"],
                    },
                }
            )
        elif kind in (HWQ_BIND, HWQ_RELEASE):
            trace.append(
                _counter(PID_GMU, event.ts, "HWQ occupancy", {"bound": args["bound"]})
            )
        elif kind == KERNEL_ARRIVAL:
            if "pending" in args:
                trace.append(
                    _counter(
                        PID_GMU, event.ts, "pending kernels",
                        {"pending": args["pending"]},
                    )
                )
        elif kind in (LAUNCH_BATCH_SUBMIT, LAUNCH_BATCH_SERVICE, LAUNCH_BATCH_ARRIVE):
            trace.append(
                _counter(
                    PID_LAUNCH_UNIT,
                    event.ts,
                    "launch unit",
                    {"busy_slots": args["busy_slots"], "backlog": args["backlog"]},
                )
            )
        elif kind == LAUNCH_DECISION:
            marker = {
                "ph": "i",
                "s": "t",
                "pid": PID_SMX,
                "tid": args.get("smx", 0),
                "ts": event.ts,
                "name": f"decision:{args['verdict']}",
                "cat": "decision",
                "args": {
                    k: v
                    for k, v in args.items()
                    if k not in ("smx",) and v is not None
                },
            }
            smx_seen.setdefault(args.get("smx", 0), None)
            trace.append(marker)
    for smx in sorted(smx_seen):
        trace.append(_thread_name(PID_SMX, smx, f"SMX {smx}"))
    if wall_events:
        _wall_clock_tracks(wall_events, trace)
    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def _wall_clock_tracks(
    wall_events: List[TraceEvent], trace: List[Dict[str, object]]
) -> None:
    """Render ``service.*`` / ``harness.*`` events onto their own tracks.

    Timestamps are wall-clock seconds; they are rebased so the first
    wall-clock event sits at t=0 and scaled to microseconds.  Each
    service request becomes one duration slice from its submit to its
    terminal event; concurrently in-flight requests are spread over
    request lanes (lowest free lane wins, so a quiet service stays on
    one line).  Batch dispatches render on lane 0; harness recovery
    actions are instant markers on the Harness track.
    """
    epoch = min(event.ts for event in wall_events)

    def us(ts: float) -> float:
        return (ts - epoch) * _WALL_SCALE

    def public_args(args: Dict[str, object]) -> Dict[str, object]:
        return {k: v for k, v in args.items() if v is not None}

    free_lanes: List[int] = []
    next_lane = 1
    lanes_used = 0

    def alloc_lane() -> int:
        nonlocal next_lane, lanes_used
        if free_lanes:
            lane = heapq.heappop(free_lanes)
        else:
            lane = next_lane
            next_lane += 1
        lanes_used = max(lanes_used, lane)
        return lane

    # The most recent SERVICE_SUBMIT not yet claimed by a routing event.
    # Submission routing is synchronous (submit -> its verdict emits
    # before any other submit can run on the event loop), so last-wins
    # matching is exact, not heuristic.
    pending_submit = None
    # (benchmark, scheme) -> FIFO of (submit_event, lane, route) for
    # admitted/inline jobs awaiting their COMPLETE/QUARANTINE.
    open_requests: Dict[Tuple[str, str], List] = {}
    service_seen = False
    harness_seen = False

    def close_slice(submit, lane, name, end_ts, args):
        heapq.heappush(free_lanes, lane)
        trace.append(
            {
                "ph": "X",
                "pid": PID_SERVICE,
                "tid": lane,
                "ts": us(submit.ts),
                "dur": max(us(end_ts) - us(submit.ts), 0.0),
                "name": name,
                "cat": "service",
                "args": args,
            }
        )

    for event in wall_events:
        kind = event.kind
        args = event.args
        if kind.startswith("harness."):
            harness_seen = True
            trace.append(
                {
                    "ph": "i",
                    "s": "t",
                    "pid": PID_HARNESS,
                    "tid": 0,
                    "ts": us(event.ts),
                    "name": kind.split(".", 1)[1],
                    "cat": "harness",
                    "args": public_args(args),
                }
            )
            continue
        service_seen = True
        pair = f"{args.get('benchmark')}/{args.get('scheme')}"
        key = (args.get("benchmark"), args.get("scheme"))
        if kind == SERVICE_SUBMIT:
            pending_submit = event
        elif kind in _SERVICE_IMMEDIATE:
            suffix = kind.split(".", 1)[1]
            if pending_submit is not None:
                close_slice(
                    pending_submit, alloc_lane(), f"{suffix}:{pair}",
                    event.ts, public_args(args),
                )
                pending_submit = None
            else:  # submit fell off a ring buffer
                trace.append(
                    {
                        "ph": "i", "s": "t", "pid": PID_SERVICE, "tid": 0,
                        "ts": us(event.ts), "name": f"{suffix}:{pair}",
                        "cat": "service", "args": public_args(args),
                    }
                )
        elif kind in (SERVICE_ADMIT, SERVICE_INLINE):
            route = "inline" if kind == SERVICE_INLINE else "batch"
            if pending_submit is not None:
                open_requests.setdefault(key, []).append(
                    (pending_submit, alloc_lane(), route)
                )
                pending_submit = None
        elif kind in _SERVICE_TERMINAL:
            waiting = open_requests.get(key)
            if waiting:
                submit, lane, route = waiting.pop(0)
                suffix = (
                    "quarantine" if kind == SERVICE_QUARANTINE else route
                )
                close_slice(
                    submit, lane, f"{suffix}:{pair}",
                    event.ts, public_args(args),
                )
            else:  # orphan terminal (truncated stream): keep it visible
                trace.append(
                    {
                        "ph": "i", "s": "t", "pid": PID_SERVICE, "tid": 0,
                        "ts": us(event.ts),
                        "name": f"{kind.split('.', 1)[1]}:{pair}",
                        "cat": "service", "args": public_args(args),
                    }
                )
        elif kind == SERVICE_BATCH:
            seconds = float(args.get("seconds", 0.0))
            trace.append(
                {
                    "ph": "X",
                    "pid": PID_SERVICE,
                    "tid": 0,
                    "ts": us(event.ts - seconds),
                    "dur": max(seconds * _WALL_SCALE, 0.0),
                    "name": f"batch[{args.get('size')}]",
                    "cat": "service",
                    "args": public_args(args),
                }
            )
    # In-flight requests at stream end have no terminal event; they are
    # dropped, matching the CTA exporter's treatment of dangling opens.
    if service_seen:
        trace.append(_metadata(PID_SERVICE, "Service"))
        trace.append(_thread_name(PID_SERVICE, 0, "batches"))
        for lane in range(1, lanes_used + 1):
            trace.append(_thread_name(PID_SERVICE, lane, f"request lane {lane}"))
    if harness_seen:
        trace.append(_metadata(PID_HARNESS, "Harness"))
        trace.append(_thread_name(PID_HARNESS, 0, "recovery"))


def write_chrome_trace(events: Iterable[TraceEvent], dest: PathOrFile) -> int:
    """Write the Chrome trace JSON; returns the number of trace entries."""
    doc = chrome_trace(events)
    fh, should_close = _open_for_write(dest)
    try:
        json.dump(doc, fh)
        return len(doc["traceEvents"])
    finally:
        if should_close:
            fh.close()
