"""Counter/timer registry for harness-level wall-clock profiling.

The simulator is pure Python, so knowing *which simulator* is slow matters
as much as knowing which modelled GPU component is busy.  This registry
answers the first question: named monotonic counters plus wall-clock
timers with a :func:`Registry.profile` context manager, aggregated across
runs.  The harness runner times every ``sim.run`` through the module-level
:data:`REGISTRY`; ``repro run --profile`` prints the resulting table.

Deliberately tiny and dependency-free: ``time.perf_counter`` and dicts.
Timers nest safely (each ``profile`` call keeps its own start time on the
stack frame) and the registry is per-process, matching the runner's
per-process result cache.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Tuple


class TimerStat:
    """Aggregate of one named timer: call count and total/max seconds."""

    __slots__ = ("count", "total", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.max = 0.0

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total += elapsed
        if elapsed > self.max:
            self.max = elapsed

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


class Registry:
    """Named counters and wall-clock timers."""

    def __init__(self) -> None:
        self.counters: Dict[str, float] = {}
        self.timers: Dict[str, TimerStat] = {}

    # -- counters -------------------------------------------------------
    def count(self, name: str, delta: float = 1.0) -> float:
        """Bump (or create) a counter; returns the new value."""
        value = self.counters.get(name, 0.0) + delta
        self.counters[name] = value
        return value

    # -- timers ---------------------------------------------------------
    @contextmanager
    def profile(self, name: str) -> Iterator[None]:
        """Time the enclosed block under ``name`` (aggregating repeats)."""
        start = time.perf_counter()
        try:
            yield
        finally:
            stat = self.timers.get(name)
            if stat is None:
                stat = self.timers[name] = TimerStat()
            stat.add(time.perf_counter() - start)

    def add_time(self, name: str, elapsed: float) -> None:
        """Record an externally measured duration under ``name``."""
        stat = self.timers.get(name)
        if stat is None:
            stat = self.timers[name] = TimerStat()
        stat.add(elapsed)

    # -- reporting ------------------------------------------------------
    def timer_rows(self) -> List[Tuple[str, int, float, float, float]]:
        """(name, calls, total_s, mean_s, max_s), slowest total first."""
        return [
            (name, stat.count, stat.total, stat.mean, stat.max)
            for name, stat in sorted(
                self.timers.items(), key=lambda kv: kv[1].total, reverse=True
            )
        ]

    def counter_rows(self) -> List[Tuple[str, float]]:
        return sorted(self.counters.items())

    def clear(self) -> None:
        self.counters.clear()
        self.timers.clear()


#: Process-wide default registry (used by the harness runner and CLI).
REGISTRY = Registry()


@contextmanager
def profile(name: str) -> Iterator[None]:
    """Shorthand for ``REGISTRY.profile(name)``."""
    with REGISTRY.profile(name):
        yield
