"""SPAWN decision audit: how good were the controller's predictions?

Algorithm 1 approves a launch when its *predicted* child completion time
``t_child = t_overhead + (n + x) * t_cta / n_con`` (Equation 1) beats the
*predicted* serial fallback ``t_parent = workload * t_warp`` (Equation 2).
The simulator's aggregate stats show the outcome mix but not the quality
of those per-launch predictions.  This module reconstructs it from a
trace:

* every :data:`~repro.obs.tracer.LAUNCH_DECISION` event becomes a
  :class:`DecisionAuditRecord` holding the monitored inputs (``n``,
  ``n_con``, ``t_cta``, ``t_warp``), both predictions, and the verdict;
* launched decisions are *joined* against the child kernel's
  :data:`~repro.obs.tracer.KERNEL_COMPLETE` event, giving the **actual**
  ``t_child`` (completion time minus decision time — the same quantity
  Equation 1 estimates: queuing through the CCQS plus execution);
* :class:`DecisionAudit` then summarizes per-run prediction error
  (mean/max relative error, bias), the KLARAPTOR-style measurement that
  tells you whether the controller's model fits a workload.

Bootstrap decisions (taken before any child CTA completed, when
``t_cta == 0`` forces an unconditional launch) carry no prediction and are
counted separately — they are exactly the blind window behind the paper's
SSSP-graph500 pathology.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.obs.tracer import KERNEL_COMPLETE, LAUNCH_DECISION, TraceEvent


@dataclass
class DecisionAuditRecord:
    """One launch decision with its inputs, predictions, and outcome."""

    time: float
    verdict: str  # DecisionKind value: launch | serial | coalesce | reuse
    items: int
    num_ctas: int
    depth: int
    parent_kernel_id: int
    child_kernel_id: Optional[int] = None
    # SPAWN controller internals (None for policies without predictions).
    n: Optional[int] = None
    n_con: Optional[int] = None
    t_cta: Optional[float] = None
    t_warp: Optional[float] = None
    t_child_pred: Optional[float] = None
    t_parent_pred: Optional[float] = None
    bootstrap: bool = False
    # Joined after the run from the child's completion event.
    t_child_actual: Optional[float] = None

    @property
    def launched(self) -> bool:
        return self.verdict in ("launch", "coalesce")

    @property
    def has_prediction(self) -> bool:
        """True when Equation 1/2 actually ran (non-bootstrap SPAWN path)."""
        return self.t_child_pred is not None and not self.bootstrap

    @property
    def joined(self) -> bool:
        return self.has_prediction and self.t_child_actual is not None

    @property
    def abs_error(self) -> Optional[float]:
        if not self.joined:
            return None
        return self.t_child_pred - self.t_child_actual

    @property
    def rel_error(self) -> Optional[float]:
        """|predicted - actual| / actual, the per-launch model error."""
        if not self.joined or self.t_child_actual <= 0:
            return None
        return abs(self.t_child_pred - self.t_child_actual) / self.t_child_actual


class DecisionAudit:
    """All decisions of one run, with summary statistics."""

    def __init__(self, records: List[DecisionAuditRecord]):
        self.records = records

    @classmethod
    def from_events(cls, events: Iterable[TraceEvent]) -> "DecisionAudit":
        """Build records from a trace and join child completion times."""
        completions: Dict[int, float] = {}
        decision_events: List[TraceEvent] = []
        for event in events:
            if event.kind == LAUNCH_DECISION:
                decision_events.append(event)
            elif event.kind == KERNEL_COMPLETE:
                completions[event.args["kernel_id"]] = event.ts
        records: List[DecisionAuditRecord] = []
        for event in decision_events:
            a = event.args
            record = DecisionAuditRecord(
                time=event.ts,
                verdict=a["verdict"],
                items=a["items"],
                num_ctas=a["num_ctas"],
                depth=a["depth"],
                parent_kernel_id=a["parent_kernel_id"],
                child_kernel_id=a.get("child_kernel_id"),
                n=a.get("n"),
                n_con=a.get("n_con"),
                t_cta=a.get("t_cta"),
                t_warp=a.get("t_warp"),
                t_child_pred=a.get("t_child"),
                t_parent_pred=a.get("t_parent"),
                bootstrap=bool(a.get("bootstrap", False)),
            )
            if record.has_prediction and record.child_kernel_id is not None:
                done = completions.get(record.child_kernel_id)
                if done is not None:
                    record.t_child_actual = done - record.time
            records.append(record)
        return cls(records)

    # ------------------------------------------------------------------
    # Summary statistics
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.records)

    def stats(self) -> Dict[str, float]:
        """Headline prediction-quality numbers for reports and tests."""
        launched = sum(1 for r in self.records if r.launched)
        declined = sum(1 for r in self.records if r.verdict == "serial")
        bootstrap = sum(1 for r in self.records if r.bootstrap)
        joined = [r for r in self.records if r.joined]
        rel_errors = [r.rel_error for r in joined if r.rel_error is not None]
        abs_errors = [r.abs_error for r in joined]
        out: Dict[str, float] = {
            "decisions": len(self.records),
            "launched": launched,
            "declined": declined,
            "bootstrap": bootstrap,
            "predicted": sum(1 for r in self.records if r.has_prediction),
            "joined": len(joined),
        }
        if rel_errors:
            out["mean_rel_error"] = sum(rel_errors) / len(rel_errors)
            out["max_rel_error"] = max(rel_errors)
            # Signed bias: positive means the controller over-estimates
            # t_child, i.e. it is conservative about launching.
            out["mean_bias"] = sum(abs_errors) / len(abs_errors)
            out["mean_t_child_pred"] = sum(r.t_child_pred for r in joined) / len(joined)
            out["mean_t_child_actual"] = sum(r.t_child_actual for r in joined) / len(
                joined
            )
        return out
