"""Serving-layer metrics: counters, gauges, and latency histograms.

The SPAWN controller is driven entirely by *measured* signals — predicted
vs. actual child-kernel time, queue occupancy — and the serving stack
deserves the same treatment.  This module is the measurement substrate:
a dependency-free metrics model (``time.perf_counter`` + dicts, exactly
like :mod:`repro.obs.profile`) with three instrument kinds and a
process-wide registry.

* :class:`Counter` — monotonically increasing totals (requests routed,
  cache hits, retries).
* :class:`Gauge` — a value that goes both ways (queue depth, in-flight).
* :class:`Histogram` — fixed-bucket latency distributions.  Bucket
  boundaries are fixed at construction, counts are cumulative-free per
  bucket, and quantile extraction uses exact nearest-rank selection over
  the bucket counts: the returned estimate always lies inside the same
  bucket interval as the exact rank-selected sample, so it is off by at
  most one bucket width (the property tests pin this against a sorted
  reference).
* :class:`MetricsRegistry` — named, labelled instruments with JSON
  (``to_dict``) and Prometheus text (``to_prometheus``) exporters.
  :data:`METRICS` is the process-wide default, the sibling of
  :data:`repro.obs.profile.REGISTRY` (wall-clock timers answer "which
  simulator is slow"; these metrics answer "how is the *service* doing").

Registries are per-process and unsynchronised, matching the rest of the
observability layer: the service event loop and the harness both live in
the parent process, and worker processes never report metrics directly —
their effects are observed from the parent side.

Well-known instrument names (the dashboard contract):

* ``store.reads_total{backend=, outcome=hit|miss}`` and
  ``store.io_seconds{backend=, op=load|save}`` — emitted by the
  :class:`~repro.harness.store.ResultStore` *wrapper*, never by
  individual backends, so every backend (``dir``/``sqlite``/``kv``)
  reports under the same names and differs only in the ``backend`` label.
* ``fleet.requests_total{shard=}``, ``fleet.failovers_total``,
  ``fleet.shed_total`` — front-door accounting of
  :class:`~repro.service.fleet.ServiceFleet`.  Shards share one
  registry, so service-level latency histograms merge fleet-wide.
"""

from __future__ import annotations

import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default latency buckets (seconds): sub-millisecond to a minute, with
#: roughly 2-2.5x steps — the classic Prometheus-style ladder.  Serving
#: latencies for the cheap benchmark pairs sit in the low buckets; a
#: pool dispatch of a slow pair lands in the seconds range.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Finer ladder for store/file IO, which is microseconds-to-milliseconds.
DEFAULT_IO_BUCKETS: Tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
    0.01, 0.025, 0.05, 0.1, 0.5, 1.0,
)

#: Label set type: sorted (key, value) pairs, hashable.
LabelSet = Tuple[Tuple[str, str], ...]


def exact_quantile(samples: Sequence[float], q: float) -> float:
    """Nearest-rank quantile of ``samples`` (the histogram's reference).

    Rank ``ceil(q * n)`` (1-based, clamped to ``[1, n]``) of the sorted
    samples — the same selection rule :meth:`Histogram.quantile` applies
    to its bucket counts, so the two agree to within one bucket width.
    """
    if not samples:
        raise ValueError("quantile of an empty sample set")
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"quantile must be in [0, 1], got {q}")
    ordered = sorted(samples)
    rank = min(max(math.ceil(q * len(ordered)), 1), len(ordered))
    return ordered[rank - 1]


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, delta: float = 1.0) -> float:
        if delta < 0:
            raise ValueError(f"counter increments must be >= 0, got {delta}")
        self.value += delta
        return self.value


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> float:
        self.value = float(value)
        return self.value

    def inc(self, delta: float = 1.0) -> float:
        self.value += delta
        return self.value

    def dec(self, delta: float = 1.0) -> float:
        self.value -= delta
        return self.value


class Histogram:
    """Fixed-bucket distribution with exact nearest-rank quantiles.

    ``bounds`` are the finite bucket upper edges (strictly increasing);
    an implicit overflow bucket catches everything past the last edge.
    Observations must be non-negative (these are latencies).  Quantile
    extraction locates the bucket holding the rank-``ceil(q*count)``
    sample from the per-bucket counts — exactly the bucket the sorted
    reference sample sits in — and interpolates linearly inside it, so
    the estimate and the exact value share one bucket interval.  The
    overflow bucket spans ``(last_bound, max_observed]``.
    """

    __slots__ = ("bounds", "counts", "count", "sum", "min", "max")

    def __init__(self, bounds: Sequence[float] = DEFAULT_LATENCY_BUCKETS):
        bounds = tuple(float(b) for b in bounds)
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if any(b <= 0 for b in bounds):
            raise ValueError("bucket bounds must be positive")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError("bucket bounds must be strictly increasing")
        self.bounds = bounds
        #: Per-bucket counts; the final slot is the overflow bucket.
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"histogram observations must be >= 0, got {value}")
        self.counts[self._bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def _bucket_index(self, value: float) -> int:
        # Linear scan: bucket ladders are short (~16) and observations
        # skew low, so this beats bisect's call overhead in practice.
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                return index
        return len(self.bounds)

    def bucket_edges(self, index: int) -> Tuple[float, float]:
        """``(lower, upper]`` edges of bucket ``index``.

        The first bucket's lower edge is 0 (observations are
        non-negative); the overflow bucket's upper edge is the maximum
        observed value (or the last bound before any overflow sample).
        """
        lower = 0.0 if index == 0 else self.bounds[index - 1]
        if index < len(self.bounds):
            return lower, self.bounds[index]
        upper = self.max if self.max > self.bounds[-1] else self.bounds[-1]
        return lower, upper

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile estimate, or None for an empty histogram.

        Within one bucket width of :func:`exact_quantile` over the raw
        samples, and additionally clamped to the observed ``[min, max]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return None
        rank = min(max(math.ceil(q * self.count), 1), self.count)
        seen = 0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                continue
            if rank <= seen + bucket_count:
                lower, upper = self.bucket_edges(index)
                position = (rank - seen) / bucket_count
                estimate = lower + (upper - lower) * position
                return min(max(estimate, self.min), self.max)
            seen += bucket_count
        # Unreachable: rank <= count == sum(counts).
        raise AssertionError("rank fell past every bucket")

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentiles(self) -> Dict[str, float]:
        """The headline latency quantiles (empty dict when no data)."""
        if self.count == 0:
            return {}
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def summary(self) -> Dict[str, float]:
        """JSON-ready digest: count/sum/mean/min/max plus percentiles."""
        if self.count == 0:
            return {"count": 0}
        out: Dict[str, float] = {
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
        }
        out.update(self.percentiles())
        return out


def _labelset(labels: Dict[str, str]) -> LabelSet:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in labels) + "}"


def _prom_name(name: str) -> str:
    """Sanitize a dotted metric name into the Prometheus charset."""
    return "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )


def _prom_labels(labels: LabelSet) -> str:
    if not labels:
        return ""
    return "{" + ",".join(f'{k}="{v}"' for k, v in labels) + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


class MetricsRegistry:
    """Named, labelled counters/gauges/histograms with two exporters.

    Instruments are created on first use and shared on every later call
    with the same ``(name, labels)``; re-requesting a name as a different
    instrument kind is a programming error and raises ``ValueError``.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelSet], object] = {}

    # -- instrument accessors -------------------------------------------
    def _get(self, name: str, labels: LabelSet, factory, kind) -> object:
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = self._metrics[key] = factory()
        elif not isinstance(metric, kind):
            raise ValueError(
                f"metric {name}{_render_labels(labels)} is a "
                f"{type(metric).__name__}, not a {kind.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get(name, _labelset(labels), Counter, Counter)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get(name, _labelset(labels), Gauge, Gauge)

    def histogram(
        self,
        name: str,
        buckets: Optional[Sequence[float]] = None,
        **labels: str,
    ) -> Histogram:
        bounds = tuple(buckets) if buckets is not None else DEFAULT_LATENCY_BUCKETS
        return self._get(
            name, _labelset(labels), lambda: Histogram(bounds), Histogram
        )

    # -- introspection --------------------------------------------------
    def collect(self) -> Iterator[Tuple[str, LabelSet, object]]:
        """Every registered ``(name, labels, instrument)``, sorted."""
        for (name, labels), metric in sorted(
            self._metrics.items(), key=lambda kv: kv[0]
        ):
            yield name, labels, metric

    def clear(self) -> None:
        self._metrics.clear()

    def __len__(self) -> int:
        return len(self._metrics)

    # -- exporters ------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict[str, object]]:
        """JSON-ready snapshot, keyed ``name{label=value,...}``."""
        out: Dict[str, Dict[str, object]] = {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        for name, labels, metric in self.collect():
            key = f"{name}{_render_labels(labels)}"
            if isinstance(metric, Counter):
                out["counters"][key] = metric.value
            elif isinstance(metric, Gauge):
                out["gauges"][key] = metric.value
            else:
                assert isinstance(metric, Histogram)
                out["histograms"][key] = metric.summary()
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (v0.0.4)."""
        by_name: Dict[str, List[Tuple[LabelSet, object]]] = {}
        kinds: Dict[str, str] = {}
        for name, labels, metric in self.collect():
            by_name.setdefault(name, []).append((labels, metric))
            kinds[name] = (
                "counter" if isinstance(metric, Counter)
                else "gauge" if isinstance(metric, Gauge)
                else "histogram"
            )
        lines: List[str] = []
        for name in sorted(by_name):
            prom = _prom_name(name)
            lines.append(f"# TYPE {prom} {kinds[name]}")
            for labels, metric in by_name[name]:
                if isinstance(metric, (Counter, Gauge)):
                    lines.append(
                        f"{prom}{_prom_labels(labels)} "
                        f"{_format_value(metric.value)}"
                    )
                    continue
                assert isinstance(metric, Histogram)
                cumulative = 0
                for index, bound in enumerate(metric.bounds):
                    cumulative += metric.counts[index]
                    le = labels + (("le", _format_value(bound)),)
                    lines.append(f"{prom}_bucket{_prom_labels(le)} {cumulative}")
                le = labels + (("le", "+Inf"),)
                lines.append(f"{prom}_bucket{_prom_labels(le)} {metric.count}")
                lines.append(
                    f"{prom}_sum{_prom_labels(labels)} "
                    f"{_format_value(metric.sum)}"
                )
                lines.append(f"{prom}_count{_prom_labels(labels)} {metric.count}")
        return "\n".join(lines) + ("\n" if lines else "")


#: Process-wide default registry (the serving stack's instruments live
#: here unless a caller injects its own registry for isolation).
METRICS = MetricsRegistry()
