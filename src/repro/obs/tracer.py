"""Structured event tracing for the simulator.

The simulator's components emit *typed events* — kernel lifecycle, CTA
dispatch/finish, HWQ occupancy changes, launch-unit batches, and every
launch decision — through a :class:`Tracer`.  Three properties drive the
design:

* **Zero overhead when off.**  The engine holds a :data:`NULL_TRACER` by
  default; every instrumentation site is guarded by ``tracer.enabled``, a
  plain attribute read, so an untraced run executes no tracing code and its
  event stream (and makespan) is bit-identical to the pre-instrumentation
  simulator.
* **Structured, not stringly.**  Events are ``(ts, kind, args)`` records
  with well-known kind constants (below), so downstream consumers — the
  JSONL/Chrome exporters of :mod:`repro.obs.export` and the SPAWN decision
  audit of :mod:`repro.obs.audit` — join and filter without parsing.
* **Bounded or unbounded sinks.**  The default :class:`ListSink` keeps
  everything; :class:`RingBufferSink` keeps the last *N* events for
  long-running sweeps where only the tail matters.

Components that have no clock of their own (the GMU) stamp events through
the tracer's bound ``clock`` callable, which the engine points at its event
queue at the start of every run.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, Iterator, List, Optional

# ---------------------------------------------------------------------------
# Event kind constants.  Dotted names group by emitting component.
# ---------------------------------------------------------------------------
KERNEL_LAUNCH_CALL = "kernel.launch_call"  # device/host launch API executed
KERNEL_ARRIVAL = "kernel.arrival"  # kernel reached the GMU pending pool
KERNEL_FIRST_DISPATCH = "kernel.first_dispatch"  # first CTA placed
KERNEL_SUSPEND = "kernel.suspend"  # grid suspension (waiting on descendants)
KERNEL_COMPLETE = "kernel.complete"

CTA_DISPATCH = "cta.dispatch"  # CTA placed on an SMX
CTA_FINISH = "cta.finish"  # CTA compute finished, resources released

HWQ_BIND = "gmu.hwq_bind"  # a SWQ acquired a hardware work queue
HWQ_RELEASE = "gmu.hwq_release"  # a SWQ released its hardware work queue

LAUNCH_BATCH_SUBMIT = "launch_unit.submit"  # one warp's launch burst arrives
LAUNCH_BATCH_SERVICE = "launch_unit.service"  # batch enters a service slot
LAUNCH_BATCH_ARRIVE = "launch_unit.arrive"  # batch's kernels reach the GMU

LAUNCH_DECISION = "launch.decision"  # policy verdict on one launch request
LAUNCH_MERGE = "launch.merge"  # buffered requests flushed as one merged kernel

# Fault-tolerant execution layer (repro.harness.parallel).  Unlike the
# simulator kinds above, these are stamped with wall-clock seconds
# (time.perf_counter), not simulated cycles — they describe the harness
# itself, not the modelled GPU.
HARNESS_RETRY = "harness.retry"  # a failed task got another attempt
HARNESS_TIMEOUT = "harness.timeout"  # a task exceeded the per-task timeout
HARNESS_WORKER_CRASH = "harness.worker_crash"  # the process pool broke
HARNESS_REQUEUE = "harness.requeue"  # a crash-lost task was re-dispatched
HARNESS_QUARANTINE = "harness.quarantine"  # a task failed permanently
HARNESS_POOL_REBUILD = "harness.pool_rebuild"  # a fresh pool replaced a broken one
HARNESS_SERIAL_FALLBACK = "harness.serial_fallback"  # degraded to in-process

# Simulation service layer (repro.service).  Wall-clock stamped, like the
# harness kinds: they describe the serving machinery, not the modelled GPU.
SERVICE_SUBMIT = "service.submit"  # a request entered the service
SERVICE_COALESCE = "service.coalesce"  # duplicate joined an in-flight job
SERVICE_CACHE_HIT = "service.cache_hit"  # answered from the result cache
SERVICE_ADMIT = "service.admit"  # admission controller sent it to the pool
SERVICE_INLINE = "service.inline"  # small job ran on the event-loop thread
SERVICE_SHED = "service.shed"  # rejected with ServiceOverloaded
SERVICE_BATCH = "service.batch"  # one batch dispatched to the pool
SERVICE_COMPLETE = "service.complete"  # a job resolved successfully
SERVICE_QUARANTINE = "service.quarantine"  # a job failed past its retries

# Online autotuning (repro.service.autotune).  Wall-clock stamped too.
SERVICE_AUTOTUNE_ARM = "service.autotune.arm"  # a request was rewritten to an arm
SERVICE_AUTOTUNE_WARM = "service.autotune.warm"  # an arm credited from the store
SERVICE_AUTOTUNE_ROUND = "service.autotune.round"  # a halving round eliminated arms
SERVICE_AUTOTUNE_CONVERGED = "service.autotune.converged"  # one arm left

#: Every kind above, for validation and exporter dispatch.
ALL_KINDS = frozenset(
    {
        KERNEL_LAUNCH_CALL,
        KERNEL_ARRIVAL,
        KERNEL_FIRST_DISPATCH,
        KERNEL_SUSPEND,
        KERNEL_COMPLETE,
        CTA_DISPATCH,
        CTA_FINISH,
        HWQ_BIND,
        HWQ_RELEASE,
        LAUNCH_BATCH_SUBMIT,
        LAUNCH_BATCH_SERVICE,
        LAUNCH_BATCH_ARRIVE,
        LAUNCH_DECISION,
        LAUNCH_MERGE,
        HARNESS_RETRY,
        HARNESS_TIMEOUT,
        HARNESS_WORKER_CRASH,
        HARNESS_REQUEUE,
        HARNESS_QUARANTINE,
        HARNESS_POOL_REBUILD,
        HARNESS_SERIAL_FALLBACK,
        SERVICE_SUBMIT,
        SERVICE_COALESCE,
        SERVICE_CACHE_HIT,
        SERVICE_ADMIT,
        SERVICE_INLINE,
        SERVICE_SHED,
        SERVICE_BATCH,
        SERVICE_COMPLETE,
        SERVICE_QUARANTINE,
        SERVICE_AUTOTUNE_ARM,
        SERVICE_AUTOTUNE_WARM,
        SERVICE_AUTOTUNE_ROUND,
        SERVICE_AUTOTUNE_CONVERGED,
    }
)


class TraceEvent:
    """One structured event: a timestamp, a kind, and a flat args dict."""

    __slots__ = ("ts", "kind", "args")

    def __init__(self, ts: float, kind: str, args: Dict[str, object]):
        self.ts = ts
        self.kind = kind
        self.args = args

    def to_dict(self) -> Dict[str, object]:
        """Flat dict form used by the JSONL exporter."""
        out: Dict[str, object] = {"ts": self.ts, "kind": self.kind}
        out.update(self.args)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceEvent(t={self.ts:.0f}, {self.kind}, {self.args})"


class ListSink:
    """Unbounded in-memory sink (the default)."""

    def __init__(self) -> None:
        self._events: List[TraceEvent] = []

    def append(self, event: TraceEvent) -> None:
        self._events.append(event)

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class RingBufferSink:
    """Keeps only the most recent ``capacity`` events."""

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("ring buffer capacity must be positive")
        self.capacity = capacity
        self.dropped = 0
        self._events: Deque[TraceEvent] = deque(maxlen=capacity)

    def append(self, event: TraceEvent) -> None:
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(event)

    def clear(self) -> None:
        self._events.clear()
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)


class Tracer:
    """Collects :class:`TraceEvent` records from simulator components.

    ``enabled`` is the *only* thing instrumentation sites check; a tracer
    with ``enabled=False`` (see :class:`NullTracer`) costs one attribute
    read per site and allocates nothing.
    """

    enabled: bool = True

    def __init__(
        self,
        sink: Optional[object] = None,
        clock: Optional[Callable[[], float]] = None,
    ):
        self.sink = sink if sink is not None else ListSink()
        self.clock: Callable[[], float] = clock or (lambda: 0.0)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at the live simulation clock (engine does this)."""
        self.clock = clock

    def emit(self, kind: str, ts: Optional[float] = None, **args: object) -> None:
        """Record one event, stamping the bound clock unless ``ts`` given."""
        self.sink.append(TraceEvent(self.clock() if ts is None else ts, kind, args))

    def events(self) -> List[TraceEvent]:
        return list(self.sink)

    def clear(self) -> None:
        self.sink.clear()

    @property
    def num_events(self) -> int:
        return len(self.sink)

    # NOTE: deliberately no __len__ — an empty tracer must stay truthy so
    # `tracer or NULL_TRACER` style defaults cannot silently disable it.


class NullTracer(Tracer):
    """The disabled tracer: every emit is a no-op.

    Instrumentation sites guard on ``tracer.enabled`` so ``emit`` is never
    even called on the hot path; the override is belt-and-braces for
    callers that skip the guard.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(sink=ListSink())

    def emit(self, kind: str, ts: Optional[float] = None, **args: object) -> None:
        return None


#: Shared disabled tracer used as every component's default.
NULL_TRACER = NullTracer()


class MultiTracer(Tracer):
    """Fans every event out to several tracers.

    Lets one run feed independent consumers — e.g. a caller's export
    tracer *and* a :class:`repro.check.ConformanceChecker` — without the
    components knowing.  The timestamp is stamped once here so every
    child records the identical ``ts`` even if their clocks drift.
    """

    def __init__(self, tracers: Iterable[Tracer]):
        super().__init__(sink=ListSink())
        self.tracers: List[Tracer] = list(tracers)
        self.enabled = any(t.enabled for t in self.tracers)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        super().bind_clock(clock)
        for tracer in self.tracers:
            tracer.bind_clock(clock)

    def emit(self, kind: str, ts: Optional[float] = None, **args: object) -> None:
        stamped = self.clock() if ts is None else ts
        for tracer in self.tracers:
            if tracer.enabled:
                tracer.emit(kind, ts=stamped, **args)

    def events(self) -> List[TraceEvent]:
        """Events of the first event-retaining child (they see the same)."""
        for tracer in self.tracers:
            if tracer.num_events:
                return tracer.events()
        return []

    @property
    def num_events(self) -> int:
        return max((t.num_events for t in self.tracers), default=0)


def filter_events(events: Iterable[TraceEvent], kind: str) -> List[TraceEvent]:
    """Events of one kind, in emission order."""
    return [e for e in events if e.kind == kind]
