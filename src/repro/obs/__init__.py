"""Observability layer: structured tracing, SPAWN decision audit, exporters.

* :mod:`repro.obs.tracer` — typed simulator events, ring-buffer or
  unbounded sinks, and the zero-overhead disabled default;
* :mod:`repro.obs.audit` — per-decision SPAWN audit records joined with
  actual child completion times (controller prediction error);
* :mod:`repro.obs.export` — JSONL dumps and Chrome ``trace_event`` JSON
  (``chrome://tracing`` / Perfetto);
* :mod:`repro.obs.profile` — counter/timer registry with a ``profile()``
  context for harness wall-clock profiling;
* :mod:`repro.obs.metrics` — serving-layer counters/gauges/latency
  histograms with p50/p95/p99 extraction and JSON/Prometheus exporters.
"""

from repro.obs.audit import DecisionAudit, DecisionAuditRecord
from repro.obs.metrics import (
    METRICS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    exact_quantile,
)
from repro.obs.export import (
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.profile import REGISTRY, Registry, profile
from repro.obs.tracer import (
    NULL_TRACER,
    ListSink,
    NullTracer,
    RingBufferSink,
    TraceEvent,
    Tracer,
    filter_events,
)

__all__ = [
    "DecisionAudit",
    "DecisionAuditRecord",
    "METRICS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "exact_quantile",
    "chrome_trace",
    "read_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "REGISTRY",
    "Registry",
    "profile",
    "NULL_TRACER",
    "ListSink",
    "NullTracer",
    "RingBufferSink",
    "TraceEvent",
    "Tracer",
    "filter_events",
]
