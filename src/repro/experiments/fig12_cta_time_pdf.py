"""Fig. 12: distribution of child-CTA execution times.

The accuracy of SPAWN's t_cta metric rests on child CTA execution times
clustering tightly around their mean (the paper reports 95% within +/-10%
for most benchmarks, 80% for SSSP-graph500).  This experiment regenerates
the PDF summary for the paper's four representative benchmarks.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.experiments.common import FIG12_BENCHMARKS, ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    histograms = {}
    for name in benchmarks or FIG12_BENCHMARKS:
        result = runner.run(RunConfig(benchmark=name, scheme="baseline-dp", seed=seed))
        times = np.asarray(result.stats.child_cta_exec_times)
        if times.size == 0:
            rows.append((name, 0, 0.0, "0%", "0%"))
            continue
        mean = times.mean()
        within10 = float(np.mean(np.abs(times - mean) <= 0.10 * mean))
        within20 = float(np.mean(np.abs(times - mean) <= 0.20 * mean))
        rows.append(
            (
                name,
                int(times.size),
                round(float(mean), 1),
                f"{100 * within10:.0f}%",
                f"{100 * within20:.0f}%",
            )
        )
        histograms[name] = times
    return ExperimentResult(
        experiment="fig12",
        title="Child-CTA execution time distribution",
        headers=["benchmark", "child CTAs", "mean cycles", "within 10%", "within 20%"],
        rows=rows,
        extras={"times": histograms},
    )
