"""Fig. 1: workload imbalance across BFS threads.

The paper's motivating sketch shows a handful of frontier threads owning
most of the traversal work.  We regenerate it quantitatively from the
BFS-citation input: the per-thread work (vertex degree) distribution of the
largest frontier level.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import Runner
from repro.workloads import bfs


def run(runner: Optional[Runner] = None, seed: int = 1) -> ExperimentResult:
    ensure_runner(runner)
    graph = bfs._graph("citation", seed)
    levels = bfs._levels("citation", seed)
    frontier = max(levels, key=len)
    work = np.sort(graph.degrees[np.asarray(frontier)])[::-1]
    total = int(work.sum())
    rows = []
    for pct in (1, 5, 10, 25, 50):
        top = work[: max(1, len(work) * pct // 100)]
        rows.append(
            (
                f"top {pct}% threads",
                int(top.sum()),
                f"{100.0 * top.sum() / total:.1f}%",
            )
        )
    rows.append(("all threads", total, "100.0%"))
    return ExperimentResult(
        experiment="fig01",
        title="Workload imbalance in BFS (largest frontier, citation input)",
        headers=["threads", "edges owned", "share of level work"],
        rows=rows,
        notes=(
            f"threads={len(work)}, max/mean per-thread work = "
            f"{work.max() / work.mean():.1f}x"
        ),
        extras={"work": work},
    )
