"""Fig. 21: SPAWN vs Dynamic Thread Block Launch (DTBL, Wang et al.).

DTBL coalesces child CTAs onto running kernels: it eliminates the
per-kernel launch overhead but not the CTA queuing.  The paper's pattern:
SPAWN wins on SA (CTA-concurrency-bound), roughly ties on MM, and loses on
SSSP (launch-overhead-bound, tiny child kernels) — both normalized to the
flat implementation.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.experiments.common import FIG21_PAIRS, ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    pairs: Optional[Sequence[Tuple[str, str]]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    for app, name in pairs or FIG21_PAIRS:
        flat = runner.run(RunConfig(benchmark=name, scheme="flat", seed=seed))
        spawn = runner.run(RunConfig(benchmark=name, scheme="spawn", seed=seed))
        dtbl = runner.run(RunConfig(benchmark=name, scheme="dtbl", seed=seed))
        rows.append(
            (
                app,
                name,
                round(flat.makespan / spawn.makespan, 3),
                round(flat.makespan / dtbl.makespan, 3),
            )
        )
    return ExperimentResult(
        experiment="fig21",
        title="SPAWN vs DTBL (normalized to flat)",
        headers=["application", "benchmark", "SPAWN", "DTBL"],
        rows=rows,
    )
