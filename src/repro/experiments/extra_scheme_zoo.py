"""Extension experiment (beyond the paper): the scheme zoo head-to-head.

A Fig. 21-style cross-scheme comparison over every launch-handling scheme
the harness models — the paper's Baseline-DP / SPAWN / DTBL plus the three
zoo schemes this repo adds: ``consolidate`` (pre-GMU merging of tiny child
launches into coarser kernels), ``aggregate:block`` (block-granularity
launch aggregation, Olabi et al., arXiv:2201.02789), and ``acs``
(dependency-aware SWQ→HWQ binding, arXiv:2401.12377).

Alongside the Table I graph benchmarks the table includes the two
self-similar-density generators (Quezada et al., arXiv:2206.02255), whose
fractal hot-spot clustering produces exactly the swarms of tiny child
grids consolidation and aggregation are built for.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner, geometric_mean

#: Schemes compared, in column order.
ZOO_SCHEMES = (
    "baseline-dp",
    "spawn",
    "dtbl",
    "consolidate",
    "aggregate:block",
    "acs",
)

#: Benchmarks where child-launch handling dominates: the golden-matrix
#: graph trio plus the self-similar cascade workloads.
ZOO_BENCHMARKS = (
    "BFS-citation",
    "GC-citation",
    "SSSP-citation",
    "SelfSim-dense",
    "SelfSim-sparse",
)


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    columns = {scheme: [] for scheme in ZOO_SCHEMES}
    merged = {"consolidate": [], "aggregate:block": []}
    for name in benchmarks or ZOO_BENCHMARKS:
        flat = runner.run(RunConfig(benchmark=name, scheme="flat", seed=seed))
        speedups = []
        for scheme in ZOO_SCHEMES:
            result = runner.run(
                RunConfig(benchmark=name, scheme=scheme, seed=seed)
            )
            speedups.append(flat.makespan / result.makespan)
            columns[scheme].append(speedups[-1])
            if scheme in merged:
                merged[scheme].append(result.stats.merged_kernels_launched)
        rows.append((name, *(round(s, 3) for s in speedups)))
    rows.append(
        (
            "GEOMEAN",
            *(round(geometric_mean(columns[s]), 3) for s in ZOO_SCHEMES),
        )
    )
    total_merged = {s: sum(v) for s, v in merged.items()}
    return ExperimentResult(
        experiment="extra-scheme-zoo",
        title="Scheme zoo: speedup over flat, all launch-handling schemes",
        headers=[
            "benchmark",
            "Baseline-DP",
            "SPAWN",
            "DTBL",
            "Consolidate",
            "Aggregate:block",
            "ACS",
        ],
        rows=rows,
        notes=(
            "extension beyond the paper: consolidation merged "
            f"{total_merged['consolidate']} kernels and block aggregation "
            f"{total_merged['aggregate:block']} across the suite; ACS "
            "reorders SWQ binding only, so it tracks Baseline-DP except "
            "under HWQ contention"
        ),
    )
