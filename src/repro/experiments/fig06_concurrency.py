"""Fig. 6: CTA concurrency and resource utilization over time (Baseline-DP).

Reproduces the BFS-graph500 execution snippet: the number of concurrently
executing parent and child CTAs, the total against the 208-CTA hardware
limit, and the resource utilization (max of register / shared-memory / SMX
usage), sampled over the run.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import DEEP_DIVE_BENCHMARK, ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmark: str = DEEP_DIVE_BENCHMARK,
    scheme: str = "baseline-dp",
    samples: int = 24,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    result = runner.run(RunConfig(benchmark=benchmark, scheme=scheme, seed=seed))
    trace = result.stats.trace
    step = max(1, len(trace) // samples)
    rows = []
    for sample in trace[::step]:
        rows.append(
            (
                int(sample.time),
                sample.parent_ctas,
                sample.child_ctas,
                sample.total_ctas,
                round(sample.utilization, 3),
            )
        )
    peak = max((s.total_ctas for s in trace), default=0)
    limit = runner.config.max_concurrent_ctas
    return ExperimentResult(
        experiment="fig06",
        title=f"Concurrent CTAs and utilization over time ({benchmark}, {scheme})",
        headers=["cycle", "parent CTAs", "child CTAs", "total", "utilization"],
        rows=rows,
        notes=(
            f"peak concurrent CTAs = {peak} "
            f"(hardware limit {limit}); makespan = {result.makespan:.0f} cycles"
        ),
        extras={"trace": trace, "result": result},
    )
