"""Fig. 18: number of child kernels launched under the three schemes.

SPAWN's throttling cuts the launched-kernel count substantially (73% on
average in the paper), which is where the launch-overhead and
queuing-latency savings come from.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner
from repro.harness.sweep import offline_search
from repro.workloads import TABLE1_NAMES


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    reductions = []
    for name in benchmarks or TABLE1_NAMES:
        base = runner.run(RunConfig(benchmark=name, scheme="baseline-dp", seed=seed))
        _, offline = offline_search(runner, name, seed=seed)
        spawn = runner.run(RunConfig(benchmark=name, scheme="spawn", seed=seed))
        counts = (
            base.stats.child_kernels_launched,
            offline.stats.child_kernels_launched,
            spawn.stats.child_kernels_launched,
        )
        if counts[0]:
            reductions.append(1.0 - counts[2] / counts[0])
        rows.append((name, *counts))
    avg_red = 100 * sum(reductions) / len(reductions) if reductions else 0.0
    return ExperimentResult(
        experiment="fig18",
        title="Number of child kernels launched",
        headers=["benchmark", "Baseline-DP", "Offline-Search", "SPAWN"],
        rows=rows,
        notes=f"mean SPAWN reduction vs Baseline-DP: {avg_red:.0f}% (paper: 73%)",
    )
