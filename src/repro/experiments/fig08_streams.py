"""Fig. 8: one SWQ per child kernel vs one SWQ per parent CTA (c_stream).

Child kernels sharing the parent CTA's stream serialize; unique streams
maximize concurrency.  The paper finds per-child streams always win and
adopts them everywhere — this experiment regenerates that comparison under
Baseline-DP.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import PER_CHILD, PER_PARENT_CTA, RunConfig, Runner
from repro.workloads import TABLE1_NAMES


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    for name in benchmarks or TABLE1_NAMES:
        per_child = runner.run(
            RunConfig(benchmark=name, scheme="baseline-dp", seed=seed,
                      stream_policy=PER_CHILD)
        )
        per_parent = runner.run(
            RunConfig(benchmark=name, scheme="baseline-dp", seed=seed,
                      stream_policy=PER_PARENT_CTA)
        )
        rows.append(
            (name, round(per_parent.makespan / per_child.makespan, 3))
        )
    return ExperimentResult(
        experiment="fig08",
        title="Per-child-kernel SWQ speedup over per-parent-CTA SWQ",
        headers=["benchmark", "speedup (per-child / per-parent-CTA)"],
        rows=rows,
        notes="values >= 1 mean unique streams win, as the paper reports",
    )
