"""Fig. 16: SMX occupancy under the three schemes.

SMX occupancy = average active warps per cycle over the warp capacity.  The
paper reports SPAWN at 1.96x the Baseline-DP occupancy and within 4% of
Offline-Search.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner, geometric_mean
from repro.harness.sweep import offline_search
from repro.workloads import TABLE1_NAMES


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    ratios = []
    for name in benchmarks or TABLE1_NAMES:
        base = runner.run(RunConfig(benchmark=name, scheme="baseline-dp", seed=seed))
        _, offline = offline_search(runner, name, seed=seed)
        spawn = runner.run(RunConfig(benchmark=name, scheme="spawn", seed=seed))
        occ = (
            base.stats.smx_occupancy,
            offline.stats.smx_occupancy,
            spawn.stats.smx_occupancy,
        )
        if occ[0] > 0 and occ[2] > 0:
            ratios.append(occ[2] / occ[0])
        rows.append(
            (
                name,
                f"{100 * occ[0]:.1f}%",
                f"{100 * occ[1]:.1f}%",
                f"{100 * occ[2]:.1f}%",
            )
        )
    note = ""
    if ratios:
        note = (
            f"SPAWN occupancy over Baseline-DP (geomean): "
            f"{geometric_mean(ratios):.2f}x (paper: 1.96x)"
        )
    return ExperimentResult(
        experiment="fig16",
        title="SMX occupancy",
        headers=["benchmark", "Baseline-DP", "Offline-Search", "SPAWN"],
        rows=rows,
        notes=note,
    )
