"""One module per reproduced table/figure of the paper's evaluation.

Each module exposes ``run(runner=None, seed=1) -> ExperimentResult``.
``ALL_EXPERIMENTS`` maps experiment ids to their entry points, in paper
order; ``run_all`` executes everything against one shared runner (so the
common simulation runs are only performed once).
"""

from typing import Callable, Dict, Optional

from repro.experiments import (
    extra_autotune,
    extra_bootstrap,
    extra_gpu_scaling,
    extra_policy_matrix,
    extra_scheme_zoo,
    fig01_imbalance,
    fig05_distribution,
    fig06_concurrency,
    fig07_cta_size,
    fig08_streams,
    fig12_cta_time_pdf,
    fig15_speedup,
    fig16_occupancy,
    fig17_l2,
    fig18_kernel_count,
    fig19_timeline,
    fig20_launch_cdf,
    fig21_dtbl,
    tables,
)
from repro.experiments.common import ExperimentResult
from repro.harness.runner import Runner

ALL_EXPERIMENTS: Dict[str, Callable] = {
    "table1": tables.run_table1,
    "table2": tables.run_table2,
    "fig01": fig01_imbalance.run,
    "fig05": fig05_distribution.run,
    "fig06": fig06_concurrency.run,
    "fig07": fig07_cta_size.run,
    "fig08": fig08_streams.run,
    "fig12": fig12_cta_time_pdf.run,
    "fig15": fig15_speedup.run,
    "fig16": fig16_occupancy.run,
    "fig17": fig17_l2.run,
    "fig18": fig18_kernel_count.run,
    "fig19": fig19_timeline.run,
    "fig20": fig20_launch_cdf.run,
    "fig21": fig21_dtbl.run,
}

#: Extension experiments beyond the paper's own evaluation.
EXTRA_EXPERIMENTS: Dict[str, Callable] = {
    "policy-matrix": extra_policy_matrix.run,
    "bootstrap-sensitivity": extra_bootstrap.run,
    "gpu-scaling": extra_gpu_scaling.run,
    "scheme-zoo": extra_scheme_zoo.run,
    "autotune-convergence": extra_autotune.run,
}


def run_all(
    runner: Optional[Runner] = None, seed: int = 1, jobs: int = 1, policy=None
):
    """Run every experiment against one shared runner; yields results.

    ``jobs > 1`` first fans the union of every experiment's declared
    run-set (:func:`repro.experiments.plans.suite_plan`) out across
    worker processes; the experiments then execute against a warm cache.
    ``policy`` is an optional
    :class:`~repro.harness.parallel.ExecutionPolicy` for the fan-out.
    """
    shared = runner if runner is not None else Runner()
    if jobs > 1:
        from repro.experiments.plans import suite_plan
        from repro.harness.parallel import ParallelRunner

        ParallelRunner(shared, policy=policy).run_many(suite_plan(seed), jobs=jobs)
    for name, entry in ALL_EXPERIMENTS.items():
        yield entry(shared, seed)


__all__ = ["ALL_EXPERIMENTS", "EXTRA_EXPERIMENTS", "ExperimentResult", "run_all"]
