"""Fig. 17: L2 cache hit rate under the three schemes.

SPAWN improves L2 hit rate (~10 percentage points over Baseline-DP in the
paper) by keeping more computation in the parent (spatial locality) and
overlapping parent execution with its children (temporal locality) instead
of deferring child execution behind launch and queuing delays.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner
from repro.harness.sweep import offline_search
from repro.workloads import TABLE1_NAMES


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    deltas = []
    for name in benchmarks or TABLE1_NAMES:
        base = runner.run(RunConfig(benchmark=name, scheme="baseline-dp", seed=seed))
        _, offline = offline_search(runner, name, seed=seed)
        spawn = runner.run(RunConfig(benchmark=name, scheme="spawn", seed=seed))
        hit = (
            base.stats.l2_hit_rate,
            offline.stats.l2_hit_rate,
            spawn.stats.l2_hit_rate,
        )
        deltas.append(hit[2] - hit[0])
        rows.append(
            (
                name,
                f"{100 * hit[0]:.1f}%",
                f"{100 * hit[1]:.1f}%",
                f"{100 * hit[2]:.1f}%",
            )
        )
    avg_delta = 100 * sum(deltas) / len(deltas) if deltas else 0.0
    return ExperimentResult(
        experiment="fig17",
        title="L2 cache hit rate",
        headers=["benchmark", "Baseline-DP", "Offline-Search", "SPAWN"],
        rows=rows,
        notes=f"mean SPAWN - Baseline-DP hit-rate delta: {avg_delta:+.1f} points",
    )
