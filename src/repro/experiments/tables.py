"""Tables I and II of the paper: benchmark inventory and GPU configuration."""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import Runner
from repro.sim.config import GPUConfig
from repro.workloads import TABLE1_NAMES, get_benchmark


def run_table1(runner: Optional[Runner] = None, seed: int = 1) -> ExperimentResult:
    """Table I: the 13 <application, input> benchmarks."""
    rows = []
    for name in TABLE1_NAMES:
        bench = get_benchmark(name)
        app = bench.dp(seed)
        rows.append(
            (
                bench.application,
                bench.input_name,
                name,
                len(app.kernels),
                sum(spec.num_child_requests() for spec in app.kernels),
                app.flat_items,
            )
        )
    return ExperimentResult(
        experiment="table1",
        title="List of benchmarks",
        headers=[
            "Application",
            "Input Set",
            "Benchmark",
            "host kernels",
            "launch sites",
            "work items",
        ],
        rows=rows,
    )


def run_table2(runner: Optional[Runner] = None, seed: int = 1) -> ExperimentResult:
    """Table II: GPU configuration parameters of the simulated system."""
    config = ensure_runner(runner).config
    rows = _config_rows(config)
    return ExperimentResult(
        experiment="table2",
        title="GPU configuration parameters",
        headers=["Parameter", "Value"],
        rows=rows,
    )


def _config_rows(config: GPUConfig):
    mem = config.memory
    launch = config.launch
    return [
        ("SMX", f"{config.num_smx} SMXs, {config.clock_mhz}MHz"),
        (
            "Resources per SMX",
            f"{config.shared_mem_per_smx // 1024}KB shared memory, "
            f"{config.registers_per_smx * 4 // 1024}KB register file, "
            f"max {config.max_threads_per_smx} threads "
            f"({config.max_warps_per_smx} warps)",
        ),
        (
            "L2 cache",
            f"{mem.l2.size_bytes // 1024}KB total, {mem.l2.line_bytes}B line, "
            f"{mem.l2.associativity}-way",
        ),
        (
            "Concurrency",
            f"{config.max_ctas_per_smx} CTAs/SMX "
            f"({config.max_concurrent_ctas} GPU-wide), "
            f"{config.num_hwq} HWQs",
        ),
        (
            "Child kernel launch overhead",
            f"latency = {launch.slope_cycles}*x + {launch.base_cycles} cycles "
            f"(x = launches per warp), {launch.service_slots} service slots",
        ),
        (
            "Memory latency",
            f"L2 hit {mem.l2_hit_cycles} cyc, DRAM {mem.dram_cycles} cyc, "
            f"MLP {mem.mlp}",
        ),
        ("CCQS bound", f"{config.max_pending_child_ctas} pending child CTAs"),
        ("SPAWN metric window", f"{config.metric_window_cycles} cycles"),
    ]


def run(runner: Optional[Runner] = None, seed: int = 1) -> ExperimentResult:
    """Default entry point: Table I (Table II available via run_table2)."""
    return run_table1(runner, seed)
