"""Extension experiment (beyond the paper): online autotuning convergence.

The paper tunes its launch threshold *offline*: Offline-Search sweeps the
grid once per benchmark and bakes the winner in.  The serving layer closes
that loop online — :mod:`repro.service.autotune` runs successive halving
over the same sweep grid while requests stream in.  This experiment checks
the closed loop lands where the open loop does: drive the tuner to
convergence one pull at a time (exactly what the service does per
completion), then run Offline-Search over the same grid and compare.

Because both sides minimise simulated makespan — a deterministic quantity
— the converged online arm must *equal* the Offline-Search winner, and the
speedup ratio must be 1.0, well inside the 5% acceptance band.  The table
also reports SPAWN (the paper's static scheme at default threshold) to show
what tuning buys over not tuning.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner, geometric_mean
from repro.harness.sweep import offline_search
from repro.service.autotune import THRESHOLD_FAMILY, AutoTuner, arm_grid

#: Benchmarks with distinct sweep grids (7 and 5 threshold arms).
AUTOTUNE_BENCHMARKS = ("GC-citation", "MM-small")

#: Safety cap on tuner pulls, as a multiple of the grid size.  Successive
#: halving needs sum of per-round quotas ~ 2·arms·log2(arms) pulls in the
#: worst case; 4× the grid per round bound is generous.
PULL_CAP_FACTOR = 8


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    online_col, offline_col, spawn_col, ratio_col = [], [], [], []
    for name in benchmarks or AUTOTUNE_BENCHMARKS:
        flat = runner.run(RunConfig(benchmark=name, scheme="flat", seed=seed))
        arms = arm_grid(name, THRESHOLD_FAMILY)

        # Online loop first: propose → run → observe, one completion at a
        # time, exactly the cycle `repro serve --autotune` drives.
        tuner = AutoTuner(runner=runner, seed=seed)
        template = RunConfig(benchmark=name, scheme="spawn", seed=seed)
        halving = tuner.tuner_for(name, THRESHOLD_FAMILY, template=template)
        pulls = 0
        cap = PULL_CAP_FACTOR * len(arms)
        while not halving.converged and pulls < cap:
            config = tuner.rewrite(template)
            result = runner.run(config)
            tuner.observe(config, makespan=result.makespan)
            pulls += 1
        (online_arm, online_cost) = halving.incumbent()

        # Offline-Search over the same grid (the arm runs are now cached,
        # so this re-prices rather than re-simulates).
        offline_best, offline_res = offline_search(runner, name, seed=seed)

        spawn = runner.run(RunConfig(benchmark=name, scheme="spawn", seed=seed))
        online_speedup = flat.makespan / online_cost
        offline_speedup = flat.makespan / offline_res.makespan
        spawn_speedup = flat.makespan / spawn.makespan
        ratio = online_speedup / offline_speedup
        online_col.append(online_speedup)
        offline_col.append(offline_speedup)
        spawn_col.append(spawn_speedup)
        ratio_col.append(ratio)
        rows.append(
            (
                name,
                len(arms),
                pulls,
                online_arm,
                f"threshold:{offline_best}",
                round(online_speedup, 3),
                round(offline_speedup, 3),
                round(spawn_speedup, 3),
                round(ratio, 4),
            )
        )
    rows.append(
        (
            "GEOMEAN",
            "",
            "",
            "",
            "",
            round(geometric_mean(online_col), 3),
            round(geometric_mean(offline_col), 3),
            round(geometric_mean(spawn_col), 3),
            round(geometric_mean(ratio_col), 4),
        )
    )
    converged = all(row[3] == row[4] for row in rows[:-1])
    return ExperimentResult(
        experiment="extra-autotune-convergence",
        title="Online successive halving vs. Offline-Search vs. SPAWN",
        headers=[
            "benchmark",
            "arms",
            "pulls",
            "online arm",
            "offline best",
            "online x",
            "offline x",
            "SPAWN x",
            "online/offline",
        ],
        rows=rows,
        notes=(
            "extension beyond the paper: the service's online tuner "
            + ("matched" if converged else "MISSED")
            + " the Offline-Search winner on every benchmark; both "
            "minimise deterministic simulated makespan, so the speedup "
            "ratio is exact, not merely within the 5% band"
        ),
        extras={"converged": converged},
    )
