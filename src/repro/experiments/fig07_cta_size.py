"""Fig. 7: performance sensitivity to child CTA dimensions (c_cta).

Each benchmark's DP variant is re-run with every child kernel resized to
64, 128, and 256 threads per CTA, normalized (as in the paper) to the
32-threads/CTA configuration, under Baseline-DP.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner
from repro.workloads import TABLE1_NAMES

CTA_SIZES = (32, 64, 128, 256)


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    for name in benchmarks or TABLE1_NAMES:
        makespans = {}
        for cta in CTA_SIZES:
            result = runner.run(
                RunConfig(
                    benchmark=name,
                    scheme="baseline-dp",
                    seed=seed,
                    cta_threads=cta,
                )
            )
            makespans[cta] = result.makespan
        base = makespans[32]
        rows.append(
            (
                name,
                round(base / makespans[64], 3),
                round(base / makespans[128], 3),
                round(base / makespans[256], 3),
            )
        )
    return ExperimentResult(
        experiment="fig07",
        title="Sensitivity to child CTA size (speedup over 32 threads/CTA)",
        headers=["benchmark", "CTA-64", "CTA-128", "CTA-256"],
        rows=rows,
    )
