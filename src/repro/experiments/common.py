"""Shared infrastructure for the per-figure experiment modules.

Every experiment module exposes ``run(runner=None, seed=1) -> ExperimentResult``.
An :class:`ExperimentResult` carries the same rows/series the paper's table
or figure reports, renders as an aligned ASCII table, and keeps the raw data
available for tests and benchmarks.

Experiments share a :class:`~repro.harness.runner.Runner`; passing one in
lets a session reuse cached simulation results across figures (Fig. 15, 16,
17, and 18 all derive from the same three runs per benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.harness.report import format_table
from repro.harness.runner import Runner


@dataclass
class ExperimentResult:
    """Structured output of one reproduced table or figure."""

    experiment: str  # e.g. "fig15"
    title: str
    headers: Sequence[str]
    rows: List[Sequence[object]]
    notes: str = ""
    extras: Dict[str, object] = field(default_factory=dict)

    def table(self) -> str:
        text = format_table(self.headers, self.rows, title=f"{self.experiment}: {self.title}")
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def row_dict(self, key_column: int = 0) -> Dict[object, Sequence[object]]:
        """Index rows by one column (usually the benchmark name)."""
        return {row[key_column]: row for row in self.rows}


def ensure_runner(runner: Optional[Runner]) -> Runner:
    return runner if runner is not None else Runner()


#: Benchmarks the paper's deep-dive figures use.
DEEP_DIVE_BENCHMARK = "BFS-graph500"
FIG12_BENCHMARKS = ("MM-small", "SA-thaliana", "BFS-graph500", "SSSP-graph500")
FIG21_PAIRS = (
    ("SA", "SA-thaliana"),
    ("SA", "SA-elegans"),
    ("MM", "MM-small"),
    ("MM", "MM-large"),
    ("SSSP", "SSSP-citation"),
    ("SSSP", "SSSP-graph500"),
)
