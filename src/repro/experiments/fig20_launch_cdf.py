"""Fig. 20: cumulative child-kernel launches over time (BFS-graph500).

SPAWN's launch CDF rises far more slowly than Baseline-DP's — fewer
kernels, launched at a lower rate, tracking what Offline-Search's fixed
best threshold would do.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import DEEP_DIVE_BENCHMARK, ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner
from repro.harness.sweep import offline_search


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmark: str = DEEP_DIVE_BENCHMARK,
    samples: int = 12,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    base = runner.run(RunConfig(benchmark=benchmark, scheme="baseline-dp", seed=seed))
    threshold, offline = offline_search(runner, benchmark, seed=seed)
    spawn = runner.run(RunConfig(benchmark=benchmark, scheme="spawn", seed=seed))
    rows = []
    cdfs = {}
    for scheme, result in (
        ("baseline-dp", base),
        (f"offline (thr={threshold})", offline),
        ("spawn", spawn),
    ):
        cdf = result.stats.launch_cdf()
        cdfs[scheme] = cdf
        if not cdf:
            rows.append((scheme, 0, 0, 0))
            continue
        step = max(1, len(cdf) // samples)
        for time, count in cdf[::step]:
            rows.append((scheme, int(time), count, result.stats.child_kernels_launched))
    return ExperimentResult(
        experiment="fig20",
        title=f"CDF of child kernel launches over time ({benchmark})",
        headers=["scheme", "cycle", "cumulative launches", "total"],
        rows=rows,
        extras={"cdfs": cdfs},
    )
