"""Extension experiment: how Algorithm 1's bootstrap costs SPAWN.

EXPERIMENTS.md attributes SPAWN's gap to Offline-Search at our workload
scale to the bootstrap path: until the first child CTA completes
(>= ``b`` = 20,210 cycles after the first launch call), the controller has
no throughput estimate and launches unconditionally.  This study scales the
fixed launch latency ``b`` and measures SPAWN's speedup over flat next to
Offline-Search's: as ``b`` shrinks, feedback arrives earlier, fewer
decisions fall in the blind window, and SPAWN closes on (or passes) the
static optimum — evidence that the gap is a scale artifact rather than a
flaw in the reproduction of Algorithm 1.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policies import SpawnPolicy, StaticThresholdPolicy
from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import Runner
from repro.harness.sweep import offline_search
from repro.sim.config import GPUConfig, LaunchOverheadConfig
from repro.sim.engine import GPUSimulator
from repro.workloads import get_benchmark

DEFAULT_BENCHMARKS = ("BFS-graph500", "SSSP-citation", "GC-graph500")
BASE_SCALES = (1.0, 0.25, 0.05)


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
    scales: Sequence[float] = BASE_SCALES,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    for name in benchmarks or DEFAULT_BENCHMARKS:
        bench = get_benchmark(name)
        best_threshold, _ = offline_search(runner, name, seed=seed)
        for scale in scales:
            config = GPUConfig(
                launch=LaunchOverheadConfig(
                    slope_cycles=1721,
                    base_cycles=max(1, int(20210 * scale)),
                )
            )
            flat = GPUSimulator(config=config).run(bench.flat(seed))
            offline = GPUSimulator(
                config=config, policy=StaticThresholdPolicy(best_threshold)
            ).run(bench.dp(seed))
            spawn = GPUSimulator(config=config, policy=SpawnPolicy()).run(
                bench.dp(seed)
            )
            off_speedup = flat.makespan / offline.makespan
            spawn_speedup = flat.makespan / spawn.makespan
            rows.append(
                (
                    name,
                    int(20210 * scale),
                    round(off_speedup, 3),
                    round(spawn_speedup, 3),
                    round(spawn_speedup / off_speedup, 3),
                )
            )
    return ExperimentResult(
        experiment="extra-bootstrap",
        title="SPAWN vs Offline-Search as the fixed launch latency b shrinks",
        headers=[
            "benchmark",
            "b (cycles)",
            "Offline-Search",
            "SPAWN",
            "SPAWN / Offline",
        ],
        notes=(
            "smaller b -> earlier metric feedback -> fewer blind bootstrap "
            "decisions; measured: the SPAWN/Offline ratio rises to ~1 on "
            "SSSP-citation and GC-graph500 (feedback delay explains the gap "
            "there), while on BFS-graph500 cheap launches make aggressive "
            "offloading dominate and throttling stays behind"
        ),
        rows=rows,
    )
