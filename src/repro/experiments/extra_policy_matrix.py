"""Extension experiment (beyond the paper): the full policy matrix.

The paper compares SPAWN against Baseline-DP, Offline-Search, and DTBL.
This extension runs *every* launch-handling mechanism the library models —
including Free Launch (Chen & Shen, MICRO'15), which the paper discusses in
related work but does not evaluate — across the Table I benchmarks, giving
one table that situates all five mechanisms at once.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policies import FreeLaunchPolicy
from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner, geometric_mean
from repro.sim.engine import GPUSimulator
from repro.workloads import TABLE1_NAMES, get_benchmark

SCHEMES = ("baseline-dp", "spawn", "dtbl")


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    columns = {name: [] for name in (*SCHEMES, "free-launch")}
    for name in benchmarks or TABLE1_NAMES:
        flat = runner.run(RunConfig(benchmark=name, scheme="flat", seed=seed))
        speedups = []
        for scheme in SCHEMES:
            result = runner.run(RunConfig(benchmark=name, scheme=scheme, seed=seed))
            speedups.append(flat.makespan / result.makespan)
            columns[scheme].append(speedups[-1])
        # Free Launch is not a Runner scheme (it is an extension); run it
        # directly against the same DP application.
        bench = get_benchmark(name)
        free = GPUSimulator(
            config=runner.config,
            policy=FreeLaunchPolicy(bench.default_threshold),
            max_events=runner.max_events,
        ).run(bench.dp(seed))
        free_speedup = flat.makespan / free.makespan
        columns["free-launch"].append(free_speedup)
        rows.append(
            (
                name,
                round(speedups[0], 3),
                round(speedups[1], 3),
                round(speedups[2], 3),
                round(free_speedup, 3),
            )
        )
    rows.append(
        (
            "GEOMEAN",
            *(round(geometric_mean(columns[c]), 3)
              for c in (*SCHEMES, "free-launch")),
        )
    )
    return ExperimentResult(
        experiment="extra-policy-matrix",
        title="All launch-handling mechanisms, speedup over flat",
        headers=["benchmark", "Baseline-DP", "SPAWN", "DTBL", "Free Launch"],
        rows=rows,
        notes=(
            "extension beyond the paper: Free Launch (thread reuse) and DTBL "
            "(CTA coalescing) bracket SPAWN's throttling approach"
        ),
    )
