"""Fig. 5: performance vs parent/child workload distribution (all 13 plots).

For each benchmark we sweep the static THRESHOLD (the knob of Section II-B),
measure the fraction of work executed in child kernels (the x-axis of
Fig. 5), and report the simulator speedup over the flat implementation.
Observations 1-4 of Section III-A are derived from exactly this data.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import Runner
from repro.harness.sweep import threshold_sweep
from repro.workloads import TABLE1_NAMES


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    sweeps = {}
    for name in benchmarks or TABLE1_NAMES:
        sweep = threshold_sweep(runner, name, seed=seed)
        sweeps[name] = sweep
        best = sweep.best()
        for point in sweep.points:
            rows.append(
                (
                    name,
                    point.threshold,
                    f"{100.0 * point.offload_fraction:.0f}%",
                    round(point.speedup_over_flat, 3),
                    point.child_kernels,
                    "*" if point is best else "",
                )
            )
    return ExperimentResult(
        experiment="fig05",
        title="Speedup vs percentage of workload offloaded to child kernels",
        headers=[
            "benchmark",
            "THRESHOLD",
            "offloaded",
            "speedup vs flat",
            "child kernels",
            "best",
        ],
        rows=rows,
        notes="(*) best static distribution = Offline-Search's pick",
        extras={"sweeps": sweeps},
    )
