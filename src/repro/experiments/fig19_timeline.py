"""Fig. 19: concurrent CTAs over time, Baseline-DP vs SPAWN (BFS-graph500).

The deep-dive companion to Fig. 6: under SPAWN, parent CTAs stay alive
longer (they keep more of the traversal), hide the launch overhead of the
fewer children, and the run finishes earlier.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import DEEP_DIVE_BENCHMARK, ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmark: str = DEEP_DIVE_BENCHMARK,
    samples: int = 16,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    traces = {}
    for scheme in ("baseline-dp", "spawn"):
        result = runner.run(RunConfig(benchmark=benchmark, scheme=scheme, seed=seed))
        trace = result.stats.trace
        traces[scheme] = (trace, result)
        step = max(1, len(trace) // samples)
        for sample in trace[::step]:
            rows.append(
                (
                    scheme,
                    int(sample.time),
                    sample.parent_ctas,
                    sample.child_ctas,
                    round(sample.utilization, 3),
                )
            )
    base_span = traces["baseline-dp"][1].makespan
    spawn_span = traces["spawn"][1].makespan
    return ExperimentResult(
        experiment="fig19",
        title=f"Concurrent CTAs over time, Baseline-DP vs SPAWN ({benchmark})",
        headers=["scheme", "cycle", "parent CTAs", "child CTAs", "utilization"],
        rows=rows,
        notes=(
            f"makespan: baseline-dp={base_span:.0f}, spawn={spawn_span:.0f} "
            f"({base_span / spawn_span:.2f}x faster under SPAWN)"
        ),
        extras={"traces": traces},
    )
