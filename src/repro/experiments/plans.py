"""Declared run-sets (plans) for every experiment, for parallel fan-out.

Each experiment module's ``run`` discovers its simulations imperatively,
one ``runner.run`` at a time — fine serially, but a parallel harness needs
the *whole* run-set up front.  This module mirrors each experiment's loop
structure as a pure function ``plan(seed) -> List[RunConfig]`` so
``repro suite --jobs N`` can fan the union out across cores, after which
the experiments themselves execute against a fully warm cache.

Keep these in sync with the experiment modules: a plan that under-declares
still produces correct results (the missing runs simulate serially), it
just loses parallelism.  ``tests/test_plans.py`` pins the invariant the
other way — after ``run_many`` on an experiment's plan, running the
experiment must add zero cache misses.

Offline-Search appears here as plain ``scheme="offline"`` entries; the
parallel harness expands them into the defining threshold sweep.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.experiments.common import (
    DEEP_DIVE_BENCHMARK,
    FIG12_BENCHMARKS,
    FIG21_PAIRS,
)
from repro.experiments.fig07_cta_size import CTA_SIZES
from repro.harness.runner import PER_CHILD, PER_PARENT_CTA, RunConfig
from repro.workloads import TABLE1_NAMES


def _per_benchmark(schemes: Sequence[str], seed: int) -> List[RunConfig]:
    return [
        RunConfig(benchmark=name, scheme=scheme, seed=seed)
        for name in TABLE1_NAMES
        for scheme in schemes
    ]


def plan_none(seed: int = 1) -> List[RunConfig]:
    """Experiments that derive from static inputs run no simulations."""
    return []


def plan_fig05(seed: int = 1) -> List[RunConfig]:
    # Threshold sweep of every benchmark == the offline expansion.
    return _per_benchmark(["offline"], seed)


def plan_fig06(seed: int = 1) -> List[RunConfig]:
    return [RunConfig(benchmark=DEEP_DIVE_BENCHMARK, scheme="baseline-dp", seed=seed)]


def plan_fig07(seed: int = 1) -> List[RunConfig]:
    return [
        RunConfig(benchmark=name, scheme="baseline-dp", seed=seed, cta_threads=cta)
        for name in TABLE1_NAMES
        for cta in CTA_SIZES
    ]


def plan_fig08(seed: int = 1) -> List[RunConfig]:
    return [
        RunConfig(benchmark=name, scheme="baseline-dp", seed=seed, stream_policy=policy)
        for name in TABLE1_NAMES
        for policy in (PER_CHILD, PER_PARENT_CTA)
    ]


def plan_fig12(seed: int = 1) -> List[RunConfig]:
    return [
        RunConfig(benchmark=name, scheme="baseline-dp", seed=seed)
        for name in FIG12_BENCHMARKS
    ]


def plan_fig15(seed: int = 1) -> List[RunConfig]:
    return _per_benchmark(["flat", "baseline-dp", "offline", "spawn"], seed)


def plan_fig16(seed: int = 1) -> List[RunConfig]:
    return _per_benchmark(["baseline-dp", "offline", "spawn"], seed)


plan_fig17 = plan_fig16
plan_fig18 = plan_fig16


def plan_fig19(seed: int = 1) -> List[RunConfig]:
    return [
        RunConfig(benchmark=DEEP_DIVE_BENCHMARK, scheme=scheme, seed=seed)
        for scheme in ("baseline-dp", "spawn")
    ]


def plan_fig20(seed: int = 1) -> List[RunConfig]:
    return [
        RunConfig(benchmark=DEEP_DIVE_BENCHMARK, scheme=scheme, seed=seed)
        for scheme in ("baseline-dp", "offline", "spawn")
    ]


def plan_fig21(seed: int = 1) -> List[RunConfig]:
    return [
        RunConfig(benchmark=name, scheme=scheme, seed=seed)
        for _app, name in FIG21_PAIRS
        for scheme in ("flat", "spawn", "dtbl")
    ]


#: Experiment id -> plan, in paper order (ids match ``ALL_EXPERIMENTS``).
PLANS: Dict[str, Callable[[int], List[RunConfig]]] = {
    "table1": plan_none,
    "table2": plan_none,
    "fig01": plan_none,
    "fig05": plan_fig05,
    "fig06": plan_fig06,
    "fig07": plan_fig07,
    "fig08": plan_fig08,
    "fig12": plan_fig12,
    "fig15": plan_fig15,
    "fig16": plan_fig16,
    "fig17": plan_fig17,
    "fig18": plan_fig18,
    "fig19": plan_fig19,
    "fig20": plan_fig20,
    "fig21": plan_fig21,
}


def suite_plan(seed: int = 1, experiments: Sequence[str] = ()) -> List[RunConfig]:
    """Union run-set for the requested experiments (default: all of them).

    Deduplicated on :meth:`RunConfig.key` preserving first-seen order, so
    the shared runs (fig15/16/17/18 reuse the same trio per benchmark)
    are declared once.
    """
    names = list(experiments) or list(PLANS)
    plan: List[RunConfig] = []
    seen: set = set()
    for name in names:
        try:
            entry = PLANS[name]
        except KeyError:
            raise KeyError(
                f"no plan for experiment {name!r}; known: {', '.join(PLANS)}"
            ) from None
        for config in entry(seed):
            key = config.key()
            if key not in seen:
                seen.add(key)
                plan.append(config)
    return plan
