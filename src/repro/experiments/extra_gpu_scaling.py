"""Extension experiment: does SPAWN's benefit survive a bigger GPU?

The paper evaluates one Kepler configuration (Table II).  A natural
question for the mechanism is how its benefit moves as the hardware limits
relax: more SMXs (more CTA slots) and more HWQs (more concurrent kernels)
both reduce the queuing latency SPAWN exists to avoid, while the per-launch
overhead A*x + b stays fixed.  This study re-runs Baseline-DP and SPAWN on
scaled GPU configurations and reports SPAWN's advantage per scale.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.policies import SpawnPolicy, StaticThresholdPolicy
from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import Runner
from repro.sim.config import GPUConfig
from repro.sim.engine import GPUSimulator
from repro.workloads import get_benchmark

DEFAULT_BENCHMARKS = ("BFS-graph500", "GC-graph500", "SSSP-citation")

#: (label, SMX multiplier, HWQ multiplier) relative to Table II.
SCALES = (("half", 0.5, 0.5), ("table2", 1.0, 1.0), ("double", 2.0, 2.0))


def scaled_config(smx_factor: float, hwq_factor: float) -> GPUConfig:
    base = GPUConfig()
    return GPUConfig(
        num_smx=max(1, int(base.num_smx * smx_factor)),
        num_hwq=max(1, int(base.num_hwq * hwq_factor)),
    )


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
    scales: Sequence = SCALES,
) -> ExperimentResult:
    ensure_runner(runner)
    rows = []
    for name in benchmarks or DEFAULT_BENCHMARKS:
        bench = get_benchmark(name)
        for label, smx_factor, hwq_factor in scales:
            config = scaled_config(smx_factor, hwq_factor)
            flat = GPUSimulator(config=config).run(bench.flat(seed))
            base = GPUSimulator(
                config=config,
                policy=StaticThresholdPolicy(bench.default_threshold),
            ).run(bench.dp(seed))
            spawn = GPUSimulator(config=config, policy=SpawnPolicy()).run(
                bench.dp(seed)
            )
            rows.append(
                (
                    name,
                    f"{label} ({config.num_smx} SMX / {config.num_hwq} HWQ)",
                    round(flat.makespan / base.makespan, 3),
                    round(flat.makespan / spawn.makespan, 3),
                    round(base.makespan / spawn.makespan, 3),
                )
            )
    return ExperimentResult(
        experiment="extra-gpu-scaling",
        title="Baseline-DP and SPAWN vs flat across GPU sizes",
        headers=[
            "benchmark",
            "GPU scale",
            "Baseline-DP",
            "SPAWN",
            "SPAWN / Baseline",
        ],
        notes=(
            "the per-launch overhead is GPU-size-independent, so SPAWN's "
            "advantage over Baseline-DP persists across scales; benchmarks "
            "that are launch-latency-bound (not resource-bound) are nearly "
            "size-insensitive"
        ),
        rows=rows,
    )
