"""Fig. 15: speedup of Baseline-DP / Offline-Search / SPAWN over flat.

The headline evaluation: across the 13 benchmarks the paper reports SPAWN
at 1.69x over flat (geometric mean), 1.57x over Baseline-DP, and within a
few percent of Offline-Search.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import ExperimentResult, ensure_runner
from repro.harness.runner import RunConfig, Runner, geometric_mean
from repro.harness.sweep import offline_search
from repro.workloads import TABLE1_NAMES


def run(
    runner: Optional[Runner] = None,
    seed: int = 1,
    benchmarks: Optional[Sequence[str]] = None,
) -> ExperimentResult:
    runner = ensure_runner(runner)
    rows = []
    speedups = {"baseline-dp": [], "offline": [], "spawn": []}
    results = {}
    for name in benchmarks or TABLE1_NAMES:
        flat = runner.run(RunConfig(benchmark=name, scheme="flat", seed=seed))
        base = runner.run(RunConfig(benchmark=name, scheme="baseline-dp", seed=seed))
        threshold, offline = offline_search(runner, name, seed=seed)
        spawn = runner.run(RunConfig(benchmark=name, scheme="spawn", seed=seed))
        trio = (
            flat.makespan / base.makespan,
            flat.makespan / offline.makespan,
            flat.makespan / spawn.makespan,
        )
        speedups["baseline-dp"].append(trio[0])
        speedups["offline"].append(trio[1])
        speedups["spawn"].append(trio[2])
        results[name] = {
            "flat": flat, "baseline-dp": base, "offline": offline, "spawn": spawn,
            "offline_threshold": threshold,
        }
        rows.append(
            (name, round(trio[0], 3), round(trio[1], 3), round(trio[2], 3), threshold)
        )
    means = {k: geometric_mean(v) for k, v in speedups.items()}
    rows.append(
        (
            "GEOMEAN",
            round(means["baseline-dp"], 3),
            round(means["offline"], 3),
            round(means["spawn"], 3),
            "",
        )
    )
    return ExperimentResult(
        experiment="fig15",
        title="Speedup over the flat (non-DP) implementation",
        headers=["benchmark", "Baseline-DP", "Offline-Search", "SPAWN", "best THRESHOLD"],
        rows=rows,
        notes=(
            f"SPAWN over Baseline-DP (geomean): "
            f"{means['spawn'] / means['baseline-dp']:.2f}x "
            f"(paper: 1.57x); SPAWN vs Offline-Search: "
            f"{means['spawn'] / means['offline']:.2f}x"
        ),
        extras={"results": results, "geomeans": means},
    )
