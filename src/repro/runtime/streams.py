"""Stream (SWQ) assignment for device-launched kernels — Section II-B.

CUDA lets the parent thread create a ``c_stream`` per child (maximum
concurrency) or fall back to the default behaviour where every child of a
parent CTA shares one stream (and therefore serializes).  Fig. 8 compares
the two; per-child streams always win, so the paper — and our default —
uses :class:`PerChildStream`.
"""

from __future__ import annotations

import abc
import itertools


class StreamPolicy(abc.ABC):
    """Chooses the SWQ id for each device-side launch."""

    name: str = "abstract"

    @abc.abstractmethod
    def stream_for(self, parent_kernel_id: int, parent_cta_index: int) -> int:
        """SWQ id for a child launched from the given parent CTA."""

    def reset(self) -> None:
        """Forget any per-run state (called by the engine between runs)."""


class PerChildStream(StreamPolicy):
    """A fresh SWQ per child kernel: children never serialize on a stream."""

    name = "per-child"

    def __init__(self, *, first_id: int = 1_000_000):
        self._first_id = first_id
        self._counter = itertools.count(first_id)

    def stream_for(self, parent_kernel_id: int, parent_cta_index: int) -> int:
        return next(self._counter)

    def reset(self) -> None:
        self._counter = itertools.count(self._first_id)


class PerParentCTAStream(StreamPolicy):
    """One SWQ per parent CTA: its children execute sequentially.

    This is CUDA's default when the application never creates streams
    (Section II-B): "all the child kernels launched from the same parent
    CTA execute sequentially".
    """

    name = "per-parent-cta"

    def __init__(self, *, first_id: int = 1_000_000):
        self._first_id = first_id

    def stream_for(self, parent_kernel_id: int, parent_cta_index: int) -> int:
        # Stable id derived from the parent CTA's identity.
        return self._first_id + parent_kernel_id * 100_000 + parent_cta_index

    def reset(self) -> None:  # stateless
        return
