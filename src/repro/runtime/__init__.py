"""Device-runtime companions: stream (SWQ) assignment policies."""

from repro.runtime.streams import PerChildStream, PerParentCTAStream, StreamPolicy

__all__ = ["PerChildStream", "PerParentCTAStream", "StreamPolicy"]
