"""SPAWN reproduction: controlled kernel launch for GPU dynamic parallelism.

A from-scratch Python reproduction of Tang et al., *Controlled Kernel Launch
for Dynamic Parallelism in GPUs* (HPCA 2017).  The package contains:

* ``repro.sim`` — an approximate cycle-level, event-driven GPU simulator with
  dynamic-parallelism support (GMU, HWQs, launch overhead, SMX occupancy);
* ``repro.core`` — the paper's contribution: the CCQS model and the SPAWN
  controller (Algorithm 1), plus the alternative launch policies;
* ``repro.runtime`` — stream (SWQ) assignment policies;
* ``repro.workloads`` — the 13 benchmarks of Table I with synthetic inputs;
* ``repro.harness`` — runners, threshold sweeps, and report formatting;
* ``repro.experiments`` — one module per paper table/figure.

Quickstart::

    from repro import GPUSimulator, SpawnPolicy
    from repro.workloads import bfs

    app = bfs.build("graph500", variant="dp", seed=1)
    result = GPUSimulator(policy=SpawnPolicy()).run(app)
    print(result.makespan, result.summary())
"""

from repro.core.ccqs import CCQS
from repro.core.controller import SpawnController
from repro.core.metrics import MetricsMonitor
from repro.core.policies import (
    AlwaysLaunchPolicy,
    DecisionKind,
    DTBLPolicy,
    FreeLaunchPolicy,
    LaunchPolicy,
    LaunchRequest,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.errors import (
    ConfigError,
    HarnessError,
    LaunchError,
    ReproError,
    ResourceError,
    SimulationError,
    WorkloadError,
)
from repro.runtime.streams import PerChildStream, PerParentCTAStream, StreamPolicy
from repro.sim.config import GPUConfig, kepler_k20m, small_debug_gpu
from repro.sim.engine import GPUSimulator, SimResult
from repro.sim.kernel import Application, ChildRequest, KernelSpec

__version__ = "1.0.0"

__all__ = [
    "Application",
    "AlwaysLaunchPolicy",
    "CCQS",
    "ChildRequest",
    "ConfigError",
    "DecisionKind",
    "DTBLPolicy",
    "FreeLaunchPolicy",
    "GPUConfig",
    "GPUSimulator",
    "HarnessError",
    "KernelSpec",
    "LaunchError",
    "LaunchPolicy",
    "LaunchRequest",
    "MetricsMonitor",
    "NeverLaunchPolicy",
    "PerChildStream",
    "PerParentCTAStream",
    "ReproError",
    "ResourceError",
    "SimResult",
    "SimulationError",
    "SpawnController",
    "SpawnPolicy",
    "StaticThresholdPolicy",
    "StreamPolicy",
    "WorkloadError",
    "kepler_k20m",
    "small_debug_gpu",
    "__version__",
]
