"""Sharded serving: consistent-hash routing over a fleet of services.

The paper distributes dynamic-parallelism work across many SMXs under a
per-unit cost model; :class:`ServiceFleet` re-instantiates that one
level up.  N :class:`~repro.service.service.SimulationService` shards —
each with its own worker pool, its own SPAWN-style
:class:`~repro.service.admission.AdmissionController` cost model, and
its own connection to a shared store backend — sit behind one front
door:

* **Routing.**  A request's :meth:`RunConfig.key` is consistent-hashed
  onto the ring (:class:`ConsistentHashRing`, virtual nodes for
  balance), so identical requests always land on the same shard.  That
  is what makes coalescing and cache dedup work *fleet-wide*: the home
  shard sees every duplicate, and a result any shard persisted is a
  store hit for the rest through the shared backend
  (``sqlite://`` WAL file or ``kv://`` shim).
* **Failover.**  If the home shard sheds, the front door walks the
  ring-order preference list; a request only fails over when its home
  is saturated, so dedup degrades gracefully instead of collapsing.
* **Typed re-shed.**  When every candidate sheds, the front door raises
  :class:`~repro.errors.FleetOverloaded` naming the saturated home
  shard and carrying each attempted shard's
  :class:`~repro.service.admission.AdmissionDecision`.

:class:`FleetStats` sums the per-shard waiter-weighted ledgers; the
PR-5 invariants (``lost == 0``,
``submitted == completed + failed + shed + in_flight``) hold fleet-wide
because they hold per shard and the front door never drops a
submission between shards.
"""

from __future__ import annotations

import asyncio
import bisect
import hashlib
import json
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Union

from repro.errors import (
    FleetOverloaded,
    HarnessError,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.harness.faults import FaultPlan
from repro.harness.parallel import ExecutionPolicy
from repro.harness.runner import Runner
from repro.harness.store import open_store
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.tracer import Tracer
from repro.service.autotune import merge_autotune_snapshots
from repro.service.jobs import RequestLike, ServiceJob, ServiceStats, as_run_config
from repro.service.service import ServiceConfig, SimulationService
from repro.sim.config import GPUConfig
from repro.sim.engine import SimResult


class ConsistentHashRing:
    """Map opaque keys onto shard indices with a virtual-node hash ring.

    Classic consistent hashing: each shard contributes
    ``virtual_nodes`` points (SHA-256 of ``shard-<i>#<v>``) on a ring;
    a key routes to the first point clockwise of its own hash.
    :meth:`preference` extends that to the full failover order — the
    distinct shards encountered walking the ring — so "next best shard"
    is deterministic and evenly distributed, not just ``(i + 1) % N``.
    """

    def __init__(self, shards: int, *, virtual_nodes: int = 64):
        if shards < 1:
            raise HarnessError(f"ring needs >= 1 shard, got {shards}")
        if virtual_nodes < 1:
            raise HarnessError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.shards = shards
        points = []
        for shard in range(shards):
            for node in range(virtual_nodes):
                points.append((self._hash(f"shard-{shard}#{node}"), shard))
        points.sort()
        self._points = points
        self._hashes = [point for point, _ in points]

    @staticmethod
    def _hash(text: str) -> int:
        return int.from_bytes(
            hashlib.sha256(text.encode("utf-8")).digest()[:8], "big"
        )

    @staticmethod
    def canonical_key(run_key) -> str:
        """Stable string form of a :meth:`RunConfig.key` tuple."""
        return json.dumps(list(run_key), separators=(",", ":"))

    def preference(self, key: str) -> List[int]:
        """Every shard, in ring-walk order starting at ``key``'s point."""
        start = bisect.bisect_right(self._hashes, self._hash(key))
        order: List[int] = []
        seen = set()
        count = len(self._points)
        for step in range(count):
            shard = self._points[(start + step) % count][1]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
                if len(order) == self.shards:
                    break
        return order

    def shard_for(self, key: str) -> int:
        """The home shard for ``key`` (first entry of the preference)."""
        start = bisect.bisect_right(self._hashes, self._hash(key))
        return self._points[start % len(self._points)][1]


@dataclass(frozen=True)
class FleetConfig:
    """Tunables of one :class:`ServiceFleet`.

    ``service`` is applied to every shard; ``failover`` lets a shed
    request try the next shards in ring order before the front door
    gives up (disable it to measure pure per-shard admission).  When
    ``service.autotune`` is set, every shard runs its own
    :class:`~repro.service.autotune.AutoTuner` over its own traffic —
    but arms any shard has already persisted to the shared store
    backend warm-start the others, so exploration is shared without
    any shard-to-shard coordination.
    """

    shards: int = 2
    virtual_nodes: int = 64
    failover: bool = True
    service: ServiceConfig = field(default_factory=ServiceConfig)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise HarnessError(f"shards must be >= 1, got {self.shards}")
        if self.virtual_nodes < 1:
            raise HarnessError(
                f"virtual_nodes must be >= 1, got {self.virtual_nodes}"
            )


def _sum_service_stats(parts: Iterable[ServiceStats]) -> ServiceStats:
    """Sum the integer ledger fields of per-shard stats."""
    total = ServiceStats()
    numeric = (
        "submitted", "completed", "failed", "shed", "in_flight",
        "coalesced", "cache_hits", "admitted", "inline", "autotuned",
        "batches", "pool_runs", "pool_resumed", "retries",
        "timeouts", "worker_crashes", "quarantined",
    )
    for part in parts:
        for name in numeric:
            setattr(total, name, getattr(total, name) + getattr(part, name))
        total.max_batch_size = max(total.max_batch_size, part.max_batch_size)
        total.peak_queue_depth = max(
            total.peak_queue_depth, part.peak_queue_depth
        )
    return total


@dataclass
class FleetStats:
    """Fleet-wide ledger: per-shard stats plus front-door accounting.

    ``aggregate`` sums the shard ledgers, so the zero-lost invariant is
    checked fleet-wide (``aggregate.lost == 0``).  ``routed`` counts
    front-door placements per shard, ``failovers`` how many requests
    were placed off their home shard, and ``fleet_shed`` how many were
    re-shed by the front door after every candidate refused.  Unknown
    attributes delegate to ``aggregate`` so fleet stats print anywhere
    a single service's :class:`ServiceStats` would.
    """

    shards: List[ServiceStats] = field(default_factory=list)
    aggregate: ServiceStats = field(default_factory=ServiceStats)
    routed: Dict[int, int] = field(default_factory=dict)
    failovers: int = 0
    fleet_shed: int = 0

    @property
    def lost(self) -> int:
        return self.aggregate.lost

    def __getattr__(self, name: str):
        # Dataclass fields resolve normally; anything else falls through
        # to the aggregate ledger (completed, shed, coalesced, ...).
        if name.startswith("_"):
            raise AttributeError(name)
        return getattr(self.aggregate, name)

    def to_dict(self) -> Dict[str, object]:
        out = self.aggregate.to_dict()
        out["fleet"] = {
            "shards": len(self.shards),
            "routed": {str(k): v for k, v in sorted(self.routed.items())},
            "failovers": self.failovers,
            "fleet_shed": self.fleet_shed,
        }
        out["per_shard"] = [part.to_dict() for part in self.shards]
        return out


def fleet_runners(
    shards: int,
    *,
    store_url: Optional[str] = None,
    gpu_config: Optional[GPUConfig] = None,
    max_events: int = 50_000_000,
    default_engine: str = "default",
    wrap_store: Optional[Callable] = None,
) -> List[Runner]:
    """One :class:`Runner` per shard, each with its *own* store handle.

    Opening the URL once per shard is the point: every shard gets a
    private connection/client to the **shared** backend (N SQLite
    connections into one WAL file, N KV clients of one server), which is
    what the fleet's cross-shard cache dedup rides on.  ``wrap_store``
    (e.g. :meth:`FaultPlan.flaky_store`) is applied to each handle.
    """
    runners = []
    for _ in range(shards):
        store = open_store(store_url) if store_url is not None else None
        if store is not None and wrap_store is not None:
            store = wrap_store(store)
        runners.append(
            Runner(
                gpu_config,
                max_events=max_events,
                store=store,
                default_engine=default_engine,
            )
        )
    return runners


class ServiceFleet:
    """N admission-controlled services behind one consistent-hash router.

    Duck-types the single :class:`SimulationService` surface — async
    context manager, :meth:`submit`, :meth:`gather`, :meth:`stats`,
    :attr:`queue_depth` — so :func:`~repro.service.ledger.drive_service`
    and ``repro replay`` run unchanged against a fleet.

    ``runners`` supplies one runner per shard (see
    :func:`fleet_runners`); omitted, every shard gets a fresh
    memory-only runner — fine for tests, pointless for dedup.
    """

    def __init__(
        self,
        runners: Optional[Sequence[Runner]] = None,
        *,
        config: Optional[FleetConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.config = config if config is not None else FleetConfig()
        if runners is None:
            runners = [Runner() for _ in range(self.config.shards)]
        runners = list(runners)
        if len(runners) != self.config.shards:
            raise HarnessError(
                f"fleet of {self.config.shards} shards needs exactly that "
                f"many runners, got {len(runners)}"
            )
        self.metrics = metrics if metrics is not None else METRICS
        self._services = [
            SimulationService(
                runner,
                config=self.config.service,
                policy=policy,
                faults=faults,
                tracer=tracer,
                metrics=self.metrics,
            )
            for runner in runners
        ]
        self._ring = ConsistentHashRing(
            self.config.shards, virtual_nodes=self.config.virtual_nodes
        )
        self._routed: Dict[int, int] = {i: 0 for i in range(self.config.shards)}
        self._failovers = 0
        self._fleet_shed = 0
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "ServiceFleet":
        if self._closed:
            raise ServiceClosed("fleet already closed")
        if not self._started:
            for service in self._services:
                await service.start()
            self._started = True
        return self

    async def close(self, *, drain: bool = True) -> None:
        if self._closed:
            return
        self._closed = True
        # Drain concurrently: shards are independent pipelines.
        await asyncio.gather(
            *(service.close(drain=drain) for service in self._services)
        )

    async def __aenter__(self) -> "ServiceFleet":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Front door
    # ------------------------------------------------------------------
    async def submit(self, entry: RequestLike, *, seed: int = 1) -> ServiceJob:
        """Route one request to its home shard (failing over if shed).

        Raises :class:`~repro.errors.FleetOverloaded` when every
        candidate shard sheds — the evidence names the saturated home
        shard and carries each shard's admission decision.
        """
        if self._closed:
            raise ServiceClosed("fleet is closed")
        if not self._started:
            await self.start()
        config = as_run_config(entry, seed)
        key = ConsistentHashRing.canonical_key(config.key())
        order = self._ring.preference(key)
        if not self.config.failover:
            order = order[:1]
        home = order[0]
        decisions: Dict[int, object] = {}
        for shard in order:
            try:
                job = await self._services[shard].submit(config, seed=seed)
            except ServiceOverloaded as exc:
                decisions[shard] = exc.decision
                continue
            self._routed[shard] += 1
            self.metrics.counter(
                "fleet.requests_total", shard=str(shard)
            ).inc()
            if shard != home:
                self._failovers += 1
                self.metrics.counter("fleet.failovers_total").inc()
            return job
        self._fleet_shed += 1
        self.metrics.counter("fleet.shed_total").inc()
        tried = ", ".join(str(shard) for shard in decisions)
        raise FleetOverloaded(
            f"{config.benchmark}/{config.scheme} shed fleet-wide: home "
            f"shard {home} and every failover candidate refused "
            f"(tried shards {tried})",
            shard=home,
            decisions=decisions,
            decision=decisions.get(home),
        )

    async def gather(
        self,
        jobs: Iterable[ServiceJob],
        *,
        return_exceptions: bool = False,
    ) -> List[Union[SimResult, BaseException]]:
        """Await many handles (in input order), like ``asyncio.gather``."""
        return await asyncio.gather(
            *(job.result() for job in jobs),
            return_exceptions=return_exceptions,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def services(self) -> List[SimulationService]:
        return list(self._services)

    @property
    def ring(self) -> ConsistentHashRing:
        return self._ring

    @property
    def queue_depth(self) -> int:
        return sum(service.queue_depth for service in self._services)

    def stats(self) -> FleetStats:
        """Point-in-time per-shard ledgers plus the fleet-wide sum."""
        shards = [service.stats() for service in self._services]
        aggregate = _sum_service_stats(shards)
        # Latency digests come from the (shared) metrics registry, so
        # any shard's view is already the merged fleet view.
        if shards:
            aggregate.latency = shards[0].latency
        # Each shard tunes its own arm set (its traffic mix is its own);
        # the aggregate reports each pair's furthest-along tuner.
        aggregate.autotune = merge_autotune_snapshots(
            [part.autotune for part in shards]
        )
        return FleetStats(
            shards=shards,
            aggregate=aggregate,
            routed=dict(self._routed),
            failovers=self._failovers,
            fleet_shed=self._fleet_shed,
        )
