"""Batched async simulation service with SPAWN-style admission control.

The serving layer on top of the harness: an asyncio, in-process service
that accepts RunConfig-shaped requests, coalesces duplicates, answers
cache hits without touching the pool, prices everything else through an
online cost model (the paper's estimate-before-you-launch idea applied
to the service itself), and batches admitted jobs into
:class:`~repro.harness.parallel.ParallelRunner` dispatches.

* :mod:`repro.service.jobs` — request/job model and the stats ledger;
* :mod:`repro.service.admission` — windowed-EWMA cost model and the
  Algorithm 1-analog admission controller (admit / inline / shed);
* :mod:`repro.service.scheduler` — FIFO batch scheduler over the pool;
* :mod:`repro.service.service` — the :class:`SimulationService` façade;
* :mod:`repro.service.traffic` — deterministic seeded traffic and the
  scripted request files ``repro serve`` consumes;
* :mod:`repro.service.ledger` — request-ledger record/replay with
  latency/shed-rate budget gating (``repro serve --record`` /
  ``repro replay``);
* :mod:`repro.service.fleet` — consistent-hash sharding: N services
  behind one front door (``repro serve --shards N``), per-shard
  admission, fleet-wide coalescing/dedup and ledger invariants;
* :mod:`repro.service.autotune` — online successive halving over the
  Offline-Search sweep grids (``repro serve --autotune``), warm-started
  from the shared store and fed by live completions.
"""

from repro.errors import (
    FleetOverloaded,
    ReplayBudgetExceeded,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.service.fleet import (
    ConsistentHashRing,
    FleetConfig,
    FleetStats,
    ServiceFleet,
    fleet_runners,
)
from repro.service.ledger import (
    LedgerEntry,
    ReplayBudgets,
    ReplayReport,
    RequestLedger,
    drive_service,
    replay_ledger,
)
from repro.service.admission import (
    ADMIT,
    INLINE,
    SHED,
    AdmissionController,
    AdmissionDecision,
    CostModel,
    WindowedEWMA,
)
from repro.service.autotune import (
    AutoTuner,
    SuccessiveHalvingTuner,
    arm_grid,
    family_of,
    merge_autotune_snapshots,
)
from repro.service.jobs import RequestLike, ServiceJob, ServiceStats
from repro.service.scheduler import BatchScheduler
from repro.service.service import ServiceConfig, SimulationService
from repro.service.traffic import (
    DEFAULT_MATRIX,
    TrafficRequest,
    dump_requests,
    generate_traffic,
    load_requests,
)

__all__ = [
    "ADMIT",
    "INLINE",
    "SHED",
    "AdmissionController",
    "AdmissionDecision",
    "AutoTuner",
    "BatchScheduler",
    "ConsistentHashRing",
    "CostModel",
    "DEFAULT_MATRIX",
    "FleetConfig",
    "FleetOverloaded",
    "FleetStats",
    "LedgerEntry",
    "ReplayBudgetExceeded",
    "ReplayBudgets",
    "ReplayReport",
    "RequestLedger",
    "RequestLike",
    "ServiceClosed",
    "ServiceConfig",
    "ServiceFleet",
    "ServiceJob",
    "ServiceOverloaded",
    "ServiceStats",
    "SimulationService",
    "SuccessiveHalvingTuner",
    "TrafficRequest",
    "WindowedEWMA",
    "arm_grid",
    "drive_service",
    "dump_requests",
    "family_of",
    "fleet_runners",
    "generate_traffic",
    "load_requests",
    "merge_autotune_snapshots",
    "replay_ledger",
]
