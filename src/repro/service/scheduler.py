"""Batching scheduler: admitted jobs -> ``ParallelRunner.run_suite`` calls.

The compiler-assisted consolidation line of work (Wang et al., PAPERS.md)
aggregates many small kernel launches into few efficient ones; the
service does the same to simulation requests.  Admitted jobs accumulate
in a FIFO queue; whenever the pool is free the scheduler drains up to
``max_batch`` of them into one blocking
:meth:`~repro.harness.parallel.ParallelRunner.run_suite` dispatch, run on
a worker thread so the event loop keeps accepting (and coalescing)
traffic while the pool simulates.

One batch at a time: ``run_suite`` already fans one batch across all
pool workers, so overlapping dispatches would only fight over cores and
interleave fault-injection sequence numbers.  Batching therefore changes
*when* a simulation runs, never *what* it computes — results come out of
the same deterministic runner, which the load tests pin down as
bit-identical to serial :meth:`Runner.run`.

The loop is stopped by flag, never by task cancellation: a cancel could
land between popping a batch off the queue and delivering its report,
stranding unresolved handles.  With the flag, an in-flight batch always
finishes and reports before the loop exits, and ``stop(drain=True)``
then flushes whatever is still queued.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque
from typing import Callable, Deque, List, Optional

from repro.harness.parallel import SuiteReport
from repro.harness.runner import RunConfig
from repro.service.jobs import BATCHED, QUEUED, ServiceJob

#: Dispatch callable: blocking, runs a batch, returns the suite report.
DispatchFn = Callable[[List[RunConfig]], SuiteReport]

#: Completion callback: (batch, report, elapsed_seconds).
BatchDoneFn = Callable[[List[ServiceJob], SuiteReport, float], None]


class BatchScheduler:
    """Single-consumer batch loop over an asyncio job queue."""

    def __init__(
        self,
        dispatch: DispatchFn,
        on_batch_done: BatchDoneFn,
        *,
        max_batch: int = 8,
    ):
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._dispatch = dispatch
        self._on_batch_done = on_batch_done
        self.max_batch = max_batch
        self._queue: Deque[ServiceJob] = deque()
        self._wakeup = asyncio.Event()
        self._task: Optional[asyncio.Task] = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Producer side (the service's submit path)
    # ------------------------------------------------------------------
    def enqueue(self, job: ServiceJob) -> None:
        job.state = QUEUED
        self._queue.append(job)
        self._wakeup.set()

    @property
    def queue_depth(self) -> int:
        return len(self._queue)

    # ------------------------------------------------------------------
    # Consumer loop
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._task is None:
            self._stopping = False
            self._task = asyncio.get_running_loop().create_task(self._run())

    async def stop(self, *, drain: bool = True) -> List[ServiceJob]:
        """Stop the loop; returns jobs left unprocessed (empty if drained).

        With ``drain`` (the default) every queued job is still dispatched
        before this returns; without it the queue is abandoned and
        returned so the caller can fail the stranded handles.
        """
        self._stopping = True
        self._wakeup.set()
        task, self._task = self._task, None
        if task is not None:
            await task
        if drain:
            while self._queue:
                await self._run_one_batch()
        stranded = list(self._queue)
        self._queue.clear()
        return stranded

    async def _run(self) -> None:
        while not self._stopping:
            if self._queue:
                await self._run_one_batch()
            else:
                # No await sits between this clear and the wait, and the
                # event loop is cooperative, so an enqueue cannot slip
                # into the gap and be missed.
                self._wakeup.clear()
                await self._wakeup.wait()

    async def _run_one_batch(self) -> None:
        batch: List[ServiceJob] = []
        while self._queue and len(batch) < self.max_batch:
            batch.append(self._queue.popleft())
        if not batch:
            return
        configs = [job.config for job in batch]
        loop = asyncio.get_running_loop()
        start = time.perf_counter()
        for job in batch:
            job.state = BATCHED
            job.dispatched_at = start
        report = await loop.run_in_executor(None, self._dispatch, configs)
        elapsed = time.perf_counter() - start
        self._on_batch_done(batch, report, elapsed)
