"""Online autotuning: successive halving over the Offline-Search grid.

The paper's Offline-Search finds the best static THRESHOLD by exhaustive
sweep *before* any traffic arrives (Section III-A); KLARAPTOR
(arXiv:1911.02373) instead fits performance models at runtime and picks
launch parameters on the fly.  This module combines them one level up,
in the serving layer: live traffic *is* the sweep.  Each
``(benchmark, scheme family)`` pair gets a bandit running **successive
halving** over exactly the grid Offline-Search would have swept —

* ``threshold`` family (``baseline-dp`` / ``spawn`` / ``dtbl`` /
  ``threshold:<T>`` requests): the benchmark's ``sweep_thresholds``
  rendered as ``threshold:<T>`` arms, the Fig. 5 grid;
* ``consolidate`` family: merged-kernel batch sizes
  (:data:`CONSOLIDATE_BATCH_GRID`) as ``consolidate:<B>`` arms;
* ``aggregate`` family: the three aggregation granularities.

Tunable requests are rewritten to the tuner's current proposal before
they reach coalescing/cache/admission, so the service's own dedup
machinery makes repeat pulls of an arm free, and every completion —
inline, batched, or cache-served — feeds one observation back.  The
objective is the run's **makespan** (simulated cycles): deterministic,
bit-identical across hosts, and exactly what Offline-Search minimizes,
so a converged tuner lands on the Offline-Search-best arm.  Wall-clock
seconds (the :class:`~repro.service.admission.CostModel` signal) are the
fallback objective when a completion carries no makespan.

Determinism contract (property-tested in ``tests/test_autotune.py``):

* the tuner is a pure function of ``(arms, seed, observation sequence)``
  — the seed only permutes the exploration order;
* a proposal is always a grid arm (never anything else);
* each elimination round keeps the better ``ceil(alive / 2)`` arms, so
  halving terminates after exactly ``ceil(log2(len(arms)))`` rounds;
* the per-round incumbent cost is monotone non-increasing under
  deterministic per-arm costs (the makespan objective guarantees that).

Warm start: on first contact with a pair, any arm whose run is already
in the :class:`~repro.harness.runner.Runner` caches (memory or the
shared :class:`~repro.harness.store.ResultStore` backend) is credited
with its stored makespan as a free pull — a fleet shard inherits every
other shard's completed exploration through the shared store without any
direct coordination.
"""

from __future__ import annotations

import math
import random
import time
import zlib
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.harness import schemes as sch
from repro.harness.runner import RunConfig, Runner
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.profile import REGISTRY
from repro.obs.tracer import (
    NULL_TRACER,
    SERVICE_AUTOTUNE_ARM,
    SERVICE_AUTOTUNE_CONVERGED,
    SERVICE_AUTOTUNE_ROUND,
    SERVICE_AUTOTUNE_WARM,
    Tracer,
)
from repro.workloads.base import get_benchmark

#: Scheme families the tuner searches.
THRESHOLD_FAMILY = "threshold"
CONSOLIDATE_FAMILY = "consolidate"
AGGREGATE_FAMILY = "aggregate"

#: Merged-kernel batch sizes swept for the ``consolidate`` family.
CONSOLIDATE_BATCH_GRID: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Schemes that pin a family but are themselves tunable *parameters* of
#: it (a ``threshold:64`` request still searches the whole grid).
_THRESHOLD_SCHEMES = (sch.BASELINE_DP, sch.SPAWN, sch.DTBL)


def family_of(scheme: str) -> Optional[str]:
    """The tunable family of ``scheme``, or None when it is not tunable.

    ``flat`` has no launch parameters; ``offline`` is already the sweep's
    answer; ``acs`` reorders queue binding rather than admitting by a
    swept parameter — none of them autotune.
    """
    if scheme in _THRESHOLD_SCHEMES or scheme.startswith("threshold:"):
        return THRESHOLD_FAMILY
    if scheme == sch.CONSOLIDATE or scheme.startswith(f"{sch.CONSOLIDATE}:"):
        return CONSOLIDATE_FAMILY
    if scheme.startswith(f"{sch.AGGREGATE}:"):
        return AGGREGATE_FAMILY
    return None


def arm_grid(benchmark: str, family: str) -> Tuple[str, ...]:
    """The sweep grid for one ``(benchmark, family)`` pair, as schemes."""
    if family == THRESHOLD_FAMILY:
        thresholds = get_benchmark(benchmark).sweep_thresholds
        return tuple(f"threshold:{t}" for t in thresholds)
    if family == CONSOLIDATE_FAMILY:
        return tuple(f"{sch.CONSOLIDATE}:{b}" for b in CONSOLIDATE_BATCH_GRID)
    if family == AGGREGATE_FAMILY:
        return tuple(
            f"{sch.AGGREGATE}:{g}" for g in sch.AGGREGATE_GRANULARITIES
        )
    raise HarnessError(f"unknown autotune family {family!r}")


@dataclass
class ArmState:
    """Observation ledger of one arm."""

    scheme: str
    pulls: int = 0
    total_cost: float = 0.0
    warm_pulls: int = 0  # pulls credited from the store at warm start

    @property
    def mean_cost(self) -> Optional[float]:
        return self.total_cost / self.pulls if self.pulls else None


@dataclass(frozen=True)
class RoundSummary:
    """One elimination round, as recorded in the tuner's history."""

    round: int  # 1-based index of the cut that produced this state
    alive: Tuple[str, ...]  # survivors, best mean cost first
    eliminated: Tuple[str, ...]  # arms cut this round
    incumbent: str  # best surviving arm at cut time
    incumbent_cost: float  # its mean observed cost


class SuccessiveHalvingTuner:
    """Deterministic successive halving over a fixed arm grid.

    ``propose()`` names the arm the next pull should run; ``observe()``
    feeds one completed pull's cost back.  When every alive arm has
    reached the current round's cumulative quota
    (``pulls_per_round * (round + 1)`` observations), the worse half is
    eliminated; the survivor of the final round is the incumbent and
    ``propose()`` returns it forever.  All tie-breaks are by grid order,
    and the only randomness is a seeded shuffle of the exploration
    order, so the whole trajectory is a pure function of
    ``(arms, seed, observation sequence)``.
    """

    def __init__(
        self,
        arms: Sequence[str],
        *,
        seed: int = 0,
        pulls_per_round: int = 1,
    ):
        arms = tuple(arms)
        if not arms:
            raise HarnessError("tuner needs at least one arm")
        if len(set(arms)) != len(arms):
            raise HarnessError(f"duplicate arms in grid: {arms}")
        if pulls_per_round < 1:
            raise HarnessError(
                f"pulls_per_round must be >= 1, got {pulls_per_round}"
            )
        self.arms = arms
        self.seed = seed
        self.pulls_per_round = pulls_per_round
        self._states: Dict[str, ArmState] = {
            scheme: ArmState(scheme) for scheme in arms
        }
        order = list(arms)
        random.Random(seed).shuffle(order)
        #: Alive arms in exploration order (seeded permutation of the grid).
        self._alive: List[str] = order
        self.round = 0
        #: Rounds a full halving takes: ceil(n/2) per cut reaches one
        #: survivor in exactly ceil(log2(n)) cuts.
        self.rounds_total = (
            math.ceil(math.log2(len(arms))) if len(arms) > 1 else 0
        )
        self.total_pulls = 0
        self.history: List[RoundSummary] = []

    # ------------------------------------------------------------------
    # State
    # ------------------------------------------------------------------
    @property
    def alive(self) -> Tuple[str, ...]:
        """Surviving arms, in exploration order."""
        return tuple(self._alive)

    @property
    def converged(self) -> bool:
        return len(self._alive) == 1

    def state(self, scheme: str) -> ArmState:
        try:
            return self._states[scheme]
        except KeyError:
            raise HarnessError(
                f"{scheme!r} is not an arm of this grid: {self.arms}"
            ) from None

    def _quota(self) -> int:
        return self.pulls_per_round * (self.round + 1)

    def incumbent(self) -> Optional[Tuple[str, float]]:
        """Best (arm, mean cost) among observed alive arms, or None."""
        best: Optional[Tuple[str, float]] = None
        for scheme in self._alive:
            mean = self._states[scheme].mean_cost
            if mean is None:
                continue
            if best is None or mean < best[1]:
                best = (scheme, mean)
        return best

    def regret_estimate(self) -> Optional[float]:
        """Mean cost paid per pull so far, minus the incumbent's mean.

        The exploration overhead of tuning online: 0 means every pull ran
        the best-known arm; it shrinks toward 0 as the halving narrows.
        """
        incumbent = self.incumbent()
        if incumbent is None or self.total_pulls == 0:
            return None
        paid = sum(s.total_cost for s in self._states.values())
        return max(paid / self.total_pulls - incumbent[1], 0.0)

    # ------------------------------------------------------------------
    # The search
    # ------------------------------------------------------------------
    def propose(self) -> str:
        """The arm the next pull should run.  Always a grid arm.

        The first alive arm (exploration order) still short of the
        current round's quota; the incumbent once converged.  Between a
        proposal and its observation the answer does not change, so
        concurrent duplicate requests coalesce onto one simulation.
        """
        if not self.converged:
            quota = self._quota()
            for scheme in self._alive:
                if self._states[scheme].pulls < quota:
                    return scheme
        return self._alive[0]

    def observe(self, scheme: str, cost: float, *, warm: bool = False) -> bool:
        """Record one completed pull; returns True if a round was cut.

        Observations for already-eliminated arms (in flight when the cut
        happened) are recorded but cannot resurrect the arm.
        """
        state = self.state(scheme)
        if cost < 0:
            raise HarnessError(f"cost must be >= 0, got {cost}")
        state.pulls += 1
        state.total_cost += cost
        if warm:
            state.warm_pulls += 1
        self.total_pulls += 1
        cut = False
        while not self.converged and all(
            self._states[s].pulls >= self._quota() for s in self._alive
        ):
            self._cut()
            cut = True
        return cut

    def _cut(self) -> None:
        """Eliminate the worse half of the alive arms (grid-order ties)."""
        ranked = sorted(
            self._alive,
            key=lambda s: (self._states[s].mean_cost, self.arms.index(s)),
        )
        keep = math.ceil(len(self._alive) / 2)
        survivors = set(ranked[:keep])
        eliminated = tuple(s for s in self._alive if s not in survivors)
        self._alive = [s for s in self._alive if s in survivors]
        self.round += 1
        best = ranked[0]
        self.history.append(
            RoundSummary(
                round=self.round,
                alive=tuple(ranked[:keep]),
                eliminated=eliminated,
                incumbent=best,
                incumbent_cost=self._states[best].mean_cost,
            )
        )

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready state for stats reporting."""
        incumbent = self.incumbent()
        return {
            "arms": len(self.arms),
            "arms_alive": len(self._alive),
            "round": self.round,
            "rounds_total": self.rounds_total,
            "pulls": self.total_pulls,
            "warm_pulls": sum(s.warm_pulls for s in self._states.values()),
            "converged": self.converged,
            "incumbent": incumbent[0] if incumbent else None,
            "incumbent_cost": incumbent[1] if incumbent else None,
            "regret_estimate": self.regret_estimate(),
        }


class AutoTuner:
    """Per-(benchmark, family) tuners behind one service-facing façade.

    :meth:`rewrite` maps an incoming tunable request onto its pair's
    current proposal (identity for non-tunable schemes);
    :meth:`observe` routes a completion's cost back to the owning tuner.
    Tuners are created lazily on first contact with a pair and
    warm-started from the runner's caches, so a shared store backend
    lets fleet shards inherit each other's completed exploration.
    """

    def __init__(
        self,
        *,
        runner: Optional[Runner] = None,
        pulls_per_round: int = 1,
        seed: int = 0,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        if pulls_per_round < 1:
            raise HarnessError(
                f"pulls_per_round must be >= 1, got {pulls_per_round}"
            )
        self.runner = runner
        self.pulls_per_round = pulls_per_round
        self.seed = seed
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else METRICS
        self._tuners: Dict[Tuple[str, str], SuccessiveHalvingTuner] = {}

    # ------------------------------------------------------------------
    # Tuner lifecycle
    # ------------------------------------------------------------------
    @staticmethod
    def pair_name(benchmark: str, family: str) -> str:
        return f"{benchmark}/{family}"

    def _pair_seed(self, benchmark: str, family: str) -> int:
        # Per-pair exploration order, stable across processes (crc32, not
        # the salted builtin hash).
        return self.seed ^ zlib.crc32(
            self.pair_name(benchmark, family).encode("utf-8")
        )

    def tuner_for(
        self, benchmark: str, family: str, *, template: Optional[RunConfig] = None
    ) -> SuccessiveHalvingTuner:
        """The pair's tuner, created (and warm-started) on first use."""
        key = (benchmark, family)
        tuner = self._tuners.get(key)
        if tuner is None:
            tuner = SuccessiveHalvingTuner(
                arm_grid(benchmark, family),
                seed=self._pair_seed(benchmark, family),
                pulls_per_round=self.pulls_per_round,
            )
            self._tuners[key] = tuner
            self._warm_start(benchmark, family, tuner, template)
        return tuner

    def _warm_start(
        self,
        benchmark: str,
        family: str,
        tuner: SuccessiveHalvingTuner,
        template: Optional[RunConfig],
    ) -> None:
        """Credit arms already simulated (memory or shared store)."""
        if self.runner is None:
            return
        if template is None:
            template = RunConfig(benchmark=benchmark, scheme=tuner.arms[0])
        pair = self.pair_name(benchmark, family)
        for arm in tuner.arms:
            cached = self.runner.cached(replace(template, scheme=arm))
            if cached is None:
                continue
            tuner.observe(arm, float(cached.makespan), warm=True)
            REGISTRY.count("service.autotune.warm_hits")
            self._emit(
                SERVICE_AUTOTUNE_WARM,
                pair=pair, arm=arm, cost=float(cached.makespan),
            )
        self._publish(pair, tuner)
        if tuner.converged:
            self._emit_converged(pair, tuner)

    # ------------------------------------------------------------------
    # The service-facing surface
    # ------------------------------------------------------------------
    def rewrite(self, config: RunConfig) -> RunConfig:
        """Apply the pair's current proposal to one tunable request.

        Non-tunable schemes pass through untouched.  The returned config
        is what the service should coalesce/cache/run — identical
        proposals dedup onto one simulation, which is what makes repeat
        pulls free.
        """
        family = family_of(config.scheme)
        if family is None:
            return config
        tuner = self.tuner_for(config.benchmark, family, template=config)
        arm = tuner.propose()
        REGISTRY.count("service.autotune.proposals")
        self.metrics.counter(
            "autotune.proposals_total",
            pair=self.pair_name(config.benchmark, family),
        ).inc()
        if arm == config.scheme:
            return config
        self._emit(
            SERVICE_AUTOTUNE_ARM,
            pair=self.pair_name(config.benchmark, family),
            requested=config.scheme, arm=arm,
        )
        return replace(config, scheme=arm)

    def observe(
        self,
        config: RunConfig,
        *,
        seconds: Optional[float] = None,
        makespan: Optional[float] = None,
    ) -> None:
        """Feed one completion back to the owning tuner.

        Prefers the deterministic makespan objective; falls back to
        wall-clock seconds.  Completions for pairs never proposed, or
        schemes outside the pair's grid, are ignored.
        """
        family = family_of(config.scheme)
        if family is None:
            return
        tuner = self._tuners.get((config.benchmark, family))
        if tuner is None or config.scheme not in tuner.arms:
            return
        cost = makespan if makespan is not None else seconds
        if cost is None:
            return
        pair = self.pair_name(config.benchmark, family)
        was_converged = tuner.converged
        rounds_before = len(tuner.history)
        tuner.observe(config.scheme, float(cost))
        for summary in tuner.history[rounds_before:]:
            REGISTRY.count("service.autotune.rounds")
            self._emit(
                SERVICE_AUTOTUNE_ROUND,
                pair=pair, round=summary.round,
                alive=list(summary.alive),
                eliminated=list(summary.eliminated),
                incumbent=summary.incumbent,
                incumbent_cost=summary.incumbent_cost,
            )
        self._publish(pair, tuner)
        if tuner.converged and not was_converged:
            self._emit_converged(pair, tuner)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-pair tuner state, JSON-ready (``repro serve --stats-json``)."""
        return {
            self.pair_name(benchmark, family): tuner.snapshot()
            for (benchmark, family), tuner in sorted(self._tuners.items())
        }

    def _publish(self, pair: str, tuner: SuccessiveHalvingTuner) -> None:
        self.metrics.gauge("autotune.arms_alive", pair=pair).set(
            len(tuner.alive)
        )
        incumbent = tuner.incumbent()
        if incumbent is not None:
            self.metrics.gauge("autotune.incumbent_cost", pair=pair).set(
                incumbent[1]
            )
        regret = tuner.regret_estimate()
        if regret is not None:
            self.metrics.gauge("autotune.regret_estimate", pair=pair).set(
                regret
            )

    def _emit_converged(
        self, pair: str, tuner: SuccessiveHalvingTuner
    ) -> None:
        REGISTRY.count("service.autotune.converged")
        incumbent = tuner.incumbent()
        self._emit(
            SERVICE_AUTOTUNE_CONVERGED,
            pair=pair,
            incumbent=incumbent[0] if incumbent else tuner.alive[0],
            rounds=tuner.round, pulls=tuner.total_pulls,
        )

    def _emit(self, kind: str, **args) -> None:
        if self.tracer.enabled:
            self.tracer.emit(kind, ts=time.perf_counter(), **args)


def merge_autotune_snapshots(
    parts: Sequence[Dict[str, Dict[str, object]]],
) -> Dict[str, Dict[str, object]]:
    """Fleet-aggregate view: per pair, the shard that has learned most.

    Shards tune independently (their traffic mixes differ), so a sum is
    meaningless; the aggregate reports each pair's furthest-along tuner
    (most pulls, converged preferred) — the fleet's best current answer.
    """
    merged: Dict[str, Dict[str, object]] = {}
    for part in parts:
        for pair, snap in part.items():
            held = merged.get(pair)
            if held is None:
                merged[pair] = snap
                continue
            better = (
                (bool(snap.get("converged")), snap.get("pulls", 0))
                > (bool(held.get("converged")), held.get("pulls", 0))
            )
            if better:
                merged[pair] = snap
    return merged
