"""SPAWN-style admission control for the simulation service.

The paper's controller (Algorithm 1, :mod:`repro.core.controller`)
estimates what a prospective child kernel would cost *before* launching
it, and either launches, runs the work in the parent thread, or declines.
This module applies the same idea to the serving layer, one level up:
every incoming simulation request is priced by an online cost model
before it may touch the worker pool.

The analogy, term for term (also tabulated in DESIGN §11):

=====================  ==============================================
SPAWN (Algorithm 1)    service (this module)
=====================  ==============================================
launch request         submitted :class:`RunConfig`
``t_cta == 0`` boot    no cost observation yet -> admit unconditionally
``t_child`` (Eq. 1)    predicted job seconds (windowed EWMA per pair)
``t_parent`` (Eq. 2)   inline threshold ("parent does the work")
``n + x <= max_q``     queue depth / predicted-delay deadline
launch                 admit to the batch scheduler
serialize in parent    run inline on the event-loop thread
(no SPAWN analog)      shed with :class:`~repro.errors.ServiceOverloaded`
=====================  ==============================================

Each shard of a :class:`~repro.service.fleet.ServiceFleet` runs its own
controller over its own cost model — admission stays a purely local
decision (like each SMX's launch check), and the fleet's front door
turns a ring of local sheds into one
:class:`~repro.errors.FleetOverloaded` carrying every shard's
:class:`AdmissionDecision`.

The cost model mirrors :mod:`repro.core.metrics` in structure: a
windowed, exponentially-weighted average per ``benchmark/scheme`` pair
(the service's ``t_cta``), updated online as jobs complete, plus a
cycles-per-second throughput estimate for reporting.  Like the paper's
monitor, it starts empty — and like Algorithm 1 lines 2-3, requests with
no estimate are admitted unconditionally (the service deliberately
reproduces the paper's bootstrap behaviour, SSSP pathology and all).

Decision invariants (property-tested in ``tests/test_service_admission.py``,
mirroring the Algorithm 1 re-evaluation of :mod:`repro.check`):

* the verdict is *monotonic* in the predicted cost: growing cost can only
  move a request from ``inline`` to ``admit``/``shed``, never back;
* an empty queue never sheds (shedding depends only on backlog, exactly
  as the paper's capacity check depends only on ``n + x``);
* ``inline`` fires iff the predicted cost is at or below the small-job
  threshold (and never on bootstrap, which has no prediction);
* every ``shed`` decision carries its evidence: the predicted delay that
  exceeded the deadline, or the depth that hit the queue cap.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Optional, Tuple

from repro.errors import HarnessError

#: Admission verdicts.
ADMIT = "admit"  # hand the job to the batching scheduler (SPAWN: launch)
INLINE = "inline"  # run on the event-loop thread (SPAWN: serialize in parent)
SHED = "shed"  # reject with ServiceOverloaded (no SPAWN analog: GPUs queue)


class WindowedEWMA:
    """Exponentially-weighted average over a bounded observation window.

    The service-layer sibling of
    :class:`repro.core.metrics.WindowedConcurrencyAverage`: recent
    observations dominate (``alpha`` per update), and only the last
    ``window`` raw samples are retained for introspection, so a pair
    whose cost drifts (input regeneration, host contention) re-converges
    quickly instead of being anchored by ancient history.
    """

    def __init__(self, *, alpha: float = 0.3, window: int = 32):
        if not 0.0 < alpha <= 1.0:
            raise HarnessError(f"alpha must be in (0, 1], got {alpha}")
        if window < 1:
            raise HarnessError(f"window must be >= 1, got {window}")
        self.alpha = alpha
        self._samples: Deque[float] = deque(maxlen=window)
        self._value: Optional[float] = None

    def observe(self, sample: float) -> None:
        if sample < 0:
            raise HarnessError(f"observation must be >= 0, got {sample}")
        self._samples.append(sample)
        if self._value is None:
            self._value = sample
        else:
            self._value = self.alpha * sample + (1 - self.alpha) * self._value

    @property
    def value(self) -> Optional[float]:
        """Current estimate, or None before the first observation."""
        return self._value

    @property
    def count(self) -> int:
        """Samples currently inside the window."""
        return len(self._samples)


class CostModel:
    """Online per-``benchmark/scheme`` cost estimates (seconds + cycle rate).

    ``observe`` feeds one completed run: its wall-clock seconds and,
    when known, the simulated cycles it covered, maintaining both the
    seconds-per-run EWMA that admission decisions use and a
    cycles-per-second throughput EWMA for operators (``repro serve
    --stats`` prints it; it is the service's cycles/seconds analog of
    the paper's ``T`` estimate).
    """

    def __init__(self, *, alpha: float = 0.3, window: int = 32):
        self.alpha = alpha
        self.window = window
        self._seconds: Dict[Tuple[str, str], WindowedEWMA] = {}
        self._rate: Dict[Tuple[str, str], WindowedEWMA] = {}

    def _ewma(self, table, key) -> WindowedEWMA:
        ewma = table.get(key)
        if ewma is None:
            ewma = table[key] = WindowedEWMA(
                alpha=self.alpha, window=self.window
            )
        return ewma

    def observe(
        self,
        benchmark: str,
        scheme: str,
        seconds: float,
        *,
        cycles: Optional[float] = None,
    ) -> None:
        key = (benchmark, scheme)
        self._ewma(self._seconds, key).observe(seconds)
        if cycles is not None and seconds > 0:
            self._ewma(self._rate, key).observe(cycles / seconds)

    def predict(self, benchmark: str, scheme: str) -> Optional[float]:
        """Predicted seconds for one run, or None (bootstrap: no data)."""
        ewma = self._seconds.get((benchmark, scheme))
        return ewma.value if ewma is not None else None

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """JSON-ready per-pair estimates for stats reporting."""
        out: Dict[str, Dict[str, float]] = {}
        for (benchmark, scheme), ewma in sorted(self._seconds.items()):
            entry: Dict[str, float] = {
                "seconds": ewma.value,
                "samples": ewma.count,
            }
            rate = self._rate.get((benchmark, scheme))
            if rate is not None and rate.value is not None:
                entry["cycles_per_second"] = rate.value
            out[f"{benchmark}/{scheme}"] = entry
        return out


@dataclass(frozen=True)
class AdmissionDecision:
    """One admission verdict plus the evidence it was computed from."""

    verdict: str  # ADMIT | INLINE | SHED
    bootstrap: bool  # True when no cost estimate existed (always admits)
    predicted_cost_s: Optional[float]  # EWMA estimate; None on bootstrap
    predicted_delay_s: float  # backlog_seconds / workers at decision time
    deadline_s: Optional[float]  # the shed deadline in force (None = off)
    queue_depth: int  # admitted-but-unfinished jobs at decision time

    def evidence(self) -> Dict[str, object]:
        """Flat dict attached to ServiceOverloaded / tracer events."""
        return {
            "verdict": self.verdict,
            "bootstrap": self.bootstrap,
            "predicted_cost_s": self.predicted_cost_s,
            "predicted_delay_s": self.predicted_delay_s,
            "deadline_s": self.deadline_s,
            "queue_depth": self.queue_depth,
        }


class AdmissionController:
    """Prices requests against live queue state; Algorithm 1, one level up.

    The controller tracks the *predicted* backlog — the sum of cost
    estimates of every admitted-but-unfinished job — exactly as the
    paper's controller tracks ``n``, the CCQS population.  ``classify``
    is the pure decision function over (predicted cost, queue state);
    ``decide`` is the keyed wrapper the service calls.
    """

    def __init__(
        self,
        model: CostModel,
        *,
        workers: int = 2,
        deadline_s: Optional[float] = None,
        inline_threshold_s: float = 0.0,
        max_queue: Optional[int] = None,
    ):
        if workers < 1:
            raise HarnessError(f"workers must be >= 1, got {workers}")
        if deadline_s is not None and deadline_s <= 0:
            raise HarnessError(f"deadline must be positive, got {deadline_s}")
        if inline_threshold_s < 0:
            raise HarnessError(
                f"inline threshold must be >= 0, got {inline_threshold_s}"
            )
        if max_queue is not None and max_queue < 1:
            raise HarnessError(f"max_queue must be >= 1, got {max_queue}")
        self.model = model
        self.workers = workers
        self.deadline_s = deadline_s
        self.inline_threshold_s = inline_threshold_s
        self.max_queue = max_queue
        #: Predicted seconds of admitted-but-unfinished work (the "n").
        self.backlog_seconds = 0.0
        #: Admitted-but-unfinished job count.
        self.queue_depth = 0

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def predicted_delay(self) -> float:
        """Seconds a new arrival is predicted to wait behind the queue."""
        return self.backlog_seconds / self.workers

    def classify(self, predicted_cost_s: Optional[float]) -> AdmissionDecision:
        """The pure verdict for one request given the current queue state.

        Branch order mirrors Algorithm 1: bootstrap launches
        unconditionally (lines 2-3); small jobs run in the parent (the
        ``t_child > t_parent`` serialize branch); then the capacity
        check — here a predicted-delay deadline and an optional depth
        cap, both independent of the request's own cost, so an empty
        queue can never shed and the verdict stays monotonic in cost.
        """
        delay = self.predicted_delay()
        if predicted_cost_s is None:
            return self._decision(ADMIT, True, None, delay)
        if predicted_cost_s <= self.inline_threshold_s:
            return self._decision(INLINE, False, predicted_cost_s, delay)
        if self.max_queue is not None and self.queue_depth >= self.max_queue:
            return self._decision(SHED, False, predicted_cost_s, delay)
        if self.deadline_s is not None and delay > self.deadline_s:
            return self._decision(SHED, False, predicted_cost_s, delay)
        return self._decision(ADMIT, False, predicted_cost_s, delay)

    def decide(self, benchmark: str, scheme: str) -> AdmissionDecision:
        """Price one request through the cost model and classify it."""
        return self.classify(self.model.predict(benchmark, scheme))

    def _decision(
        self,
        verdict: str,
        bootstrap: bool,
        cost: Optional[float],
        delay: float,
    ) -> AdmissionDecision:
        return AdmissionDecision(
            verdict=verdict,
            bootstrap=bootstrap,
            predicted_cost_s=cost,
            predicted_delay_s=delay,
            deadline_s=self.deadline_s,
            queue_depth=self.queue_depth,
        )

    # ------------------------------------------------------------------
    # Backlog bookkeeping (the service calls these around job lifetimes)
    # ------------------------------------------------------------------
    def on_admitted(self, decision: AdmissionDecision) -> None:
        """An admitted job joined the queue: grow the predicted backlog.

        Bootstrap jobs carry no estimate and contribute zero backlog —
        faithfully reproducing Algorithm 1's blind spot (all bootstrap
        launches are in flight before the first feedback arrives).
        """
        self.queue_depth += 1
        if decision.predicted_cost_s is not None:
            self.backlog_seconds += decision.predicted_cost_s

    def on_finished(self, decision: AdmissionDecision) -> None:
        """The matching job left the queue: shrink the backlog again."""
        self.queue_depth = max(self.queue_depth - 1, 0)
        if decision.predicted_cost_s is not None:
            self.backlog_seconds = max(
                self.backlog_seconds - decision.predicted_cost_s, 0.0
            )
