"""Request-ledger record/replay: load testing the service from traces.

The SPAWN paper's evaluation rests on replaying the *same* workload under
different controller configurations; the serving layer gets the same
discipline here.  ``repro serve --record`` captures every request the
service answered — arrival offset, routing outcome, and the simulation
result's makespan — into a **ledger**: a JSON-lines file that is both an
audit log and an executable load test.  ``repro replay`` re-drives the
recorded arrival process against a fresh service (optionally
time-compressed with ``--speed``, optionally under ``REPRO_FAULTS``
chaos) and gates the run on latency/shed-rate budgets.

Determinism contract:

* The *simulation results* are bit-identical across replays at any
  speed: every path funnels through the deterministic
  :class:`~repro.harness.runner.Runner`, so a recorded makespan must
  reappear exactly.  :attr:`ReplayReport.results_identical` pins this.
* The *measured latencies* are wall-clock and explicitly excluded from
  the determinism fingerprint — they are what the budgets judge, not
  what replay reproduces.
* Routing outcomes (``shed`` in particular) depend on load and timing;
  with shedding disabled the full outcome fingerprint matches too
  (:attr:`ReplayReport.outcomes_match`).

Budget violations raise :class:`~repro.errors.ReplayBudgetExceeded`
carrying structured measured-vs-limit evidence, so a CI gate failure is
diagnosable from the exception alone.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.errors import (
    HarnessError,
    ReplayBudgetExceeded,
    ReproError,
    ServiceOverloaded,
)
from repro.harness.faults import FaultPlan
from repro.harness.parallel import ExecutionPolicy
from repro.harness.runner import Runner
from repro.obs.metrics import MetricsRegistry, exact_quantile
from repro.obs.tracer import Tracer
from repro.service.jobs import ServiceStats
from repro.service.service import ServiceConfig, SimulationService
from repro.service.traffic import TrafficRequest

#: Ledger file schema version (bump on incompatible format changes).
LEDGER_SCHEMA = 1

#: Header ``kind`` tag identifying a ledger JSONL file.
LEDGER_KIND = "repro-service-ledger"

#: Terminal request outcomes a ledger records.
COMPLETED = "completed"
FAILED = "failed"
SHED = "shed"

_OUTCOMES = (COMPLETED, FAILED, SHED)


@dataclass(frozen=True)
class LedgerEntry:
    """One answered request: what arrived, when, and how it ended.

    ``latency_s`` is the measured submit-to-resolution wall time — kept
    for budget evaluation, deliberately **excluded** from
    :meth:`fingerprint` (wall clocks do not replay).  ``makespan`` is
    the simulation result's cycle count for completed requests, the
    bit-identity witness.
    """

    benchmark: str
    scheme: str
    seed: int
    at: float  # arrival offset (s) from the drive's start
    outcome: str  # COMPLETED | FAILED | SHED
    makespan: Optional[float] = None  # simulated cycles (completed only)
    latency_s: Optional[float] = None  # measured, non-deterministic

    def __post_init__(self) -> None:
        if self.outcome not in _OUTCOMES:
            raise HarnessError(
                f"ledger outcome must be one of {_OUTCOMES}, "
                f"got {self.outcome!r}"
            )

    def request(self) -> TrafficRequest:
        """The request this entry recorded, ready to re-drive."""
        return TrafficRequest(
            benchmark=self.benchmark, scheme=self.scheme,
            seed=self.seed, at=self.at,
        )

    def fingerprint(self) -> tuple:
        """The deterministic projection (no measured wall-clock fields)."""
        return (
            self.benchmark, self.scheme, self.seed,
            round(self.at, 9), self.outcome, self.makespan,
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "seed": self.seed,
            "at": self.at,
            "outcome": self.outcome,
            "makespan": self.makespan,
            "latency_s": self.latency_s,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LedgerEntry":
        try:
            return cls(
                benchmark=payload["benchmark"],
                scheme=payload["scheme"],
                seed=int(payload.get("seed", 1)),
                at=float(payload.get("at", 0.0)),
                outcome=payload["outcome"],
                # Makespans are float cycles; json round-trips them
                # exactly, so bit-identity survives the file.
                makespan=(
                    float(payload["makespan"])
                    if payload.get("makespan") is not None else None
                ),
                latency_s=(
                    float(payload["latency_s"])
                    if payload.get("latency_s") is not None else None
                ),
            )
        except (TypeError, KeyError) as exc:
            raise HarnessError(
                f"malformed ledger entry {payload!r}: {exc}"
            ) from None


@dataclass
class RequestLedger:
    """An ordered request trace with JSONL persistence.

    File layout: a header line (``kind``/``schema``/``count``) followed
    by one JSON object per entry.  The header makes a truncated file
    detectable (``count`` mismatch) and keeps the format self-naming.
    """

    entries: List[LedgerEntry] = field(default_factory=list)

    def append(self, entry: LedgerEntry) -> None:
        self.entries.append(entry)

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def requests(self) -> List[TrafficRequest]:
        return [entry.request() for entry in self.entries]

    def fingerprint(self) -> str:
        """SHA-256 over the deterministic projection of every entry."""
        canonical = json.dumps(
            [list(entry.fingerprint()) for entry in self.entries],
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    # -- persistence ----------------------------------------------------
    def write(self, path) -> Path:
        path = Path(path)
        lines = [
            json.dumps(
                {
                    "kind": LEDGER_KIND,
                    "schema": LEDGER_SCHEMA,
                    "count": len(self.entries),
                }
            )
        ]
        lines.extend(
            json.dumps(entry.to_dict(), sort_keys=True)
            for entry in self.entries
        )
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    @classmethod
    def read(cls, path) -> "RequestLedger":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise HarnessError(f"cannot read ledger {path}: {exc}") from None
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise HarnessError(f"{path}: empty ledger file")
        try:
            header = json.loads(lines[0])
        except json.JSONDecodeError as exc:
            raise HarnessError(f"{path}:1: invalid JSON: {exc}") from None
        if not isinstance(header, dict) or header.get("kind") != LEDGER_KIND:
            raise HarnessError(
                f"{path}: not a {LEDGER_KIND} file (bad or missing header)"
            )
        if header.get("schema") != LEDGER_SCHEMA:
            raise HarnessError(
                f"{path}: ledger schema {header.get('schema')!r} is not "
                f"the supported {LEDGER_SCHEMA}"
            )
        entries = []
        for lineno, line in enumerate(lines[1:], start=2):
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise HarnessError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from None
            entries.append(LedgerEntry.from_dict(payload))
        declared = header.get("count")
        if declared is not None and declared != len(entries):
            raise HarnessError(
                f"{path}: header declares {declared} entries but "
                f"{len(entries)} were read (truncated file?)"
            )
        return cls(entries=entries)


# ----------------------------------------------------------------------
# Driving a service from a request script
# ----------------------------------------------------------------------
async def drive_service(
    service,  # SimulationService or ServiceFleet (duck-typed submit)
    requests: Sequence[TrafficRequest],
    *,
    speed: float = 1.0,
) -> List[LedgerEntry]:
    """Submit ``requests`` on their arrival schedule; record every outcome.

    The shared engine under both ``repro serve --record`` and
    ``repro replay``: arrival offsets are honoured relative to the first
    submission (divided by ``speed`` — 10 means ten times faster), every
    submission's outcome is captured, and the returned entries align
    with the input order.  Recorded ``at`` values are the *original*
    request offsets, so a ledger re-recorded from a sped-up replay
    fingerprints identically to its source.
    """
    if speed <= 0:
        raise HarnessError(f"replay speed must be positive, got {speed}")
    requests = list(requests)
    entries: List[Optional[LedgerEntry]] = [None] * len(requests)
    pending = []  # (index, request, submit_stamp, job)
    start = time.perf_counter()
    for index, request in enumerate(requests):
        target = start + request.at / speed
        delay = target - time.perf_counter()
        if delay > 0:
            await asyncio.sleep(delay)
        submit_stamp = time.perf_counter()
        try:
            job = await service.submit(request.config())
        except ServiceOverloaded:
            entries[index] = LedgerEntry(
                benchmark=request.benchmark, scheme=request.scheme,
                seed=request.seed, at=request.at, outcome=SHED,
                latency_s=max(time.perf_counter() - submit_stamp, 0.0),
            )
            continue
        pending.append((index, request, submit_stamp, job))
    for index, request, submit_stamp, job in pending:
        makespan: Optional[int] = None
        try:
            result = await job
        except ReproError:
            outcome = FAILED
        else:
            outcome = COMPLETED
            makespan = result.makespan
        finished = (
            job.finished_at if job.finished_at is not None
            else time.perf_counter()
        )
        entries[index] = LedgerEntry(
            benchmark=request.benchmark, scheme=request.scheme,
            seed=request.seed, at=request.at, outcome=outcome,
            makespan=makespan,
            latency_s=max(finished - submit_stamp, 0.0),
        )
    assert all(entry is not None for entry in entries)
    return entries  # type: ignore[return-value]


# ----------------------------------------------------------------------
# Replay: re-drive a ledger and gate on budgets
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ReplayBudgets:
    """What a replayed run is allowed to measure.

    ``None`` disables a budget.  ``max_p99_s`` bounds the exact p99 of
    answered-request latencies (completed + failed; shed rejections are
    instant and would deflate the percentile).  ``max_shed_rate`` bounds
    shed submissions as a fraction of all submissions, in ``[0, 1]``.
    """

    max_p99_s: Optional[float] = None
    max_shed_rate: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_p99_s is not None and self.max_p99_s <= 0:
            raise HarnessError(
                f"max_p99_s must be positive, got {self.max_p99_s}"
            )
        if self.max_shed_rate is not None and not (
            0.0 <= self.max_shed_rate <= 1.0
        ):
            raise HarnessError(
                f"max_shed_rate must be in [0, 1], got {self.max_shed_rate}"
            )


@dataclass
class ReplayReport:
    """Everything one replay measured, compared against its recording."""

    speed: float
    requests: int
    completed: int
    failed: int
    shed: int
    latencies: List[float]  # answered requests only, input order
    recorded_fingerprint: str
    replayed_fingerprint: str
    results_identical: bool  # every commonly-completed makespan matches
    outcomes_match: bool  # full deterministic fingerprints equal
    mismatches: List[str]  # human-readable first divergences
    stats: Optional[ServiceStats] = None
    ledger: Optional[RequestLedger] = None  # the replayed entries

    @property
    def shed_rate(self) -> float:
        return self.shed / self.requests if self.requests else 0.0

    def percentiles(self) -> Dict[str, float]:
        """Exact (sorted-sample) latency percentiles of answered requests."""
        if not self.latencies:
            return {}
        return {
            "p50": exact_quantile(self.latencies, 0.50),
            "p95": exact_quantile(self.latencies, 0.95),
            "p99": exact_quantile(self.latencies, 0.99),
        }

    def to_dict(self) -> dict:
        out = {
            "speed": self.speed,
            "requests": self.requests,
            "completed": self.completed,
            "failed": self.failed,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "latency": self.percentiles(),
            "recorded_fingerprint": self.recorded_fingerprint,
            "replayed_fingerprint": self.replayed_fingerprint,
            "results_identical": self.results_identical,
            "outcomes_match": self.outcomes_match,
            "mismatches": list(self.mismatches),
        }
        if self.stats is not None:
            out["stats"] = self.stats.to_dict()
        return out

    def enforce(self, budgets: ReplayBudgets) -> None:
        """Raise :class:`ReplayBudgetExceeded` if any budget was violated.

        Every violated budget contributes one evidence record; nothing
        raises when all budgets pass (or none are set).
        """
        evidence = []
        if budgets.max_p99_s is not None:
            p99 = self.percentiles().get("p99")
            if p99 is not None and p99 > budgets.max_p99_s:
                evidence.append(
                    {
                        "budget": "p99_latency_s",
                        "measured": p99,
                        "limit": budgets.max_p99_s,
                    }
                )
        if budgets.max_shed_rate is not None:
            if self.shed_rate > budgets.max_shed_rate:
                evidence.append(
                    {
                        "budget": "shed_rate",
                        "measured": self.shed_rate,
                        "limit": budgets.max_shed_rate,
                    }
                )
        if evidence:
            detail = "; ".join(
                f"{item['budget']} measured {item['measured']:.6g} > "
                f"limit {item['limit']:.6g}"
                for item in evidence
            )
            raise ReplayBudgetExceeded(
                f"replay at {self.speed:g}x violated "
                f"{len(evidence)} budget(s): {detail}",
                evidence=evidence,
            )


async def replay_ledger(
    ledger: RequestLedger,
    *,
    speed: float = 1.0,
    runner: Optional[Runner] = None,
    runners: Optional[Sequence[Runner]] = None,
    shards: int = 1,
    config: Optional[ServiceConfig] = None,
    policy: Optional[ExecutionPolicy] = None,
    faults: Optional[FaultPlan] = None,
    tracer: Optional[Tracer] = None,
    metrics: Optional[MetricsRegistry] = None,
) -> ReplayReport:
    """Re-drive a recorded ledger against a fresh service and compare.

    The service is built from the given knobs (defaulting to a private
    metrics registry so replays do not pollute the process-wide one),
    driven through :func:`drive_service` at ``speed``, and the replayed
    entries are diffed against the recording: simulation results must be
    bit-identical (any divergence is listed in ``mismatches``), while
    measured latencies feed the report for budget gating.

    ``shards > 1`` replays against a
    :class:`~repro.service.fleet.ServiceFleet` instead of a single
    service — pass per-shard ``runners`` (see
    :func:`~repro.service.fleet.fleet_runners`) to share a store across
    the fleet; ``drive_service`` treats the two identically, and
    :class:`~repro.errors.FleetOverloaded` records as ``shed`` like any
    other :class:`~repro.errors.ServiceOverloaded`.
    """
    if runners is not None and runner is not None:
        raise HarnessError("pass either runner or runners, not both")
    service_config = config if config is not None else ServiceConfig(jobs=2)
    metrics = metrics if metrics is not None else MetricsRegistry()
    if shards > 1 or runners is not None:
        # Deferred import: fleet pulls in the store/backends stack,
        # which single-service replays never need.
        from repro.service.fleet import FleetConfig, ServiceFleet

        shard_count = max(shards, len(runners) if runners else 0, 1)
        service = ServiceFleet(
            runners,
            config=FleetConfig(shards=shard_count, service=service_config),
            policy=policy,
            faults=faults,
            tracer=tracer,
            metrics=metrics,
        )
    else:
        service = SimulationService(
            runner,
            config=service_config,
            policy=policy,
            faults=faults,
            tracer=tracer,
            metrics=metrics,
        )
    async with service:
        replayed_entries = await drive_service(
            service, ledger.requests(), speed=speed
        )
    stats = service.stats()
    replayed = RequestLedger(entries=replayed_entries)

    mismatches: List[str] = []
    results_identical = True
    for recorded, fresh in zip(ledger.entries, replayed.entries):
        both_completed = (
            recorded.outcome == COMPLETED and fresh.outcome == COMPLETED
        )
        if both_completed and recorded.makespan != fresh.makespan:
            results_identical = False
            mismatches.append(
                f"{recorded.benchmark}/{recorded.scheme} seed "
                f"{recorded.seed}: makespan {recorded.makespan} -> "
                f"{fresh.makespan}"
            )
        elif recorded.outcome != fresh.outcome:
            mismatches.append(
                f"{recorded.benchmark}/{recorded.scheme} seed "
                f"{recorded.seed}: outcome {recorded.outcome} -> "
                f"{fresh.outcome}"
            )

    latencies = [
        entry.latency_s
        for entry in replayed.entries
        if entry.outcome != SHED and entry.latency_s is not None
    ]
    return ReplayReport(
        speed=speed,
        requests=len(replayed.entries),
        completed=sum(1 for e in replayed.entries if e.outcome == COMPLETED),
        failed=sum(1 for e in replayed.entries if e.outcome == FAILED),
        shed=sum(1 for e in replayed.entries if e.outcome == SHED),
        latencies=latencies,
        recorded_fingerprint=ledger.fingerprint(),
        replayed_fingerprint=replayed.fingerprint(),
        results_identical=results_identical,
        outcomes_match=ledger.fingerprint() == replayed.fingerprint(),
        mismatches=mismatches,
        stats=stats,
        ledger=replayed,
    )
