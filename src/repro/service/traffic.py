"""Deterministic traffic generation and scripted request files.

The load tier needs *repeatable* traffic: the same seed must produce the
same request sequence — pairs, seeds, and arrival offsets — on every
host, so a soak failure reproduces exactly.  ``generate_traffic`` draws
from a benchmark x scheme matrix with a Zipf-like skew (rank ``i`` is
weighted ``1/(i+1)``), so a realistic fraction of requests are
duplicates of hot pairs — which is precisely what exercises the
service's coalescing and cache paths.  Arrivals follow a seeded Poisson
process (exponential inter-arrival gaps) when ``mean_gap_s > 0``;
``0`` produces an instantaneous burst, which is what the soak tests use
so wall-clock sleeps never enter the test budget.

``load_requests``/``dump_requests`` read and write the scripted request
files ``repro serve`` consumes: a JSON array (or JSON-lines stream) of
``{"benchmark": ..., "scheme": ..., "seed": ..., "at": ...}`` objects.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from repro.errors import HarnessError
from repro.harness.runner import RunConfig

#: Default matrix: the suite's cheapest benchmarks under the core schemes
#: plus the scheme zoo — heavy traffic without heavy simulations.  The
#: zoo pairs keep the admission cost model exercised on merged-kernel
#: runs (different cycle rates than plain DP traffic).
DEFAULT_MATRIX: Tuple[Tuple[str, str], ...] = (
    ("GC-citation", "flat"),
    ("GC-citation", "spawn"),
    ("MM-small", "flat"),
    ("MM-small", "spawn"),
    ("GC-citation", "baseline-dp"),
    ("MM-small", "baseline-dp"),
    ("GC-citation", "consolidate"),
    ("GC-citation", "acs"),
    ("SelfSim-sparse", "aggregate:block"),
)


@dataclass(frozen=True)
class TrafficRequest:
    """One scripted request: what to simulate and when it arrives."""

    benchmark: str
    scheme: str
    seed: int = 1
    at: float = 0.0  # arrival offset in seconds from traffic start

    def config(self) -> RunConfig:
        return RunConfig(
            benchmark=self.benchmark, scheme=self.scheme, seed=self.seed
        )

    def to_dict(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "scheme": self.scheme,
            "seed": self.seed,
            "at": self.at,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TrafficRequest":
        try:
            benchmark = payload["benchmark"]
            scheme = payload["scheme"]
        except (TypeError, KeyError):
            raise HarnessError(
                f"request objects need benchmark and scheme: {payload!r}"
            ) from None
        return cls(
            benchmark=benchmark,
            scheme=scheme,
            seed=int(payload.get("seed", 1)),
            at=float(payload.get("at", 0.0)),
        )


def generate_traffic(
    count: int,
    *,
    seed: int,
    matrix: Sequence[Tuple[str, str]] = DEFAULT_MATRIX,
    seeds: Sequence[int] = (1,),
    mean_gap_s: float = 0.0,
) -> List[TrafficRequest]:
    """``count`` seeded requests over ``matrix`` x ``seeds``.

    Deterministic for a given argument tuple: the generator is a private
    ``random.Random(seed)`` and nothing else enters the draw.
    """
    if count < 0:
        raise HarnessError(f"count must be >= 0, got {count}")
    if not matrix:
        raise HarnessError("traffic matrix must not be empty")
    if not seeds:
        raise HarnessError("traffic needs at least one run seed")
    if mean_gap_s < 0:
        raise HarnessError(f"mean_gap_s must be >= 0, got {mean_gap_s}")
    rng = random.Random(seed)
    weights = [1.0 / (rank + 1) for rank in range(len(matrix))]
    requests: List[TrafficRequest] = []
    now = 0.0
    for _ in range(count):
        benchmark, scheme = rng.choices(list(matrix), weights=weights)[0]
        run_seed = seeds[rng.randrange(len(seeds))]
        if mean_gap_s > 0:
            now += rng.expovariate(1.0 / mean_gap_s)
        requests.append(
            TrafficRequest(
                benchmark=benchmark, scheme=scheme, seed=run_seed, at=now
            )
        )
    return requests


def load_requests(path) -> List[TrafficRequest]:
    """Parse a scripted request file (JSON array or JSON lines)."""
    text = Path(path).read_text(encoding="utf-8").strip()
    if not text:
        return []
    if text.startswith("["):
        try:
            payloads = json.loads(text)
        except json.JSONDecodeError as exc:
            raise HarnessError(f"{path}: invalid JSON: {exc}") from None
        if not isinstance(payloads, list):
            raise HarnessError(f"{path}: expected a JSON array of requests")
    else:
        payloads = []
        for lineno, line in enumerate(text.splitlines(), start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payloads.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise HarnessError(
                    f"{path}:{lineno}: invalid JSON: {exc}"
                ) from None
    return [TrafficRequest.from_dict(payload) for payload in payloads]


def dump_requests(requests: Sequence[TrafficRequest], path) -> Path:
    """Write a scripted request file (JSON array); returns the path."""
    path = Path(path)
    payload = [request.to_dict() for request in requests]
    path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path
