"""Job model for the batched simulation service.

A *request* is anything :func:`repro.api.run_suite` would accept as one
suite entry — a full :class:`~repro.harness.runner.RunConfig` or a plain
``(benchmark, scheme)`` pair.  The service turns each request into (or
attaches it to) a :class:`ServiceJob`, the awaitable handle a client
holds while the simulation is pending.

Jobs move through a small, strictly forward state machine::

    QUEUED ──> BATCHED ──> DONE | FAILED
       │
       └──> INLINE ──────> DONE | FAILED        (small-job fast path)

    CACHED              (resolved at submit time, never queued)

Duplicate submissions never create a second job: a request whose
:meth:`RunConfig.key` matches an in-flight job *coalesces* onto it
(``waiters`` counts how many submissions share the handle), so the pool
simulates each unique config at most once no matter how hot the traffic
is.  Shed requests (see :mod:`repro.service.admission`) raise
:class:`~repro.errors.ServiceOverloaded` at submit time and never become
jobs at all.

:class:`ServiceStats` is the service's waiter-weighted ledger.  Its
defining invariant — checked by the load tests — is that no submission
is ever lost::

    submitted == completed + failed + shed + in_flight

The ledger fields are plain sums, so the invariant composes: a
:class:`~repro.service.fleet.ServiceFleet` adds its shards' ledgers
field-by-field and the same equation holds fleet-wide (the front door
never drops a submission between shards).
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple, Union

from repro.errors import HarnessError
from repro.harness.runner import RunConfig
from repro.sim.engine import SimResult

#: Job lifecycle states.
QUEUED = "queued"  # admitted, waiting for a batch slot
BATCHED = "batched"  # currently part of a pool dispatch
INLINE = "inline"  # ran on the event-loop thread ("parent does the work")
CACHED = "cached"  # answered from the result cache at submit time
DONE = "done"
FAILED = "failed"  # quarantined by the execution layer

#: What ``submit`` accepts: a full config or a (benchmark, scheme) pair.
RequestLike = Union[RunConfig, Tuple[str, str]]


def as_run_config(entry: RequestLike, seed: int = 1) -> RunConfig:
    """Normalize one request entry into a :class:`RunConfig`."""
    if isinstance(entry, RunConfig):
        return entry
    try:
        benchmark, scheme = entry
    except (TypeError, ValueError):
        raise HarnessError(
            f"requests must be RunConfig or (benchmark, scheme), got {entry!r}"
        ) from None
    return RunConfig(benchmark=benchmark, scheme=scheme, seed=seed)


class ServiceJob:
    """Awaitable handle for one unique in-flight simulation.

    ``await job`` (or :meth:`result`) yields the :class:`SimResult`, or
    raises the typed :class:`~repro.errors.RunFailure` the execution
    layer quarantined the run with.  ``waiters`` counts the submissions
    coalesced onto this handle; the service weights its completion
    counters by it so every submission is accounted for exactly once.
    """

    __slots__ = (
        "config", "state", "decision", "waiters", "_future",
        "submitted_at", "dispatched_at", "finished_at",
    )

    def __init__(self, config: RunConfig, *, decision=None):
        self.config = config
        self.state = QUEUED
        #: The AdmissionDecision that let this job in (None for cache hits).
        self.decision = decision
        self.waiters = 1
        # Wall-clock (perf_counter) span stamps for the latency metrics:
        # submit -> dispatch (queue wait) -> finish (end-to-end).  Stages
        # a job never reaches stay None (a cached job never dispatches).
        self.submitted_at: Optional[float] = None
        self.dispatched_at: Optional[float] = None
        self.finished_at: Optional[float] = None
        # Jobs are only ever created by the service inside its event loop;
        # get_running_loop keeps that contract honest (and avoids the
        # deprecated implicit-loop creation of get_event_loop).
        self._future: asyncio.Future = (
            asyncio.get_running_loop().create_future()
        )

    @property
    def key(self) -> Tuple:
        return self.config.key()

    @property
    def done(self) -> bool:
        return self._future.done()

    def __await__(self):
        return self._future.__await__()

    async def result(self) -> SimResult:
        return await self._future

    # -- resolution (service-internal) ----------------------------------
    def resolve(self, result: SimResult, state: str = DONE) -> None:
        self.state = state
        if not self._future.done():
            self._future.set_result(result)

    def fail(self, error: BaseException) -> None:
        self.state = FAILED
        if not self._future.done():
            self._future.set_exception(error)
            # The service always observes failures through its own stats;
            # a client that only polls `done` must not trigger the event
            # loop's "exception was never retrieved" warning.
            self._future.exception()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceJob({self.config.benchmark}/{self.config.scheme}, "
            f"state={self.state}, waiters={self.waiters})"
        )


@dataclass
class ServiceStats:
    """Waiter-weighted request ledger plus execution-layer aggregates."""

    # -- per-submission accounting (each submission counted exactly once)
    submitted: int = 0
    completed: int = 0  # resolved with a result (any path)
    failed: int = 0  # resolved with a quarantined failure
    shed: int = 0  # rejected with ServiceOverloaded at submit time
    in_flight: int = 0  # submissions whose handle is not yet resolved

    # -- how submissions were routed
    coalesced: int = 0  # duplicates attached to an in-flight job
    cache_hits: int = 0  # answered from the runner cache, no job created
    admitted: int = 0  # unique jobs handed to the batching scheduler
    inline: int = 0  # unique jobs run on the event-loop thread
    autotuned: int = 0  # submissions rewritten to a tuner-proposed arm

    # -- batching / pool aggregates (from SuiteReports)
    batches: int = 0
    pool_runs: int = 0  # work items the pool actually executed
    pool_resumed: int = 0  # batch slots answered from cache by the pool
    retries: int = 0
    timeouts: int = 0
    worker_crashes: int = 0
    quarantined: int = 0  # unique jobs quarantined by the execution layer
    max_batch_size: int = 0
    peak_queue_depth: int = 0

    #: Cost-model snapshot, filled in by :meth:`SimulationService.stats`.
    model: Dict[str, Dict[str, float]] = field(default_factory=dict)

    #: Per-pair autotuner snapshot (incumbent, arms alive, regret),
    #: filled in by :meth:`SimulationService.stats` when autotuning is on.
    autotune: Dict[str, Dict[str, object]] = field(default_factory=dict)

    #: Latency digest (end-to-end, queue-wait, per-route percentiles)
    #: sourced from the service's :mod:`repro.obs.metrics` histograms,
    #: filled in by :meth:`SimulationService.stats`.
    latency: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def lost(self) -> int:
        """Submissions unaccounted for — the soak tests pin this at 0."""
        return self.submitted - self.completed - self.failed - self.shed \
            - self.in_flight

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-ready form (``repro serve --stats-json``)."""
        out: Dict[str, object] = {
            name: getattr(self, name)
            for name in (
                "submitted", "completed", "failed", "shed", "in_flight",
                "coalesced", "cache_hits", "admitted", "inline",
                "autotuned",
                "batches", "pool_runs", "pool_resumed", "retries",
                "timeouts", "worker_crashes", "quarantined",
                "max_batch_size", "peak_queue_depth",
            )
        }
        out["lost"] = self.lost
        out["model"] = self.model
        out["autotune"] = self.autotune
        out["latency"] = self.latency
        return out
