"""The asyncio simulation service façade.

``SimulationService`` is the long-running, in-process entry point the
rest of the stack has been building toward: callers ``submit``
RunConfig-shaped requests and await the handles; the service decides —
per request, before any work happens — whether to answer from cache,
coalesce onto an in-flight duplicate, run inline on the event-loop
thread, batch onto the worker pool, or shed.  The decision pipeline, in
order::

    submit(request)
      1. coalesce     duplicate of an in-flight job?  join its handle.
      2. cache        Runner memory/disk hit?  resolve immediately.
      3. admission    SPAWN-style verdict (repro.service.admission):
           shed    -> raise ServiceOverloaded (evidence attached)
           inline  -> simulate here, on the event-loop thread
           admit   -> enqueue for the batching scheduler
      4. batching     scheduler drains admitted jobs into
                      ParallelRunner.run_suite dispatches (worker pool)

Every path funnels through the same deterministic
:class:`~repro.harness.runner.Runner`, so a result obtained through the
service is bit-identical to a direct ``Runner.run`` of the same config —
the load suite (``tests/test_service_load.py``) pins that down, and the
chaos suite proves the execution layer's retry/quarantine guarantees
hold behind the service too (a quarantined job fails its own handle;
nothing else is disturbed).

Observability: ``service.*`` tracer events (wall-clock stamped, like the
``harness.*`` kinds) for every routing decision, ``service.*`` counters
in :data:`repro.obs.profile.REGISTRY`, and a :class:`ServiceStats`
ledger whose headline invariant is *zero lost submissions*.

Latency telemetry (:mod:`repro.obs.metrics`): every job is span-stamped
submit -> dispatch -> finish, feeding per-stage histograms
(``service.stage_seconds`` with ``stage`` in ``admit | queue | dispatch
| total``) and per-admission-route end-to-end histograms
(``service.route_latency_seconds`` with ``route`` in ``cached | inline |
batch``), plus ``service.requests_total`` route counters and
queue-depth/in-flight gauges.  :meth:`SimulationService.stats` digests
them into ``ServiceStats.latency`` (p50/p95/p99 end-to-end and
queue-wait), which ``repro serve --stats-json`` serializes.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Union

from repro.errors import (
    HarnessError,
    ReproError,
    RunFailure,
    ServiceClosed,
    ServiceOverloaded,
)
from repro.harness import schemes as sch
from repro.harness.faults import FaultPlan
from repro.harness.parallel import (
    FAILED,
    ExecutionPolicy,
    ParallelRunner,
    SuiteReport,
    TaskOutcome,
)
from repro.harness.runner import RunConfig, Runner
from repro.obs.metrics import METRICS, MetricsRegistry
from repro.obs.profile import REGISTRY
from repro.obs.tracer import (
    NULL_TRACER,
    SERVICE_ADMIT,
    SERVICE_BATCH,
    SERVICE_CACHE_HIT,
    SERVICE_COALESCE,
    SERVICE_COMPLETE,
    SERVICE_INLINE,
    SERVICE_QUARANTINE,
    SERVICE_SHED,
    SERVICE_SUBMIT,
    Tracer,
)
from repro.service.admission import (
    ADMIT,
    INLINE,
    SHED,
    AdmissionController,
    CostModel,
)
from repro.service.autotune import AutoTuner
from repro.service.jobs import (
    CACHED,
    DONE,
    RequestLike,
    ServiceJob,
    ServiceStats,
    as_run_config,
)
from repro.service.jobs import INLINE as JOB_INLINE
from repro.service.scheduler import BatchScheduler
from repro.sim.engine import SimResult
from repro.workloads.base import get_benchmark


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of one :class:`SimulationService` instance.

    ``deadline_ms`` is the SPAWN-style shed deadline: a request whose
    *predicted queue delay* (predicted backlog seconds / ``jobs``)
    exceeds it is rejected with :class:`~repro.errors.ServiceOverloaded`
    instead of being queued.  ``None`` disables shedding entirely (the
    queue is unbounded, like the paper's GPU without SPAWN).

    ``inline_threshold_ms`` is the "parent does the work" branch: a
    request predicted to cost no more than this runs synchronously on
    the event-loop thread, skipping batch and pool overhead — the
    serving analog of Algorithm 1 serializing small workloads in the
    parent thread.  ``0`` (the default) disables the branch.
    """

    jobs: int = 2  # worker processes per batch dispatch
    deadline_ms: Optional[float] = None  # predicted-delay shed deadline
    inline_threshold_ms: float = 0.0  # small-job inline cutoff
    max_batch: int = 8  # jobs per run_suite dispatch
    max_queue: Optional[int] = None  # admitted-but-unfinished job cap
    ewma_alpha: float = 0.3  # cost model responsiveness
    ewma_window: int = 32  # cost model observation window
    engine: str = "default"  # simulation core applied to plain requests
    autotune: bool = False  # online successive halving over the sweep grids
    autotune_pulls: int = 1  # observations per arm per halving round
    autotune_seed: int = 0  # exploration-order seed (see autotune module)

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise HarnessError(f"jobs must be >= 1, got {self.jobs}")
        if self.autotune_pulls < 1:
            raise HarnessError(
                f"autotune_pulls must be >= 1, got {self.autotune_pulls}"
            )
        Runner._simulator_class(self.engine)  # validate at the door
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise HarnessError(
                f"deadline_ms must be positive, got {self.deadline_ms}"
            )
        if self.inline_threshold_ms < 0:
            raise HarnessError(
                f"inline_threshold_ms must be >= 0, got "
                f"{self.inline_threshold_ms}"
            )
        if self.max_batch < 1:
            raise HarnessError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_queue is not None and self.max_queue < 1:
            raise HarnessError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )


class SimulationService:
    """Batched async simulation service with SPAWN-style admission control.

    Use as an async context manager (or call :meth:`start`/:meth:`close`
    explicitly)::

        async with SimulationService(config=ServiceConfig(jobs=2)) as svc:
            job = await svc.submit(("BFS-graph500", "spawn"))
            result = await job

    ``runner`` supplies the caches (attach a store for cross-process
    persistence); ``policy`` and ``faults`` are passed straight to the
    underlying :class:`~repro.harness.parallel.ParallelRunner`, so the
    execution layer's timeout/retry/quarantine behaviour — and its chaos
    testability — carry over unchanged.
    """

    def __init__(
        self,
        runner: Optional[Runner] = None,
        *,
        config: Optional[ServiceConfig] = None,
        policy: Optional[ExecutionPolicy] = None,
        faults: Optional[FaultPlan] = None,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.runner = runner if runner is not None else Runner()
        self.config = config if config is not None else ServiceConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Latency/counter instruments; the process-wide registry unless
        #: the caller injects its own (tests, per-replay isolation).
        self.metrics = metrics if metrics is not None else METRICS
        self._stage_hist = {
            stage: self.metrics.histogram("service.stage_seconds", stage=stage)
            for stage in ("admit", "queue", "dispatch", "total")
        }
        self._queue_gauge = self.metrics.gauge("service.queue_depth")
        self._inflight_gauge = self.metrics.gauge("service.in_flight")
        self.model = CostModel(
            alpha=self.config.ewma_alpha, window=self.config.ewma_window
        )
        deadline_s = (
            self.config.deadline_ms / 1000.0
            if self.config.deadline_ms is not None
            else None
        )
        self.controller = AdmissionController(
            self.model,
            workers=self.config.jobs,
            deadline_s=deadline_s,
            inline_threshold_s=self.config.inline_threshold_ms / 1000.0,
            max_queue=self.config.max_queue,
        )
        #: Online parameter search (None unless ``config.autotune``).  It
        #: shares the service's runner, so warm starts read the same
        #: store backend that batch results persist into.
        self.autotuner: Optional[AutoTuner] = None
        if self.config.autotune:
            self.autotuner = AutoTuner(
                runner=self.runner,
                pulls_per_round=self.config.autotune_pulls,
                seed=self.config.autotune_seed,
                tracer=self.tracer,
                metrics=self.metrics,
            )
        self._parallel = ParallelRunner(
            self.runner, policy=policy, faults=faults, tracer=tracer
        )
        self._scheduler = BatchScheduler(
            self._dispatch, self._on_batch_done,
            max_batch=self.config.max_batch,
        )
        self._inflight: dict = {}  # RunConfig.key() -> ServiceJob
        self._stats = ServiceStats()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "SimulationService":
        if self._closed:
            raise ServiceClosed("service already closed")
        if not self._started:
            self._scheduler.start()
            self._started = True
        return self

    async def close(self, *, drain: bool = True) -> None:
        """Stop accepting work; by default finish everything queued first."""
        if self._closed:
            return
        self._closed = True
        if self._started:
            stranded = await self._scheduler.stop(drain=drain)
            for job in stranded:
                self._finish_job(
                    job, error=ServiceClosed(
                        f"{job.config.benchmark}/{job.config.scheme} "
                        "abandoned: service closed without draining"
                    )
                )

    async def __aenter__(self) -> "SimulationService":
        return await self.start()

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # Submission pipeline
    # ------------------------------------------------------------------
    async def submit(self, entry: RequestLike, *, seed: int = 1) -> ServiceJob:
        """Route one request; returns its (possibly shared) job handle.

        Raises :class:`~repro.errors.ServiceOverloaded` when the
        admission controller sheds the request, and
        :class:`~repro.errors.HarnessError` for requests that could
        never simulate (unknown benchmark or scheme) — malformed traffic
        is rejected at the door, not quarantined in a batch.
        """
        if self._closed:
            raise ServiceClosed("service is closed")
        if not self._started:
            await self.start()
        submitted_at = time.perf_counter()
        config = as_run_config(entry, seed)
        if self.config.engine != "default" and config.engine == "default":
            # The service-level engine applies to requests that did not
            # pick one themselves (tuples, traffic files, replayed
            # ledgers); an explicit RunConfig.engine always wins.
            config = replace(config, engine=self.config.engine)
        # Validate eagerly so one bad request cannot poison a batch.
        get_benchmark(config.benchmark)
        sch.SchemeSpec.parse(config.scheme)
        if self.autotuner is not None:
            # Tunable requests run the tuner's current arm.  Rewriting
            # before coalesce/cache means identical proposals dedup onto
            # one simulation — repeat pulls of an arm are free.
            tuned = self.autotuner.rewrite(config)
            if tuned is not config:
                self._stats.autotuned += 1
                REGISTRY.count("service.autotuned")
                config = tuned
        self._stats.submitted += 1
        REGISTRY.count("service.submitted")
        self._emit(
            SERVICE_SUBMIT,
            benchmark=config.benchmark, scheme=config.scheme, seed=config.seed,
        )

        # 1. Coalesce onto an identical in-flight job.
        job = self._inflight.get(config.key())
        if job is not None:
            job.waiters += 1
            self._stats.coalesced += 1
            self._stats.in_flight += 1
            self._inflight_gauge.inc()
            REGISTRY.count("service.coalesced")
            self.metrics.counter("service.requests_total", route="coalesced").inc()
            self._emit(
                SERVICE_COALESCE,
                benchmark=config.benchmark, scheme=config.scheme,
                waiters=job.waiters,
            )
            return job

        # 2. Serve from the runner's memory/disk cache, pool untouched.
        cached = self.runner.cached(config)
        if cached is not None:
            self._stats.cache_hits += 1
            self._stats.completed += 1
            REGISTRY.count("service.cache_hits")
            self.metrics.counter("service.requests_total", route="cached").inc()
            self._emit(
                SERVICE_CACHE_HIT,
                benchmark=config.benchmark, scheme=config.scheme,
            )
            job = ServiceJob(config)
            job.submitted_at = submitted_at
            job.resolve(cached, state=CACHED)
            self._observe_latency(job, "cached")
            if self.autotuner is not None:
                # A cache hit is still a completed pull of its arm — the
                # deterministic makespan is the objective, so a stored
                # result is exactly as informative as a fresh one.
                self.autotuner.observe(config, makespan=cached.makespan)
            return job

        # 3. Admission: price the request before it may touch the pool.
        decision = self.controller.decide(config.benchmark, config.scheme)
        self._stage_hist["admit"].observe(
            max(time.perf_counter() - submitted_at, 0.0)
        )
        if decision.verdict == SHED:
            self._stats.shed += 1
            REGISTRY.count("service.shed")
            self.metrics.counter("service.requests_total", route="shed").inc()
            self._emit(
                SERVICE_SHED,
                benchmark=config.benchmark, scheme=config.scheme,
                **decision.evidence(),
            )
            raise ServiceOverloaded(
                f"{config.benchmark}/{config.scheme} shed: predicted queue "
                f"delay {decision.predicted_delay_s:.3f}s exceeds the "
                f"{decision.deadline_s}s deadline "
                f"(queue depth {decision.queue_depth})",
                decision=decision,
            )
        if decision.verdict == INLINE:
            return self._run_inline(config, decision, submitted_at)

        # 4. Admit to the batching scheduler.
        assert decision.verdict == ADMIT
        job = ServiceJob(config, decision=decision)
        job.submitted_at = submitted_at
        self._inflight[job.key] = job
        self.controller.on_admitted(decision)
        self._scheduler.enqueue(job)
        self._stats.admitted += 1
        self._stats.in_flight += 1
        self._stats.peak_queue_depth = max(
            self._stats.peak_queue_depth, self._scheduler.queue_depth
        )
        REGISTRY.count("service.admitted")
        self.metrics.counter("service.requests_total", route="batch").inc()
        self._queue_gauge.set(self._scheduler.queue_depth)
        self._inflight_gauge.inc()
        self._emit(
            SERVICE_ADMIT,
            benchmark=config.benchmark, scheme=config.scheme,
            **decision.evidence(),
        )
        return job

    async def gather(
        self,
        jobs: Iterable[ServiceJob],
        *,
        return_exceptions: bool = False,
    ) -> List[Union[SimResult, BaseException]]:
        """Await many handles (in input order), like ``asyncio.gather``."""
        return await asyncio.gather(
            *(job.result() for job in jobs),
            return_exceptions=return_exceptions,
        )

    # ------------------------------------------------------------------
    # Inline path ("the parent does the work")
    # ------------------------------------------------------------------
    def _run_inline(
        self, config: RunConfig, decision, submitted_at: float
    ) -> ServiceJob:
        """Simulate a predicted-small job on the event-loop thread.

        Deliberately blocking: the whole point of the branch is that for
        jobs cheaper than the batching overhead, doing the work here
        beats queueing it — exactly the paper's serialize-in-parent
        argument.  The admission threshold bounds the stall.
        """
        job = ServiceJob(config, decision=decision)
        job.submitted_at = submitted_at
        self._stats.inline += 1
        REGISTRY.count("service.inline")
        self.metrics.counter("service.requests_total", route="inline").inc()
        self._emit(
            SERVICE_INLINE,
            benchmark=config.benchmark, scheme=config.scheme,
            **decision.evidence(),
        )
        start = time.perf_counter()
        try:
            result = self.runner.run(config)
        except ReproError as exc:
            failure = RunFailure(
                f"{config.benchmark}/{config.scheme} failed inline: {exc}",
                config=config,
                attempts=1,
            )
            failure.__cause__ = exc
            self._stats.failed += 1
            self._stats.quarantined += 1
            REGISTRY.count("service.quarantined")
            self._emit(
                SERVICE_QUARANTINE,
                benchmark=config.benchmark, scheme=config.scheme,
                error=str(exc),
            )
            job.fail(failure)
            self._observe_latency(job, "inline")
            return job
        elapsed = time.perf_counter() - start
        self.model.observe(
            config.benchmark, config.scheme, elapsed, cycles=result.makespan
        )
        if self.autotuner is not None:
            self.autotuner.observe(
                config, seconds=elapsed, makespan=result.makespan
            )
        self._stats.completed += 1
        self._emit(
            SERVICE_COMPLETE,
            benchmark=config.benchmark, scheme=config.scheme,
            seconds=elapsed, path=JOB_INLINE,
        )
        job.resolve(result, state=JOB_INLINE)
        self._observe_latency(job, "inline")
        return job

    # ------------------------------------------------------------------
    # Batch dispatch (scheduler callbacks)
    # ------------------------------------------------------------------
    def _dispatch(self, configs: List[RunConfig]) -> SuiteReport:
        """Blocking pool dispatch; runs on an executor thread.

        Must never raise: an exception here would kill the scheduler loop
        and strand every awaiting handle.  Submit-time validation makes a
        batch-level failure genuinely exceptional; if one happens anyway,
        it is converted into a report that quarantines the whole batch.
        """
        try:
            return self._parallel.run_suite(configs, jobs=self.config.jobs)
        except Exception as exc:
            report = SuiteReport(configs=list(configs))
            report.results = [None] * len(configs)
            for config in configs:
                failure = RunFailure(
                    f"{config.benchmark}/{config.scheme}: batch dispatch "
                    f"failed: {exc}",
                    config=config,
                )
                failure.__cause__ = exc
                report.outcomes.append(
                    TaskOutcome(
                        config=config, status=FAILED,
                        error=str(failure), failure=failure,
                    )
                )
                report.quarantined += 1
            return report

    def _on_batch_done(
        self,
        batch: List[ServiceJob],
        report: SuiteReport,
        elapsed: float,
    ) -> None:
        self._stats.batches += 1
        self._stats.pool_runs += len(report.outcomes)
        self._stats.pool_resumed += report.resumed
        self._stats.retries += report.retries
        self._stats.timeouts += report.timeouts
        self._stats.worker_crashes += report.worker_crashes
        self._stats.max_batch_size = max(
            self._stats.max_batch_size, len(batch)
        )
        REGISTRY.count("service.batches")
        REGISTRY.count("service.batched_jobs", len(batch))
        self.metrics.histogram("service.batch_seconds").observe(max(elapsed, 0.0))
        self._queue_gauge.set(self._scheduler.queue_depth)
        self._emit(
            SERVICE_BATCH,
            size=len(batch), seconds=elapsed,
            pool_runs=len(report.outcomes), resumed=report.resumed,
        )
        # Attribute the batch's wall time evenly across its jobs: crude,
        # but an EWMA over many batches converges on per-pair cost, and
        # admission only needs ordering-quality estimates.
        share = elapsed / len(batch)
        for job, result in zip(batch, report.results):
            failure = None
            if result is None:
                failure = self._quarantine_failure(job.config, report)
            else:
                self.model.observe(
                    job.config.benchmark, job.config.scheme, share,
                    cycles=result.makespan,
                )
                if self.autotuner is not None:
                    self.autotuner.observe(
                        job.config, seconds=share, makespan=result.makespan
                    )
            self._finish_job(job, result=result, error=failure)

    def _quarantine_failure(
        self, config: RunConfig, report: SuiteReport
    ) -> RunFailure:
        """The typed failure the execution layer recorded for ``config``."""
        for outcome in report.outcomes:
            if outcome.config.key() == config.key() and outcome.failure:
                return outcome.failure
        return RunFailure(
            f"{config.benchmark}/{config.scheme} was quarantined",
            config=config,
        )

    def _finish_job(
        self,
        job: ServiceJob,
        *,
        result: Optional[SimResult] = None,
        error: Optional[BaseException] = None,
    ) -> None:
        self._inflight.pop(job.key, None)
        if job.decision is not None:
            self.controller.on_finished(job.decision)
        self._stats.in_flight -= job.waiters
        self._inflight_gauge.dec(job.waiters)
        self._observe_latency(job, "batch")
        if error is not None:
            self._stats.failed += job.waiters
            self._stats.quarantined += 1
            REGISTRY.count("service.quarantined")
            self._emit(
                SERVICE_QUARANTINE,
                benchmark=job.config.benchmark, scheme=job.config.scheme,
                error=str(error),
            )
            job.fail(error)
        else:
            self._stats.completed += job.waiters
            self._emit(
                SERVICE_COMPLETE,
                benchmark=job.config.benchmark, scheme=job.config.scheme,
                waiters=job.waiters, path=DONE,
            )
            job.resolve(result)

    # ------------------------------------------------------------------
    # Latency spans (repro.obs.metrics)
    # ------------------------------------------------------------------
    def _observe_latency(self, job: ServiceJob, route: str) -> None:
        """Close a job's span stamps into the stage/route histograms.

        Called exactly once per unique job, at resolution (any path,
        success or failure — a quarantined request still *answered* in
        that much wall time).  Jobs without a submit stamp (defensive
        only) are skipped rather than recorded as zero.
        """
        now = time.perf_counter()
        job.finished_at = now
        start = job.submitted_at
        if start is None:
            return
        total = max(now - start, 0.0)
        self._stage_hist["total"].observe(total)
        self.metrics.histogram(
            "service.route_latency_seconds", route=route
        ).observe(total)
        if job.dispatched_at is not None:
            self._stage_hist["queue"].observe(
                max(job.dispatched_at - start, 0.0)
            )
            self._stage_hist["dispatch"].observe(
                max(now - job.dispatched_at, 0.0)
            )

    def _latency_digest(self) -> dict:
        """The ``ServiceStats.latency`` section: JSON-ready percentiles."""
        digest = {
            "end_to_end": self._stage_hist["total"].summary(),
            "queue_wait": self._stage_hist["queue"].summary(),
        }
        routes = {}
        for route in ("cached", "inline", "batch"):
            hist = self.metrics.histogram(
                "service.route_latency_seconds", route=route
            )
            if hist.count:
                routes[route] = hist.summary()
        digest["routes"] = routes
        return digest

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> ServiceStats:
        """A point-in-time copy of the ledger, with the model snapshot."""
        return replace(
            self._stats,
            model=self.model.snapshot(),
            autotune=(
                self.autotuner.snapshot() if self.autotuner is not None else {}
            ),
            latency=self._latency_digest(),
        )

    @property
    def queue_depth(self) -> int:
        return self._scheduler.queue_depth

    def _emit(self, kind: str, **args) -> None:
        if self.tracer.enabled:
            self.tracer.emit(kind, ts=time.perf_counter(), **args)
