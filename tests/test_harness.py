"""Tests for the experiment harness (schemes, runner, sweeps)."""

import pytest

from repro.errors import HarnessError
from repro.harness import schemes as sch
from repro.harness.report import format_series, format_table, percent
from repro.harness.runner import PER_PARENT_CTA, RunConfig, Runner, geometric_mean
from repro.harness.sweep import offline_search, threshold_sweep
from repro.sim.config import GPUConfig
from repro.workloads import get_benchmark

#: The cheapest benchmark to simulate end-to-end.
FAST = "GC-citation"


@pytest.fixture(scope="module")
def runner():
    return Runner(GPUConfig())


class TestSchemeParsing:
    def test_known_schemes(self):
        assert sch.SchemeSpec.parse("flat").variant == "flat"
        assert sch.SchemeSpec.parse("baseline-dp").variant == "dp"
        assert sch.SchemeSpec.parse("spawn").name == "spawn"
        assert sch.SchemeSpec.parse("dtbl").name == "dtbl"

    def test_threshold_scheme(self):
        spec = sch.SchemeSpec.parse("threshold:128")
        assert spec.threshold == 128
        assert spec.variant == "dp"

    def test_bad_schemes(self):
        with pytest.raises(HarnessError):
            sch.SchemeSpec.parse("nope")
        with pytest.raises(HarnessError):
            sch.SchemeSpec.parse("threshold:abc")
        with pytest.raises(HarnessError):
            sch.SchemeSpec.parse("threshold:-4")

    def test_make_policy_matches_scheme(self):
        bench = get_benchmark(FAST)
        policy = sch.make_policy(sch.SchemeSpec.parse("baseline-dp"), bench)
        assert policy.threshold == bench.default_threshold
        policy = sch.make_policy(sch.SchemeSpec.parse("threshold:99"), bench)
        assert policy.threshold == 99
        policy = sch.make_policy(sch.SchemeSpec.parse("spawn"), bench)
        assert policy.name == "spawn"

    def test_offline_has_no_direct_policy(self):
        with pytest.raises(HarnessError):
            sch.make_policy(sch.SchemeSpec.parse("offline"), get_benchmark(FAST))

    def test_parse_scheme_alias_warns_but_works(self):
        with pytest.warns(DeprecationWarning, match="SchemeSpec.parse"):
            spec = sch.parse_scheme("threshold:64")
        assert spec == sch.SchemeSpec.parse("threshold:64")


class TestRunner:
    def test_run_caches_results(self, runner):
        config = RunConfig(benchmark=FAST, scheme="flat")
        first = runner.run(config)
        second = runner.run(config)
        assert first is second

    def test_distinct_configs_not_conflated(self, runner):
        a = runner.run(RunConfig(benchmark=FAST, scheme="flat"))
        b = runner.run(RunConfig(benchmark=FAST, scheme="baseline-dp"))
        assert a is not b

    def test_speedup_definition(self, runner):
        speedup = runner.speedup(FAST, "baseline-dp")
        flat = runner.run(RunConfig(benchmark=FAST, scheme="flat"))
        base = runner.run(RunConfig(benchmark=FAST, scheme="baseline-dp"))
        assert speedup == pytest.approx(flat.makespan / base.makespan)

    def test_offline_must_be_resolved_by_sweep(self, runner):
        with pytest.raises(HarnessError):
            runner.run(RunConfig(benchmark=FAST, scheme="offline"))

    def test_stream_policy_selection(self, runner):
        result = runner.run(
            RunConfig(benchmark=FAST, scheme="baseline-dp", stream_policy=PER_PARENT_CTA)
        )
        assert result.makespan > 0
        with pytest.raises(HarnessError):
            runner.run(RunConfig(benchmark=FAST, scheme="flat", stream_policy="bogus"))


class TestSweep:
    def test_threshold_sweep_covers_thresholds(self, runner):
        sweep = threshold_sweep(runner, FAST, thresholds=(48, 4096))
        assert [p.threshold for p in sweep.points] == [48, 4096]
        # A higher threshold offloads less work.
        assert sweep.points[0].offload_fraction >= sweep.points[1].offload_fraction

    def test_best_point_maximizes_speedup(self, runner):
        sweep = threshold_sweep(runner, FAST, thresholds=(48, 4096))
        best = sweep.best()
        assert best.speedup_over_flat == max(
            p.speedup_over_flat for p in sweep.points
        )

    def test_offline_search_returns_best_run(self, runner):
        threshold, result = offline_search(runner, FAST)
        bench = get_benchmark(FAST)
        assert threshold in bench.sweep_thresholds
        assert result.makespan > 0


class TestAggregation:
    def test_geometric_mean(self):
        assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_validation(self):
        with pytest.raises(HarnessError):
            geometric_mean([])
        with pytest.raises(HarnessError):
            geometric_mean([1.0, 0.0])


class TestReport:
    def test_format_table_aligns(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["xx", 3.0]], title="t")
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "2.500" in text

    def test_format_series_downsamples(self):
        text = format_series("s", [(float(i), i) for i in range(100)], max_points=5)
        assert text.count("\n") <= 8

    def test_percent(self):
        assert percent(0.5) == "50.0%"
