"""Certification tests for the batch-stepping fast engine (repro.sim.fast).

Three layers:

* **Queue equivalence** — :class:`FastEventQueue` (bucketed calendar
  queue, whole same-time batches drained at once) against the reference
  binary-heap :class:`EventQueue`: identical delivery order on ties,
  under cancellation, under schedule-during-run, and identical budget
  semantics.  This is where PR 2's reverted deferred-reschedule bug
  class would resurface, so ties and cancellations get explicit tests
  on top of the hypothesis script sweep.
* **Engine bit-identity** — :class:`FastSimulator` against
  :class:`GPUSimulator` on fixed and hypothesis-generated applications:
  canonical event streams diff clean and ``SimStats`` round-trip dicts
  are equal.  Large generated apps ride in the ``slow`` marker with the
  rest of the differential suite.
* **Selection plumbing** — ``ENGINES`` / ``simulator_class`` /
  ``Runner(default_engine=...)`` resolve and reject engines
  consistently, and resolved engines land in engine-keyed cache slots.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import run_differential
from repro.check.golden import canonical_events, diff_traces
from repro.errors import ConfigError, HarnessError, SimulationError
from repro.harness.runner import RunConfig, Runner
from repro.obs.tracer import Tracer
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator
from repro.sim.events import EventQueue
from repro.sim.fast import ENGINES, FastEventQueue, FastSimulator, simulator_class
from repro.workloads import get_benchmark

from tests.strategies import POLICIES, micro_apps, policies, rich_apps

QUEUES = {"heap": EventQueue, "fast": FastEventQueue}


# ---------------------------------------------------------------------------
# Queue equivalence
# ---------------------------------------------------------------------------
@st.composite
def queue_scripts(draw):
    """A schedule/cancel script with deliberately heavy time collisions."""
    n = draw(st.integers(min_value=1, max_value=40))
    # Few distinct timestamps -> most events tie, exercising batch drains.
    times = draw(
        st.lists(
            st.sampled_from([0.0, 1.0, 1.0, 2.5, 2.5, 2.5, 7.0, 100.0]),
            min_size=n, max_size=n,
        )
    )
    cancels = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=0, max_size=n // 2, unique=True,
        )
    )
    return times, cancels


@given(script=queue_scripts())
@settings(max_examples=80, deadline=None)
def test_fast_queue_matches_heap_queue(script):
    times, cancels = script
    order = {name: [] for name in QUEUES}
    queues = {name: cls() for name, cls in QUEUES.items()}
    for name, queue in queues.items():
        handles = [
            queue.schedule(t, lambda n=name, i=i: order[n].append(i))
            for i, t in enumerate(times)
        ]
        for index in cancels:
            handles[index].cancel()
        queue.run()
    assert order["fast"] == order["heap"]
    assert queues["fast"].now == queues["heap"].now


def test_tie_drain_preserves_seq_order_for_midbatch_schedules():
    """Same-time events scheduled *during* a batch run after it.

    ``seq`` is globally monotonic, so a new event at the current
    timestamp must sort after every already-scheduled tie — the fast
    queue delivers it from a fresh bucket, the heap from a later sift;
    both in the same place.
    """
    for name, cls in QUEUES.items():
        queue = cls()
        order = []

        def first(queue=queue, order=order):
            order.append("first")
            queue.schedule(5.0, lambda: order.append("tail"))

        queue.schedule(5.0, first)
        queue.schedule(5.0, lambda: order.append("second"))
        queue.run()
        assert order == ["first", "second", "tail"], name


def test_earlier_event_cancelling_later_tie_is_honoured():
    for name, cls in QUEUES.items():
        queue = cls()
        order = []
        later = []

        def first(order=order, later=later):
            order.append("first")
            later[0].cancel()

        queue.schedule(5.0, first)
        later.append(queue.schedule(5.0, lambda: order.append("dead")))
        queue.schedule(5.0, lambda: order.append("third"))
        queue.run()
        assert order == ["first", "third"], name


def test_budget_exhaustion_matches_reference_semantics():
    for name, cls in QUEUES.items():
        queue = cls()

        def rearm(queue=queue):
            queue.schedule_in(1, rearm)

        queue.schedule(0, rearm)
        with pytest.raises(SimulationError, match="event budget exhausted"):
            queue.run(max_events=100)

    # The budget is checked before the pop: an exactly-consumed budget
    # raises even when the queue is empty, on both implementations.
    for name, cls in QUEUES.items():
        queue = cls()
        queue.schedule(0, lambda: None)
        with pytest.raises(SimulationError, match="after 1 events"):
            queue.run(max_events=1)


def test_fast_queue_len_and_peek_track_cancellation():
    queue = FastEventQueue()
    events = [queue.schedule(float(i % 3), lambda: None) for i in range(9)]
    assert len(queue) == 9
    assert queue.peek_time() == 0.0
    for event in events[::3]:  # i = 0, 3, 6: all of bucket t=0
        event.cancel()
    assert len(queue) == 6
    assert queue.peek_time() == 1.0
    assert queue.pop().time == 1.0


def test_fast_queue_compaction_drops_dead_entries_and_keeps_order():
    queue = FastEventQueue()
    order = []
    events = [
        queue.schedule(float(i % 8), lambda i=i: order.append(i))
        for i in range(64)
    ]
    for event in events[1::2]:
        event.cancel()
    events[0].cancel()  # the 33rd cancel: 33 * 2 > 64 crosses the threshold
    assert queue._cancelled == 0  # compaction fired and reset the counter
    assert queue._size == 31
    assert len(queue) == 31
    queue.run()
    # Surviving events still run in (time, seq) order.
    assert order == sorted(
        (i for i in range(2, 64, 2)),
        key=lambda i: (i % 8, i),
    )


def test_fast_queue_schedule_in_past_rejected():
    queue = FastEventQueue()
    queue.schedule(10.0, lambda: None)
    assert queue.pop() is not None
    with pytest.raises(SimulationError):
        queue.schedule(5.0, lambda: None)


# ---------------------------------------------------------------------------
# Engine bit-identity
# ---------------------------------------------------------------------------
def _run_traced(sim_cls, app, config, policy_factory):
    tracer = Tracer()
    sim = sim_cls(config=config, policy=policy_factory(), tracer=tracer)
    result = sim.run(app)
    return canonical_events(tracer.events()), result.stats.to_dict()


def test_fixed_app_fast_engine_is_bit_identical():
    from repro.core.policies import SpawnPolicy

    app = get_benchmark("MM-small").dp(1)
    ref_events, ref_stats = _run_traced(GPUSimulator, app, None, SpawnPolicy)
    fast_events, fast_stats = _run_traced(FastSimulator, app, None, SpawnPolicy)
    assert diff_traces(ref_events, fast_events) is None
    assert fast_stats == ref_stats


def test_fixed_app_fast_differential_is_clean():
    from repro.core.policies import SpawnPolicy

    app = get_benchmark("MM-small").dp(1)
    mismatch = run_differential(app, policy_factory=SpawnPolicy, engine="fast")
    assert mismatch is None, str(mismatch)


@given(app=micro_apps(), policy_idx=st.integers(min_value=0, max_value=5))
@settings(max_examples=10, deadline=None)
def test_fast_engine_bit_identical_on_micro_apps(app, policy_idx):
    config = small_debug_gpu()
    ref_events, ref_stats = _run_traced(
        GPUSimulator, app, config, POLICIES[policy_idx]
    )
    fast_events, fast_stats = _run_traced(
        FastSimulator, app, config, POLICIES[policy_idx]
    )
    divergence = diff_traces(ref_events, fast_events)
    assert divergence is None, str(divergence)
    assert fast_stats == ref_stats


@pytest.mark.slow
@given(app=micro_apps(), policy_idx=st.integers(min_value=0, max_value=5))
@settings(max_examples=40, deadline=None)
def test_fast_differential_micro_apps(app, policy_idx):
    mismatch = run_differential(
        app,
        config=small_debug_gpu(),
        policy_factory=POLICIES[policy_idx],
        engine="fast",
    )
    assert mismatch is None, str(mismatch)


@pytest.mark.slow
@given(app=rich_apps(), policy_factory=policies())
@settings(max_examples=15, deadline=None)
def test_fast_differential_rich_apps(app, policy_factory):
    mismatch = run_differential(
        app,
        config=small_debug_gpu(),
        policy_factory=policy_factory,
        engine="fast",
    )
    assert mismatch is None, str(mismatch)


# ---------------------------------------------------------------------------
# Selection plumbing
# ---------------------------------------------------------------------------
def test_engines_registry_and_simulator_class():
    assert ENGINES["default"] is GPUSimulator
    assert ENGINES["fast"] is FastSimulator
    assert simulator_class("fast") is FastSimulator
    with pytest.raises(ConfigError, match="unknown engine"):
        simulator_class("warp")


def test_runner_rejects_unknown_engines():
    with pytest.raises(HarnessError, match="unknown engine"):
        Runner().run(RunConfig(benchmark="MM-small", scheme="spawn",
                               engine="warp"))
    with pytest.raises(HarnessError, match="unknown engine"):
        Runner(default_engine="warp")


def test_runner_default_engine_resolves_before_the_cache_key():
    runner = Runner(default_engine="fast")
    result = runner.run(RunConfig(benchmark="MM-small", scheme="spawn"))
    assert all(key[-1] == "fast" for key in runner._cache)
    # An explicitly fast config resolves to the very same cache entry.
    again = runner.run(
        RunConfig(benchmark="MM-small", scheme="spawn", engine="fast")
    )
    assert again is result
    # cached() probes resolve the same way, without simulating.
    assert (
        runner.cached(RunConfig(benchmark="MM-small", scheme="spawn"))
        is result
    )


def test_fast_engine_result_matches_default_through_the_runner():
    config = RunConfig(benchmark="MM-small", scheme="spawn")
    default_summary = Runner().run(config).summary()
    fast_summary = (
        Runner()
        .run(RunConfig(benchmark="MM-small", scheme="spawn", engine="fast"))
        .summary()
    )
    assert fast_summary == default_summary
