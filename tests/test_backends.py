"""Backend contract suite: every StoreBackend obeys the same rules.

One parametrized fixture yields a directory backend, a WAL-mode SQLite
backend, and a KV client talking to an in-process server; every contract
test runs against all three.  The contract under test is the one
:class:`~repro.harness.store.ResultStore` (and through it the runner and
the service fleet) relies on: raw-dict round trips, corrupt entries
orphaned on read, strict JSON (NaN rejected with ``ValueError`` before
anything is written), concurrent writers, and schema-version bumps
invalidating stale entries end to end.
"""

import sqlite3
import threading

import pytest

from repro.harness import store as store_mod
from repro.harness.backends import (
    DirectoryBackend,
    KVBackend,
    KVStoreServer,
    SQLiteBackend,
    StoreBackend,
    open_backend,
)
from repro.harness.backends.base import describe
from repro.harness.runner import RunConfig, Runner
from repro.harness.store import ResultStore, open_store

KEY = "ab" * 32
OTHER = "cd" * 32


class BackendCase:
    """A live backend plus backend-specific corruption/teardown hooks."""

    def __init__(self, backend, corrupt, cleanup):
        self.backend = backend
        self.corrupt = corrupt
        self.cleanup = cleanup


def _dir_case(tmp_path):
    backend = DirectoryBackend(tmp_path / "cache")

    def corrupt(key):
        backend.path_for(key).write_text("{ not json", encoding="utf-8")

    return BackendCase(backend, corrupt, backend.close)


def _sqlite_case(tmp_path):
    backend = SQLiteBackend(tmp_path / "cache.db")

    def corrupt(key):
        # An independent connection, like another process scribbling.
        with sqlite3.connect(backend.location) as conn:
            conn.execute(
                "UPDATE entries SET payload = '{ not json' WHERE key = ?",
                (key,),
            )

    return BackendCase(backend, corrupt, backend.close)


def _kv_case(tmp_path):
    inner = DirectoryBackend(tmp_path / "kv-root")
    server = KVStoreServer(inner).start()
    host, port = server.address
    client = KVBackend(host, port)

    def corrupt(key):
        inner.path_for(key).write_text("{ not json", encoding="utf-8")

    def cleanup():
        client.close()
        server.close()

    return BackendCase(client, corrupt, cleanup)


@pytest.fixture(params=["dir", "sqlite", "kv"])
def case(request, tmp_path):
    builder = {"dir": _dir_case, "sqlite": _sqlite_case, "kv": _kv_case}
    built = builder[request.param](tmp_path)
    yield built
    built.cleanup()


class TestContract:
    def test_round_trip(self, case):
        backend = case.backend
        assert isinstance(backend, StoreBackend)
        payload = {"schema": 3, "result": {"makespan": 1.5, "tags": ["a"]}}
        assert backend.load(KEY) is None
        assert not backend.contains(KEY)
        backend.save(KEY, payload)
        assert backend.contains(KEY)
        assert backend.load(KEY) == payload
        stats = backend.stats()
        assert stats.entries == 1
        assert stats.total_bytes > 0

    def test_save_overwrites_last_wins(self, case):
        case.backend.save(KEY, {"v": 1})
        case.backend.save(KEY, {"v": 2})
        assert case.backend.load(KEY) == {"v": 2}
        assert case.backend.stats().entries == 1

    def test_corrupt_entry_is_orphaned(self, case):
        case.backend.save(KEY, {"v": 1})
        case.corrupt(KEY)
        assert case.backend.load(KEY) is None
        # The read deleted the broken entry, not just skipped it.
        assert case.backend.stats().entries == 0

    def test_nan_rejected_before_write(self, case):
        with pytest.raises(ValueError):
            case.backend.save(KEY, {"makespan": float("nan")})
        assert not case.backend.contains(KEY)
        assert case.backend.stats().entries == 0

    def test_delete_and_clear(self, case):
        case.backend.save(KEY, {"v": 1})
        case.backend.save(OTHER, {"v": 2})
        case.backend.delete(KEY)
        case.backend.delete(KEY)  # deleting a missing key is a no-op
        assert case.backend.load(KEY) is None
        assert case.backend.stats().entries == 1
        assert case.backend.clear() == 1
        assert case.backend.stats().entries == 0

    def test_concurrent_writers_all_land(self, case):
        keys = [f"{i:02x}" * 32 for i in range(16)]
        errors = []

        def write(key, value):
            try:
                case.backend.save(key, {"value": value})
            except Exception as exc:  # noqa: BLE001 — collected for assert
                errors.append(exc)

        threads = [
            threading.Thread(target=write, args=(key, i))
            for i, key in enumerate(keys)
        ] + [
            # Contended writers on one hot key (last-wins, never corrupt).
            threading.Thread(target=write, args=(KEY, 100 + i))
            for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == []
        assert case.backend.stats().entries == len(keys) + 1
        for i, key in enumerate(keys):
            assert case.backend.load(key) == {"value": i}
        assert case.backend.load(KEY)["value"] in range(100, 104)

    def test_schema_bump_invalidates_through_the_wrapper(
        self, case, monkeypatch
    ):
        store = ResultStore(backend=case.backend)
        runner = Runner()
        config = RunConfig(benchmark="GC-citation", scheme="spawn")
        key = store.key_for(config, runner.config, runner.max_events)
        store.save(key, runner.run(config))
        assert store.load(key) is not None
        monkeypatch.setattr(
            store_mod, "SCHEMA_VERSION", store_mod.SCHEMA_VERSION + 1
        )
        # The stale entry reads as a miss and is orphaned on any backend.
        assert store.load(key) is None
        assert case.backend.stats().entries == 0

    def test_result_store_round_trip(self, case):
        store = ResultStore(backend=case.backend)
        runner = Runner()
        config = RunConfig(benchmark="GC-citation", scheme="spawn")
        result = runner.run(config)
        key = store.key_for(config, runner.config, runner.max_events)
        store.save(key, result)
        loaded = store.load(key)
        assert loaded is not None
        assert loaded.summary() == result.summary()
        assert loaded.makespan == result.makespan


class TestKVTransport:
    def test_ping_and_server_url(self, tmp_path):
        with KVStoreServer(DirectoryBackend(tmp_path)) as server:
            store = open_store(server.url)
            assert store.backend.ping()
            assert store.url == server.url

    def test_unreachable_server_is_oserror(self):
        client = KVBackend("127.0.0.1", 1)  # nothing listens on port 1
        with pytest.raises(OSError):
            client.load(KEY)

    def test_server_side_failure_is_oserror(self, tmp_path):
        class Broken(DirectoryBackend):
            def load(self, key):
                raise RuntimeError("authoritative backend on fire")

        with KVStoreServer(Broken(tmp_path)) as server:
            host, port = server.address
            client = KVBackend(host, port)
            with pytest.raises(OSError):
                client.load(KEY)


class TestOpenBackend:
    def test_bare_path_is_directory(self, tmp_path):
        backend = open_backend(tmp_path / "cache")
        assert isinstance(backend, DirectoryBackend)
        assert describe(backend) == f"dir://{tmp_path / 'cache'}"

    def test_dir_url(self, tmp_path):
        backend = open_backend(f"dir://{tmp_path}/cache")
        assert isinstance(backend, DirectoryBackend)

    def test_sqlite_url(self, tmp_path):
        backend = open_backend(f"sqlite://{tmp_path}/cache.db")
        try:
            assert isinstance(backend, SQLiteBackend)
            assert describe(backend) == f"sqlite://{tmp_path}/cache.db"
        finally:
            backend.close()

    def test_kv_url(self):
        backend = open_backend("kv://127.0.0.1:7077")
        assert isinstance(backend, KVBackend)
        assert backend.location == "127.0.0.1:7077"

    @pytest.mark.parametrize(
        "url", ["kv://no-port", "kv://:7077", "kv://host:notaport"]
    )
    def test_malformed_kv_url(self, url):
        with pytest.raises(ValueError):
            open_backend(url)

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            open_backend("redis://localhost:6379")

    def test_default_is_directory_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(store_mod.ENV_CACHE_DIR, str(tmp_path / "dflt"))
        backend = open_backend(None)
        assert isinstance(backend, DirectoryBackend)
        assert str(tmp_path / "dflt") in describe(backend)


class TestDeprecatedSpellings:
    def test_result_store_root_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="open_store"):
            store = ResultStore(tmp_path)
        assert store.root == tmp_path

    def test_runner_cache_dir_warns(self, tmp_path):
        with pytest.warns(DeprecationWarning, match="open_store"):
            runner = Runner(cache_dir=tmp_path)
        assert runner.store is not None
        assert runner.store.root == tmp_path

    def test_root_and_backend_together_rejected(self, tmp_path):
        with pytest.raises(TypeError):
            ResultStore(tmp_path, backend=DirectoryBackend(tmp_path))

    def test_no_arg_store_does_not_warn(self, recwarn, monkeypatch, tmp_path):
        monkeypatch.setenv(store_mod.ENV_CACHE_DIR, str(tmp_path))
        ResultStore()
        assert not [
            w for w in recwarn if issubclass(w.category, DeprecationWarning)
        ]
