"""Unit tests for the device-side launch unit (A*x + b model)."""

import numpy as np
import pytest

from repro.errors import LaunchError
from repro.sim.config import LaunchOverheadConfig
from repro.sim.events import EventQueue
from repro.sim.instances import KernelInstance
from repro.sim.kernel import KernelSpec
from repro.sim.launch import LaunchUnit


def make_child(kid):
    spec = KernelSpec(
        name=f"c{kid}", threads_per_cta=32, thread_items=np.ones(32, dtype=np.int64)
    )
    return KernelInstance(kid, spec, stream_id=kid, is_child=True)


def make_unit(slots=2, slope=100, base=1000):
    queue = EventQueue()
    arrived = []
    unit = LaunchUnit(
        LaunchOverheadConfig(slope_cycles=slope, base_cycles=base, service_slots=slots),
        queue,
        lambda k: arrived.append((queue.now, k)),
    )
    return queue, unit, arrived


class TestLatencyModel:
    def test_single_kernel_latency_is_slope_plus_base(self):
        queue, unit, arrived = make_unit()
        unit.submit_batch([make_child(0)])
        queue.run()
        assert arrived[0][0] == pytest.approx(1100)

    def test_batch_latency_scales_with_size(self):
        queue, unit, arrived = make_unit()
        unit.submit_batch([make_child(i) for i in range(3)])
        queue.run()
        assert all(t == pytest.approx(1300) for t, _ in arrived)
        assert len(arrived) == 3

    def test_launch_call_time_recorded(self):
        queue, unit, _ = make_unit()
        child = make_child(0)
        unit.submit_batch([child])
        assert child.record.launch_call_time == 0.0

    def test_empty_batch_rejected(self):
        _, unit, _ = make_unit()
        with pytest.raises(LaunchError):
            unit.submit_batch([])


class TestServiceSlots:
    def test_bursts_queue_beyond_slots(self):
        queue, unit, arrived = make_unit(slots=1, slope=100, base=0)
        unit.submit_batch([make_child(0)])
        unit.submit_batch([make_child(1)])
        queue.run()
        times = sorted(t for t, _ in arrived)
        # Second batch waits for the first's occupancy (100 cycles).
        assert times == [pytest.approx(100), pytest.approx(200)]

    def test_parallel_service_within_slots(self):
        queue, unit, arrived = make_unit(slots=2, slope=100, base=0)
        unit.submit_batch([make_child(0)])
        unit.submit_batch([make_child(1)])
        queue.run()
        assert [t for t, _ in arrived] == [pytest.approx(100)] * 2

    def test_base_latency_overlaps_across_batches(self):
        queue, unit, arrived = make_unit(slots=1, slope=100, base=1000)
        unit.submit_batch([make_child(0)])
        unit.submit_batch([make_child(1)])
        queue.run()
        times = sorted(t for t, _ in arrived)
        # Slot frees after the occupancy (100), not the full latency.
        assert times == [pytest.approx(1100), pytest.approx(1200)]

    def test_queue_delay_telemetry(self):
        queue, unit, _ = make_unit(slots=1, slope=100, base=0)
        unit.submit_batch([make_child(0)])
        unit.submit_batch([make_child(1)])
        queue.run()
        batches, kernels, delay = unit.stats()
        assert (batches, kernels) == (2, 2)
        assert delay == pytest.approx(100)

    def test_backlog_tracking(self):
        queue, unit, _ = make_unit(slots=1)
        unit.submit_batch([make_child(0)])
        unit.submit_batch([make_child(1)])
        assert unit.busy_slots == 1
        assert unit.backlog == 1
