"""Unit tests for repro.sim.config (Table II)."""

import pytest

from repro.errors import ConfigError
from repro.sim.config import (
    WARP_SIZE,
    CacheConfig,
    GPUConfig,
    LaunchOverheadConfig,
    MemoryConfig,
    kepler_k20m,
    small_debug_gpu,
)


class TestCacheConfig:
    def test_num_sets(self):
        cache = CacheConfig(size_bytes=1536 * 1024, line_bytes=128, associativity=8)
        assert cache.num_sets == 1536

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=0, line_bytes=128, associativity=8)
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, line_bytes=-1, associativity=8)
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1024, line_bytes=128, associativity=0)

    def test_rejects_non_divisible_geometry(self):
        with pytest.raises(ConfigError):
            CacheConfig(size_bytes=1000, line_bytes=128, associativity=8)


class TestLaunchOverheadConfig:
    def test_paper_constants(self):
        launch = LaunchOverheadConfig()
        assert launch.slope_cycles == 1721
        assert launch.base_cycles == 20210

    def test_latency_is_linear_in_batch_size(self):
        launch = LaunchOverheadConfig(slope_cycles=100, base_cycles=1000)
        assert launch.latency(1) == 1100
        assert launch.latency(5) == 1500

    def test_latency_rejects_non_positive_batch(self):
        with pytest.raises(ConfigError):
            LaunchOverheadConfig().latency(0)

    def test_rejects_negative_coefficients(self):
        with pytest.raises(ConfigError):
            LaunchOverheadConfig(slope_cycles=-1)
        with pytest.raises(ConfigError):
            LaunchOverheadConfig(base_cycles=-1)
        with pytest.raises(ConfigError):
            LaunchOverheadConfig(service_slots=0)


class TestMemoryConfig:
    def test_stall_interpolates_between_l2_and_dram(self):
        mem = MemoryConfig(l2_hit_cycles=100, dram_cycles=300, mlp=1.0)
        assert mem.stall_cycles(1.0) == 100
        assert mem.stall_cycles(0.0) == 300
        assert mem.stall_cycles(0.5) == 200

    def test_mlp_divides_stall(self):
        mem = MemoryConfig(l2_hit_cycles=100, dram_cycles=300, mlp=4.0)
        assert mem.stall_cycles(1.0) == 25

    def test_rejects_bad_hit_rate(self):
        with pytest.raises(ConfigError):
            MemoryConfig().stall_cycles(1.5)
        with pytest.raises(ConfigError):
            MemoryConfig().stall_cycles(-0.1)

    def test_rejects_inconsistent_latencies(self):
        with pytest.raises(ConfigError):
            MemoryConfig(l2_hit_cycles=400, dram_cycles=300)
        with pytest.raises(ConfigError):
            MemoryConfig(mlp=0.0)


class TestGPUConfig:
    def test_table2_defaults(self):
        config = kepler_k20m()
        assert config.num_smx == 13
        assert config.max_ctas_per_smx == 16
        assert config.num_hwq == 32
        assert config.max_threads_per_smx == 2048
        assert config.shared_mem_per_smx == 48 * 1024

    def test_max_concurrent_ctas_is_208(self):
        assert kepler_k20m().max_concurrent_ctas == 208

    def test_max_concurrent_kernels_matches_hwqs(self):
        assert kepler_k20m().max_concurrent_kernels == 32

    def test_warp_capacity_consistency(self):
        config = kepler_k20m()
        assert config.max_warps_per_smx * WARP_SIZE == config.max_threads_per_smx

    def test_rejects_inconsistent_warp_capacity(self):
        with pytest.raises(ConfigError):
            GPUConfig(max_warps_per_smx=63)

    @pytest.mark.parametrize(
        "field",
        ["num_smx", "clock_mhz", "max_ctas_per_smx", "num_hwq", "metric_window_cycles"],
    )
    def test_rejects_non_positive_fields(self, field):
        with pytest.raises(ConfigError):
            GPUConfig(**{field: 0})

    def test_rejects_non_positive_rates(self):
        with pytest.raises(ConfigError):
            GPUConfig(issue_width=0)
        with pytest.raises(ConfigError):
            GPUConfig(per_warp_issue_rate=-1)

    def test_replace_returns_modified_copy(self):
        config = kepler_k20m()
        smaller = config.replace(num_smx=4)
        assert smaller.num_smx == 4
        assert config.num_smx == 13

    def test_debug_config_is_valid_and_small(self):
        config = small_debug_gpu()
        assert config.num_smx < kepler_k20m().num_smx
        assert config.max_concurrent_ctas == 8

    def test_config_is_frozen(self):
        with pytest.raises(Exception):
            kepler_k20m().num_smx = 5
