"""Property-based tests for the service's SPAWN-style admission controller.

The three invariants the ISSUE pins down, checked over the whole
reachable state space (``tests/strategies.py::admission_states`` replays
prior traffic through the controller's own policy, so no tested state is
unreachable):

* the verdict is monotonic in predicted cost — growing cost can move a
  request out of the inline branch, never back into it, and above the
  threshold the verdict does not depend on the request's own cost at all
  (shedding is a property of the *queue*, as the paper's ``n + x``
  capacity check is);
* an empty queue never sheds;
* the inline branch fires iff the prediction is at or below the
  small-job threshold — and never on bootstrap, which (like Algorithm 1
  lines 2-3) admits unconditionally.

Plus the supporting algebra: backlog bookkeeping never goes negative and
returns to zero, the windowed EWMA stays inside the convex hull of its
observations, and every shed decision carries evidence that actually
justifies it.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HarnessError
from repro.service.admission import (
    ADMIT,
    INLINE,
    SHED,
    AdmissionController,
    AdmissionDecision,
    CostModel,
    WindowedEWMA,
)
from tests.strategies import admission_states, job_costs, maybe_costs


# ----------------------------------------------------------------------
# The ISSUE's three controller invariants
# ----------------------------------------------------------------------
@given(admission_states(), job_costs(), job_costs())
def test_verdict_is_monotonic_in_predicted_cost(controller, a, b):
    lo, hi = sorted((a, b))
    lo_verdict = controller.classify(lo).verdict
    hi_verdict = controller.classify(hi).verdict
    # Growing cost can only leave the inline branch, never re-enter it.
    if hi_verdict == INLINE:
        assert lo_verdict == INLINE
    # Above the threshold the verdict is cost-independent: any two
    # non-inline costs get the same answer from the same queue state.
    if lo_verdict != INLINE and hi_verdict != INLINE:
        assert lo_verdict == hi_verdict


@given(admission_states(max_prior_traffic=0), maybe_costs())
def test_empty_queue_never_sheds(controller, cost):
    assert controller.queue_depth == 0
    assert controller.backlog_seconds == 0.0
    assert controller.classify(cost).verdict != SHED


@given(admission_states(), job_costs())
def test_inline_iff_at_or_below_threshold(controller, cost):
    decision = controller.classify(cost)
    if cost <= controller.inline_threshold_s:
        assert decision.verdict == INLINE
    else:
        assert decision.verdict != INLINE


@given(admission_states())
def test_bootstrap_always_admits(controller):
    decision = controller.classify(None)
    assert decision.verdict == ADMIT
    assert decision.bootstrap
    assert decision.predicted_cost_s is None


# ----------------------------------------------------------------------
# Evidence: a shed verdict must be able to justify itself
# ----------------------------------------------------------------------
@given(admission_states(), job_costs())
def test_shed_decisions_carry_their_justification(controller, cost):
    decision = controller.classify(cost)
    if decision.verdict != SHED:
        return
    over_deadline = (
        decision.deadline_s is not None
        and decision.predicted_delay_s > decision.deadline_s
    )
    over_depth = (
        controller.max_queue is not None
        and decision.queue_depth >= controller.max_queue
    )
    assert over_deadline or over_depth
    evidence = decision.evidence()
    assert evidence["verdict"] == SHED
    assert evidence["predicted_delay_s"] == decision.predicted_delay_s


@given(admission_states(), maybe_costs())
def test_decisions_record_live_queue_state(controller, cost):
    decision = controller.classify(cost)
    assert decision.queue_depth == controller.queue_depth
    assert decision.predicted_delay_s == pytest.approx(
        controller.backlog_seconds / controller.workers
    )


# ----------------------------------------------------------------------
# Backlog bookkeeping
# ----------------------------------------------------------------------
@given(st.lists(maybe_costs(), min_size=1, max_size=24))
def test_backlog_is_conserved_and_never_negative(costs):
    controller = AdmissionController(CostModel(), workers=2)
    admitted = []
    for cost in costs:
        decision = controller.classify(cost)
        if decision.verdict == ADMIT:
            controller.on_admitted(decision)
            admitted.append(decision)
        assert controller.backlog_seconds >= 0.0
        assert controller.queue_depth == len(admitted)
    for decision in admitted:
        controller.on_finished(decision)
        assert controller.backlog_seconds >= 0.0
        assert controller.queue_depth >= 0
    # Every admission matched by a completion: the ledger drains clean.
    assert controller.queue_depth == 0
    assert controller.backlog_seconds == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------------
# The windowed EWMA under the controller
# ----------------------------------------------------------------------
@given(st.lists(job_costs(), min_size=1, max_size=64))
def test_ewma_stays_inside_the_convex_hull(samples):
    ewma = WindowedEWMA(alpha=0.3, window=8)
    # Up to float rounding: alpha*x + (1-alpha)*y of two in-hull values
    # can land an ulp outside it (e.g. 0.3*1.5 + 0.7*1.5 < 1.5).
    tol = 1e-9 * max(1.0, max(samples))
    for sample in samples:
        ewma.observe(sample)
        assert min(samples) - tol <= ewma.value <= max(samples) + tol
    assert ewma.count == min(len(samples), 8)


@given(
    st.lists(job_costs(), min_size=1, max_size=32),
    st.floats(min_value=0.01, max_value=1.0, allow_nan=False),
)
def test_cost_model_prediction_is_deterministic(samples, alpha):
    a = CostModel(alpha=alpha)
    b = CostModel(alpha=alpha)
    for sample in samples:
        a.observe("BFS-graph500", "spawn", sample)
        b.observe("BFS-graph500", "spawn", sample)
    assert a.predict("BFS-graph500", "spawn") == b.predict(
        "BFS-graph500", "spawn"
    )
    assert a.predict("BFS-graph500", "flat") is None  # other pairs untouched
    assert a.snapshot() == b.snapshot()


@settings(max_examples=25)
@given(st.lists(job_costs(1000.0), min_size=40, max_size=80))
def test_windowed_ewma_forgets_ancient_history(samples):
    """After ``window`` identical fresh observations the estimate is
    dominated by them, not by the pre-window past."""
    ewma = WindowedEWMA(alpha=0.5, window=8)
    for sample in samples:
        ewma.observe(sample)
    for _ in range(32):
        ewma.observe(5.0)
    assert ewma.value == pytest.approx(5.0, rel=1e-4)
    assert ewma.count == 8


# ----------------------------------------------------------------------
# CostModel.predict: the cold-start / warm-start seam (ISSUE 10)
# ----------------------------------------------------------------------
class TestCostModelPredict:
    def test_cold_start_predicts_none_for_every_pair(self):
        model = CostModel()
        assert model.predict("GC-citation", "spawn") is None
        assert model.snapshot() == {}

    def test_first_observation_seeds_the_estimate_exactly(self):
        model = CostModel(alpha=0.3)
        model.observe("GC-citation", "spawn", 2.5)
        assert model.predict("GC-citation", "spawn") == 2.5

    def test_pairs_warm_up_independently(self):
        model = CostModel()
        model.observe("GC-citation", "spawn", 1.0)
        assert model.predict("GC-citation", "flat") is None
        assert model.predict("MM-small", "spawn") is None

    def test_warm_estimate_is_the_ewma_fold(self):
        model = CostModel(alpha=0.5)
        expected = None
        for sample in (1.0, 3.0, 3.0, 9.0):
            model.observe("GC-citation", "spawn", sample)
            expected = (
                sample if expected is None else 0.5 * sample + 0.5 * expected
            )
        assert model.predict("GC-citation", "spawn") == expected

    def test_rate_estimate_needs_cycles_and_nonzero_seconds(self):
        model = CostModel()
        model.observe("GC-citation", "spawn", 2.0)
        assert "cycles_per_second" not in model.snapshot()["GC-citation/spawn"]
        model.observe("GC-citation", "spawn", 0.0, cycles=100.0)  # 0 s: no rate
        assert "cycles_per_second" not in model.snapshot()["GC-citation/spawn"]
        model.observe("GC-citation", "spawn", 2.0, cycles=100.0)
        assert model.snapshot()["GC-citation/spawn"][
            "cycles_per_second"
        ] == pytest.approx(50.0)

    def test_snapshot_sample_count_is_window_bounded(self):
        model = CostModel(window=4)
        for _ in range(10):
            model.observe("GC-citation", "spawn", 1.0)
        assert model.snapshot()["GC-citation/spawn"]["samples"] == 4


# ----------------------------------------------------------------------
# WindowedEWMA window eviction edge cases (ISSUE 10)
# ----------------------------------------------------------------------
class TestWindowedEWMAEviction:
    def test_count_saturates_at_the_window(self):
        ewma = WindowedEWMA(window=4)
        for index in range(10):
            ewma.observe(float(index))
            assert ewma.count == min(index + 1, 4)

    def test_eviction_does_not_rewrite_the_estimate(self):
        """The window bounds the retained *samples*; the EWMA itself is
        the full fold (eviction must not cause a jump in the value)."""
        full = WindowedEWMA(alpha=0.25, window=3)
        unbounded = WindowedEWMA(alpha=0.25, window=1000)
        for sample in (1.0, 8.0, 2.0, 9.0, 4.0, 7.0):
            full.observe(sample)
            unbounded.observe(sample)
        assert full.value == unbounded.value
        assert full.count == 3 and unbounded.count == 6

    def test_window_of_one_keeps_one_sample_but_full_memory(self):
        ewma = WindowedEWMA(alpha=0.5, window=1)
        ewma.observe(4.0)
        ewma.observe(8.0)
        assert ewma.count == 1
        # alpha=0.5 fold over both observations, not just the survivor.
        assert ewma.value == 6.0

    def test_value_is_none_until_first_observation(self):
        ewma = WindowedEWMA()
        assert ewma.value is None
        assert ewma.count == 0


# ----------------------------------------------------------------------
# Constructor validation (the service rejects nonsense tunables)
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "kwargs",
    [
        {"workers": 0},
        {"deadline_s": 0.0},
        {"deadline_s": -1.0},
        {"inline_threshold_s": -0.1},
        {"max_queue": 0},
    ],
)
def test_controller_rejects_invalid_tunables(kwargs):
    with pytest.raises(HarnessError):
        AdmissionController(CostModel(), **kwargs)


@pytest.mark.parametrize(
    "kwargs", [{"alpha": 0.0}, {"alpha": 1.5}, {"window": 0}]
)
def test_ewma_rejects_invalid_tunables(kwargs):
    with pytest.raises(HarnessError):
        WindowedEWMA(**kwargs)


def test_ewma_rejects_negative_observations():
    with pytest.raises(HarnessError):
        WindowedEWMA().observe(-1.0)


def test_decision_is_frozen():
    decision = AdmissionDecision(
        verdict=ADMIT,
        bootstrap=True,
        predicted_cost_s=None,
        predicted_delay_s=0.0,
        deadline_s=None,
        queue_depth=0,
    )
    with pytest.raises(AttributeError):
        decision.verdict = SHED
