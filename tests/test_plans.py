"""Tests pinning the declared experiment plans to the experiment code."""

import pytest

from repro.experiments import ALL_EXPERIMENTS
from repro.experiments import (
    fig06_concurrency,
    fig19_timeline,
    fig20_launch_cdf,
)
from repro.experiments.plans import PLANS, suite_plan
from repro.harness import schemes as sch
from repro.harness.parallel import ParallelRunner
from repro.harness.runner import Runner
from repro.obs.profile import REGISTRY


class TestPlanTable:
    def test_every_experiment_has_a_plan(self):
        assert set(PLANS) == set(ALL_EXPERIMENTS)

    def test_plans_parse_and_dedupe(self):
        plan = suite_plan()
        assert plan, "suite plan must not be empty"
        keys = [config.key() for config in plan]
        assert len(keys) == len(set(keys))
        for config in plan:
            sch.SchemeSpec.parse(config.scheme)  # raises on an invalid scheme

    def test_static_experiments_plan_nothing(self):
        for name in ("table1", "table2", "fig01"):
            assert PLANS[name](1) == []

    def test_seed_threads_through(self):
        assert all(config.seed == 7 for config in suite_plan(seed=7))

    def test_subset_selection(self):
        plan = suite_plan(experiments=["fig19"])
        assert {config.benchmark for config in plan} == {"BFS-graph500"}
        with pytest.raises(KeyError):
            suite_plan(experiments=["fig99"])


class TestPlanCoverage:
    """A plan must cover its experiment: zero cache misses afterwards."""

    @pytest.mark.parametrize(
        "name,entry",
        [
            ("fig06", fig06_concurrency.run),
            ("fig19", fig19_timeline.run),
            ("fig20", fig20_launch_cdf.run),
        ],
    )
    def test_plan_covers_experiment(self, name, entry):
        runner = Runner()
        ParallelRunner(runner, jobs=1).run_many(PLANS[name](1))
        before = REGISTRY.counters.get("runner.cache_misses", 0)
        entry(runner, 1)
        after = REGISTRY.counters.get("runner.cache_misses", 0)
        assert after == before, f"{name}'s plan under-declares its run-set"
