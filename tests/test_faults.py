"""Chaos tests: deterministic fault injection against the suite executor.

The headline assertions mirror the ISSUE acceptance criteria: with faults
injected (worker kills, hangs past the timeout, torn payloads, flaky
store IO) a parallel suite still completes, and every retried task's
result is **bit-identical** to a fault-free serial run.  A permanently
failing run is quarantined and reported without aborting the others.

``TestServiceChaos`` lifts the same guarantees one layer up: the same
fault plans injected *under live service traffic* must leave the
:class:`~repro.service.SimulationService` standing — quarantined jobs
fail their own handles and show up in the stats ledger, everything else
completes bit-identically, and no submission is ever lost.
"""

import asyncio
import json

import pytest

from repro.errors import HarnessError, RunFailure, SimulationError, WorkerCrash
from repro.harness.faults import ENV_FAULTS, FaultPlan, FlakyStore
from repro.harness.parallel import (
    FAILED,
    OK,
    SKIPPED,
    ExecutionPolicy,
    ParallelRunner,
)
from repro.harness.runner import RunConfig, Runner
from repro.harness.store import open_store
from repro.service import ServiceConfig, SimulationService

#: The two cheapest end-to-end benchmarks.
FAST = "GC-citation"
FAST2 = "MM-small"

#: The chaos suite: four cheap runs across two benchmarks.
CONFIGS = [
    RunConfig(benchmark=FAST, scheme="flat"),
    RunConfig(benchmark=FAST, scheme="spawn"),
    RunConfig(benchmark=FAST2, scheme="flat"),
    RunConfig(benchmark=FAST2, scheme="spawn"),
]


@pytest.fixture(scope="module")
def baseline():
    """Fault-free serial summaries, the bit-identity reference."""
    runner = Runner()
    return [runner.run(config).summary() for config in CONFIGS]


def assert_bit_identical(report, baseline):
    assert report.ok
    assert [r.summary() for r in report.results] == baseline


class TestFaultPlanModel:
    def test_round_trips_through_dict(self):
        plan = FaultPlan(kill_on_dispatch=3, delay_on_dispatch=1, delay_seconds=0.5)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_rejects_unknown_fields(self):
        with pytest.raises(HarnessError, match="unknown fault plan field"):
            FaultPlan.from_dict({"kill_on_dispach": 3})

    def test_delay_needs_duration(self):
        with pytest.raises(HarnessError):
            FaultPlan(delay_on_dispatch=0)

    def test_noop_detection(self):
        assert FaultPlan().is_noop()
        assert not FaultPlan(kill_on_dispatch=0).is_noop()
        # A ParallelRunner drops a no-op plan entirely.
        assert ParallelRunner(jobs=1, faults=FaultPlan()).faults is None

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv(ENV_FAULTS, raising=False)
        assert FaultPlan.from_env() is None
        monkeypatch.setenv(ENV_FAULTS, json.dumps({"kill_on_dispatch": 2}))
        assert FaultPlan.from_env() == FaultPlan(kill_on_dispatch=2)
        monkeypatch.setenv(ENV_FAULTS, "{not json")
        with pytest.raises(HarnessError):
            FaultPlan.from_env()
        monkeypatch.setenv(ENV_FAULTS, "[1, 2]")
        with pytest.raises(HarnessError):
            FaultPlan.from_env()

    def test_permanent_selector_needs_every_set_field(self):
        both = FaultPlan(fail_benchmark=FAST, fail_scheme="spawn")
        assert both.permanently_fails(RunConfig(benchmark=FAST, scheme="spawn"))
        assert not both.permanently_fails(RunConfig(benchmark=FAST, scheme="flat"))
        assert not both.permanently_fails(RunConfig(benchmark=FAST2, scheme="spawn"))
        assert not FaultPlan().permanently_fails(
            RunConfig(benchmark=FAST, scheme="spawn")
        )

    def test_inline_injection_raises_typed_errors(self):
        config = RunConfig(benchmark=FAST, scheme="spawn")
        with pytest.raises(WorkerCrash):
            FaultPlan(kill_on_dispatch=5).apply_inline(5, config)
        with pytest.raises(ValueError):
            FaultPlan(corrupt_on_dispatch=5).apply_inline(5, config)
        with pytest.raises(SimulationError):
            FaultPlan(fail_benchmark=FAST).apply_inline(0, config)
        # A non-matching sequence number injects nothing.
        FaultPlan(kill_on_dispatch=5, corrupt_on_dispatch=6).apply_inline(4, config)


class TestExecutionPolicy:
    def test_validation(self):
        with pytest.raises(HarnessError):
            ExecutionPolicy(timeout=0)
        with pytest.raises(HarnessError):
            ExecutionPolicy(max_retries=-1)
        with pytest.raises(HarnessError):
            ExecutionPolicy(backoff=-0.1)
        with pytest.raises(HarnessError):
            ExecutionPolicy(max_pool_rebuilds=-1)

    def test_backoff_doubles_per_failed_attempt(self):
        policy = ExecutionPolicy(backoff=0.1)
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.2)
        assert policy.backoff_seconds(3) == pytest.approx(0.4)
        assert ExecutionPolicy().backoff_seconds(3) == 0.0


class TestFlakyStore:
    def test_budgeted_errors_then_delegates(self, tmp_path):
        flaky = FlakyStore(open_store(tmp_path), save_errors=1, load_errors=1)
        key = flaky.key_for(CONFIGS[0], Runner().config, 1000)  # delegated
        with pytest.raises(OSError):
            flaky.load(key)
        assert flaky.load(key) is None  # budget spent; real (empty) store

    def test_runner_survives_store_io_errors(self, tmp_path):
        plan = FaultPlan(store_save_errors=10, store_load_errors=10)
        store = plan.flaky_store(open_store(tmp_path))
        runner = Runner(store=store)
        result = runner.run(CONFIGS[0])
        assert result.makespan > 0
        # Every disk write failed, but the memory cache still answers.
        assert runner.cached(CONFIGS[0]) is result
        assert open_store(tmp_path).stats().entries == 0

    def test_flaky_store_passthrough_when_no_budget(self, tmp_path):
        store = open_store(tmp_path)
        assert FaultPlan().flaky_store(store) is store
        assert FaultPlan().flaky_store(None) is None


class TestChaosDeterminism:
    """Injected faults may cost retries, never change a result."""

    def test_worker_kill_is_retried_bit_identically(self, baseline):
        pr = ParallelRunner(
            Runner(), jobs=2, faults=FaultPlan(kill_on_dispatch=0)
        )
        report = pr.run_suite(CONFIGS)
        assert report.worker_crashes >= 1
        assert report.pool_rebuilds >= 1
        assert report.retries >= 1
        assert_bit_identical(report, baseline)

    def test_hung_task_times_out_and_retries_bit_identically(self, baseline):
        pr = ParallelRunner(
            Runner(),
            jobs=2,
            policy=ExecutionPolicy(timeout=2.0),
            faults=FaultPlan(delay_on_dispatch=1, delay_seconds=6.0),
        )
        report = pr.run_suite(CONFIGS)
        assert report.timeouts >= 1
        assert report.retries >= 1
        assert_bit_identical(report, baseline)

    def test_corrupt_payload_is_retried_bit_identically(self, baseline):
        pr = ParallelRunner(
            Runner(), jobs=2, faults=FaultPlan(corrupt_on_dispatch=0)
        )
        report = pr.run_suite(CONFIGS)
        assert report.retries >= 1
        assert_bit_identical(report, baseline)

    def test_dying_pool_degrades_to_serial_bit_identically(self, baseline):
        pr = ParallelRunner(
            Runner(),
            jobs=2,
            policy=ExecutionPolicy(max_pool_rebuilds=0),
            faults=FaultPlan(kill_on_dispatch=0),
        )
        report = pr.run_suite(CONFIGS)
        assert report.serial_fallback
        assert report.worker_crashes >= 1
        assert report.pool_rebuilds == 0
        assert_bit_identical(report, baseline)

    def test_inline_faults_follow_the_same_retry_path(self, baseline):
        pr = ParallelRunner(
            Runner(),
            jobs=1,
            faults=FaultPlan(kill_on_dispatch=0, corrupt_on_dispatch=1),
        )
        report = pr.run_suite(CONFIGS)
        assert report.worker_crashes == 1
        assert report.retries >= 2
        assert_bit_identical(report, baseline)


class TestQuarantine:
    def test_permanent_failure_is_quarantined_not_fatal(self):
        plan = FaultPlan(fail_benchmark=FAST, fail_scheme="spawn")
        pr = ParallelRunner(
            Runner(), jobs=2, policy=ExecutionPolicy(max_retries=1), faults=plan
        )
        report = pr.run_suite(CONFIGS)
        assert not report.ok
        assert report.quarantined == 1
        [failure] = report.failures
        assert failure.config.benchmark == FAST
        assert failure.config.scheme == "spawn"
        assert failure.attempts == 2  # first try + one retry
        # Exactly the doomed slot is None; every other run completed.
        assert [r is None for r in report.results] == [
            c.benchmark == FAST and c.scheme == "spawn" for c in CONFIGS
        ]
        with pytest.raises(RunFailure):
            report.raise_if_failed()

    def test_run_many_raises_on_quarantine(self):
        plan = FaultPlan(fail_benchmark=FAST, fail_scheme="spawn")
        pr = ParallelRunner(
            Runner(), jobs=1, policy=ExecutionPolicy(max_retries=0), faults=plan
        )
        with pytest.raises(RunFailure):
            pr.run_many(CONFIGS)

    def test_fail_fast_skips_the_rest(self):
        plan = FaultPlan(fail_benchmark=FAST, fail_scheme="spawn")
        pr = ParallelRunner(
            Runner(),
            jobs=1,
            policy=ExecutionPolicy(max_retries=0, fail_fast=True),
            faults=plan,
        )
        # Doomed config first, so everything behind it is skipped.
        ordered = [CONFIGS[1], CONFIGS[0], CONFIGS[2]]
        report = pr.run_suite(ordered)
        statuses = [o.status for o in report.outcomes]
        assert statuses == [FAILED, SKIPPED, SKIPPED]
        assert report.results == [None, None, None]
        with pytest.raises(RunFailure):
            report.raise_if_failed()


class TestResume:
    def test_resume_dispatches_only_missing_configs(self, tmp_path):
        # First (partial) pass: two of the four runs reach the store.
        first = Runner(store=open_store(tmp_path))
        for config in CONFIGS[:2]:
            first.run(config)
        # Fresh process-equivalent: cold memory cache, same store.
        pr = ParallelRunner(Runner(store=open_store(tmp_path)), jobs=2)
        report = pr.run_suite(CONFIGS)
        assert report.resumed == 2
        # Only the two missing configs became work items.
        assert [o.config.key() for o in report.outcomes] == [
            c.key() for c in CONFIGS[2:]
        ]
        assert all(o.status == OK for o in report.outcomes)
        assert report.ok and all(r is not None for r in report.results)
        assert open_store(tmp_path).stats().entries == 4

    def test_fully_cached_suite_dispatches_nothing(self, tmp_path):
        warm = Runner(store=open_store(tmp_path))
        ParallelRunner(warm, jobs=1).run_many(CONFIGS)
        pr = ParallelRunner(Runner(store=open_store(tmp_path)), jobs=2)
        report = pr.run_suite(CONFIGS)
        assert report.resumed == len(CONFIGS)
        assert report.outcomes == []
        assert report.ok


def serve_chaos(configs, *, faults, runner=None, policy=None, jobs=2):
    """Burst ``configs`` through one faulted service; (stats, results)."""

    async def _drive():
        service = SimulationService(
            runner if runner is not None else Runner(),
            config=ServiceConfig(jobs=jobs),
            policy=policy,
            faults=faults,
        )
        async with service:
            handles = [await service.submit(config) for config in configs]
            results = await service.gather(handles, return_exceptions=True)
        return service.stats(), results

    return asyncio.run(_drive())


class TestServiceChaos:
    """The execution layer's chaos guarantees hold behind the service."""

    def test_worker_kill_under_live_traffic_is_retried(self, baseline):
        stats, results = serve_chaos(
            CONFIGS, faults=FaultPlan(kill_on_dispatch=0)
        )
        assert stats.worker_crashes >= 1
        assert stats.retries >= 1
        # The kill cost a retry inside the batch, never a client error.
        assert stats.failed == 0
        assert stats.completed == len(CONFIGS)
        assert stats.lost == 0
        assert [r.summary() for r in results] == baseline

    def test_permanent_failure_quarantines_only_its_own_handle(
        self, baseline
    ):
        stats, results = serve_chaos(
            CONFIGS,
            faults=FaultPlan(fail_benchmark=FAST, fail_scheme="spawn"),
            policy=ExecutionPolicy(max_retries=1),
        )
        # The ledger reports the quarantined job...
        assert stats.quarantined == 1
        assert stats.failed == 1
        assert stats.completed == len(CONFIGS) - 1
        assert stats.lost == 0
        # ...and only the doomed handle failed, with the typed error.
        doomed = [
            isinstance(result, RunFailure) for result in results
        ]
        assert doomed == [
            c.benchmark == FAST and c.scheme == "spawn" for c in CONFIGS
        ]
        [failure] = [r for r in results if isinstance(r, RunFailure)]
        assert failure.config.scheme == "spawn"
        survivors = [
            result.summary()
            for result in results
            if not isinstance(result, RunFailure)
        ]
        expected = [
            summary
            for config, summary in zip(CONFIGS, baseline)
            if not (config.benchmark == FAST and config.scheme == "spawn")
        ]
        assert survivors == expected

    def test_flaky_store_under_live_traffic(self, baseline, tmp_path):
        plan = FaultPlan(store_save_errors=10, store_load_errors=10)
        runner = Runner(store=plan.flaky_store(open_store(tmp_path)))
        stats, results = serve_chaos(CONFIGS, faults=plan, runner=runner)
        assert stats.failed == 0
        assert stats.lost == 0
        assert [r.summary() for r in results] == baseline
        # Every disk write failed; the service never noticed.
        assert open_store(tmp_path).stats().entries == 0

    def test_combined_kill_and_flaky_store_completes_the_rest(
        self, baseline, tmp_path
    ):
        """The ISSUE's chaos variant: worker kill + torn store IO +
        a permanently failing pair, all under one live service."""
        plan = FaultPlan(
            kill_on_dispatch=0,
            fail_benchmark=FAST,
            fail_scheme="spawn",
            store_save_errors=10,
            store_load_errors=10,
        )
        runner = Runner(store=plan.flaky_store(open_store(tmp_path)))
        stats, results = serve_chaos(
            CONFIGS,
            faults=plan,
            runner=runner,
            policy=ExecutionPolicy(max_retries=1),
        )
        assert stats.worker_crashes >= 1
        assert stats.quarantined == 1
        assert stats.failed == 1
        assert stats.completed == len(CONFIGS) - 1
        assert stats.lost == 0
        survivors = [
            result.summary()
            for result in results
            if not isinstance(result, RunFailure)
        ]
        expected = [
            summary
            for config, summary in zip(CONFIGS, baseline)
            if not (config.benchmark == FAST and config.scheme == "spawn")
        ]
        assert survivors == expected

    def test_repro_serve_honours_env_fault_plan(self, monkeypatch, tmp_path):
        """`REPRO_FAULTS` reaches the service through the CLI, and a
        faulted serve still drains clean (exit 0, nothing lost)."""
        from repro.cli import main

        monkeypatch.setenv(
            ENV_FAULTS,
            json.dumps(
                {
                    "kill_on_dispatch": 0,
                    "store_save_errors": 5,
                    "store_load_errors": 5,
                }
            ),
        )
        stats_path = tmp_path / "stats.json"
        code = main(
            [
                "serve", "--synthetic", "6", "--jobs", "2",
                "--cache-dir", str(tmp_path / "cache"),
                "--stats-json", str(stats_path),
            ]
        )
        assert code == 0
        stats = json.loads(stats_path.read_text())
        assert stats["submitted"] == 6
        assert stats["failed"] == 0
        assert stats["lost"] == 0
        assert stats["worker_crashes"] >= 1
