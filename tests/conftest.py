"""Shared fixtures: small configurations and tiny synthetic applications.

Unit and integration tests run against :func:`repro.sim.config.small_debug_gpu`
(2 SMXs, 4 CTAs each) and hand-built micro-applications, so the suite stays
fast; the full Table I benchmarks are exercised by a handful of dedicated
workload/experiment tests and by the benchmark harness.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.sim.config import GPUConfig, small_debug_gpu
from repro.sim.engine import GPUSimulator
from repro.sim.kernel import Application, ChildRequest, KernelSpec


@pytest.fixture
def debug_config() -> GPUConfig:
    return small_debug_gpu()


@pytest.fixture
def k20_config() -> GPUConfig:
    return GPUConfig()


def make_flat_app(
    *,
    threads: int = 64,
    items: int = 4,
    threads_per_cta: int = 32,
    name: str = "flat-app",
    heavy_thread: int | None = None,
    heavy_items: int = 0,
) -> Application:
    """A single flat kernel with uniform work (optionally one heavy thread)."""
    work = np.full(threads, items, dtype=np.int64)
    if heavy_thread is not None:
        work[heavy_thread] = heavy_items
    bases = np.arange(threads, dtype=np.int64) * 256
    spec = KernelSpec(
        name=name,
        threads_per_cta=threads_per_cta,
        thread_items=work,
        mem_bases=bases,
        mem_stride=4,
    )
    return Application(name=name, kernels=[spec], flat_items=int(work.sum()))


def make_dp_app(
    *,
    threads: int = 64,
    base_items: int = 2,
    threads_per_cta: int = 32,
    child_every: int = 2,
    child_items: int = 32,
    child_cta: int = 32,
    at_fraction: float = 0.0,
    nested: bool = False,
    name: str = "dp-app",
) -> Application:
    """A parent kernel where every ``child_every``-th thread can launch."""
    work = np.full(threads, base_items, dtype=np.int64)
    bases = np.arange(threads, dtype=np.int64) * 256
    requests = {}
    for tid in range(0, threads, child_every):
        sub = {}
        if nested:
            sub[0] = ChildRequest(
                name=f"{name}-grandchild-{tid}",
                items=child_items,
                cta_threads=child_cta,
                mem_base=10_000_000 + tid * 65536,
                mem_stride=4,
            )
        requests[tid] = ChildRequest(
            name=f"{name}-child-{tid}",
            items=child_items,
            cta_threads=child_cta,
            mem_base=1_000_000 + tid * 65536,
            mem_stride=4,
            at_fraction=at_fraction,
            nested=sub,
        )
    spec = KernelSpec(
        name=name,
        threads_per_cta=threads_per_cta,
        thread_items=work,
        mem_bases=bases,
        mem_stride=4,
        child_requests=requests,
    )
    total = int(work.sum()) + sum(
        r.items for reqs in spec.child_requests.values() for r in reqs
    )
    return Application(name=name, kernels=[spec], flat_items=total)


@pytest.fixture
def flat_app() -> Application:
    return make_flat_app()


@pytest.fixture
def dp_app() -> Application:
    return make_dp_app()


@pytest.fixture
def debug_sim(debug_config) -> GPUSimulator:
    return GPUSimulator(config=debug_config)
