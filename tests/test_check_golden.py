"""Golden-trace corpus tests (``repro.check.golden`` + ``tests/golden/``).

Fast layer: the corpus is complete and well-formed, the file format
round-trips, version/truncation guards fire, and ``diff_traces`` reports
first divergences precisely.  One cheap matrix cell is re-simulated and
diffed against its stored golden — the actual regression gate.

Slow layer: every cell of ``GOLDEN_MATRIX`` is re-simulated under the
invariant checker and must match its golden bit-for-bit (the same sweep
``repro check`` runs in CI).
"""

import gzip
import json

import pytest

from repro.check import ConformanceChecker, diff_traces
from repro.check.golden import (
    GOLDEN_MATRIX,
    GOLDEN_VERSION,
    canonical_events,
    default_golden_dir,
    golden_path,
    load_golden,
    record_trace,
    write_golden,
)
from repro.errors import HarnessError
from repro.obs.tracer import TraceEvent
from repro.sim.config import GPUConfig

EVENTS = [
    {"ts": 0.0, "kind": "gmu.hwq_bind", "swq": 1, "bound": 1},
    {"ts": 5.0, "kind": "gmu.hwq_release", "swq": 1, "bound": 0},
]


class TestCorpus:
    def test_every_matrix_cell_has_a_golden_file(self):
        directory = default_golden_dir()
        for benchmark, scheme in GOLDEN_MATRIX:
            assert golden_path(directory, benchmark, scheme).is_file()

    def test_headers_are_consistent(self):
        directory = default_golden_dir()
        for benchmark, scheme in GOLDEN_MATRIX:
            header, events = load_golden(
                golden_path(directory, benchmark, scheme)
            )
            assert header["golden_version"] == GOLDEN_VERSION
            assert header["benchmark"] == benchmark
            assert header["scheme"] == scheme
            assert header["events"] == len(events) > 0
            assert header["makespan"] > 0

    def test_golden_events_replay_clean_through_checker(self):
        """A stored stream re-checked from scratch has zero violations."""
        directory = default_golden_dir()
        _, events = load_golden(
            golden_path(directory, "BFS-citation", "spawn")
        )
        checker = ConformanceChecker(GPUConfig())
        stream = [
            TraceEvent(
                e["ts"], e["kind"],
                {k: v for k, v in e.items() if k not in ("ts", "kind")},
            )
            for e in events
        ]
        assert checker.check_trace(stream) == []
        assert checker.finalize() == []

    def test_cheap_cell_matches_golden(self):
        """Regression gate: re-simulate one cell, diff against the corpus."""
        benchmark, scheme = "BFS-citation", "flat"
        checker, result = record_trace(benchmark, scheme)
        assert checker.violations == []
        _, expected = load_golden(
            golden_path(default_golden_dir(), benchmark, scheme)
        )
        assert diff_traces(expected, canonical_events(checker.events())) is None

    @pytest.mark.slow
    @pytest.mark.parametrize("bench_name,scheme", GOLDEN_MATRIX)
    def test_full_matrix_matches_golden(self, bench_name, scheme):
        checker, result = record_trace(bench_name, scheme)
        checker.finalize(result)
        assert checker.violations == []
        _, expected = load_golden(
            golden_path(default_golden_dir(), bench_name, scheme)
        )
        divergence = diff_traces(expected, canonical_events(checker.events()))
        assert divergence is None, str(divergence)


class TestFormat:
    def test_write_load_roundtrip(self, tmp_path):
        path = golden_path(tmp_path, "bench", "spawn:t=40")
        assert path.name == "bench__spawn-t=40.jsonl.gz"
        write_golden(
            path, EVENTS, benchmark="bench", scheme="spawn:t=40",
            seed=7, makespan=5.0,
        )
        header, events = load_golden(path)
        assert events == EVENTS
        assert header["seed"] == 7
        assert header["makespan"] == 5.0

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(HarnessError, match="does not exist"):
            load_golden(tmp_path / "nope.jsonl.gz")

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write("")
        with pytest.raises(HarnessError, match="empty"):
            load_golden(path)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "old.jsonl.gz"
        with gzip.open(path, "wt") as handle:
            handle.write(json.dumps({"golden_version": 0, "events": 0}) + "\n")
        with pytest.raises(HarnessError, match="version 0"):
            load_golden(path)

    def test_truncation_raises(self, tmp_path):
        path = golden_path(tmp_path, "bench", "spawn")
        write_golden(path, EVENTS, benchmark="bench", scheme="spawn")
        lines = gzip.open(path, "rt").read().splitlines()
        with gzip.open(path, "wt") as handle:
            handle.write("\n".join(lines[:-1]) + "\n")
        with pytest.raises(HarnessError, match="truncated"):
            load_golden(path)


class TestDiff:
    def test_identical_streams(self):
        assert diff_traces(EVENTS, [dict(e) for e in EVENTS]) is None

    def test_field_divergence(self):
        mutated = [dict(e) for e in EVENTS]
        mutated[1]["swq"] = 2
        mismatch = diff_traces(EVENTS, mutated)
        assert mismatch.index == 1
        assert mismatch.fields == ("swq",)
        report = str(mismatch)
        assert "first divergence at event #1" in report
        assert "swq: 1 != 2" in report

    def test_actual_stream_ends_early(self):
        mismatch = diff_traces(EVENTS, EVENTS[:1])
        assert mismatch.index == 1
        assert mismatch.actual is None
        assert "actual stream ended" in str(mismatch)

    def test_actual_stream_runs_long(self):
        extra = EVENTS + [{"ts": 9.0, "kind": "x"}]
        mismatch = diff_traces(EVENTS, extra)
        assert mismatch.index == 2
        assert mismatch.expected is None
        assert "expected stream ended" in str(mismatch)
