"""Shared hypothesis strategies for simulator property tests.

Promoted out of ``test_properties_engine.py`` so the conformance suite's
differential tests (``test_check_differential.py``) and any future
property tests draw from the same application space instead of growing
divergent ad-hoc generators.

* :func:`micro_apps` — random micro-applications: grid sizes, uniform work
  distributions, child fan-outs at random progress points.
* :func:`rich_apps` — a wider space: multiple root kernels, non-uniform
  per-thread work, nested-depth child requests.  Slower to simulate; meant
  for the ``slow``-marked differential tests.
* :data:`POLICIES` / :func:`policies` — one factory per launch-policy
  family (every :class:`~repro.core.policies.DecisionKind` is reachable).
* :func:`job_costs` / :func:`maybe_costs` / :func:`admission_states` —
  the service-layer admission space: predicted job costs (``None`` is
  the bootstrap case) and :class:`~repro.service.admission
  .AdmissionController` instances driven into *reachable* queue states
  (prior traffic is replayed through the controller's own policy, so no
  generated state is one the service could not actually be in).
* :func:`sweep_grids` / :func:`cost_tables` / :func:`observation_sequences`
  / :func:`arm_schedules` — the online-autotuning search space
  (``tests/test_autotune.py``): Offline-Search-style arm grids,
  deterministic per-arm cost environments (the makespan objective), and
  arbitrary completion orders, including the in-flight-after-elimination
  ones the service can deliver.
"""

import numpy as np
from hypothesis import strategies as st

from repro.core.policies import (
    AggregatePolicy,
    AlwaysLaunchPolicy,
    ConsolidatePolicy,
    DTBLPolicy,
    FreeLaunchPolicy,
    NeverLaunchPolicy,
    SpawnPolicy,
    StaticThresholdPolicy,
)
from repro.service.admission import ADMIT, AdmissionController, CostModel
from repro.sim.kernel import Application, ChildRequest, KernelSpec

#: One factory per policy family.  Index into this with a drawn integer
#: (hypothesis shrinks integers well) or use the :func:`policies` strategy.
POLICIES = [
    NeverLaunchPolicy,
    AlwaysLaunchPolicy,
    lambda: StaticThresholdPolicy(50),
    SpawnPolicy,
    lambda: DTBLPolicy(0),
    FreeLaunchPolicy,
    lambda: ConsolidatePolicy(0, batch_ctas=2),
    lambda: AggregatePolicy(0, "warp"),
    lambda: AggregatePolicy(0, "block"),
    lambda: AggregatePolicy(0, "grid"),
]


def policies():
    """Strategy yielding a fresh-policy factory (not a shared instance)."""
    return st.sampled_from(POLICIES)


@st.composite
def child_requests(draw, threads, *, max_requests=6, max_items=200):
    """A dict of per-thread :class:`ChildRequest` fan-outs."""
    requests = {}
    tids = draw(
        st.lists(
            st.integers(min_value=0, max_value=threads - 1),
            min_size=0,
            max_size=min(max_requests, threads),
            unique=True,
        )
    )
    total_child_items = 0
    for tid in tids:
        items = draw(st.integers(min_value=1, max_value=max_items))
        total_child_items += items
        requests[tid] = ChildRequest(
            name=f"c{tid}",
            items=items,
            cta_threads=draw(st.sampled_from([16, 32, 64])),
            items_per_thread=draw(st.integers(min_value=1, max_value=3)),
            mem_base=1_000_000 + tid * 65536,
            at_fraction=draw(st.floats(min_value=0.0, max_value=1.0)),
        )
    return requests, total_child_items


@st.composite
def micro_apps(draw):
    """Single-kernel applications with uniform per-thread work."""
    threads = draw(st.integers(min_value=1, max_value=96))
    threads_per_cta = draw(st.sampled_from([8, 32, 64]))
    base_items = draw(st.integers(min_value=0, max_value=8))
    items = np.full(threads, base_items, dtype=np.int64)
    requests, total_child_items = draw(child_requests(threads))
    spec = KernelSpec(
        name="p",
        threads_per_cta=threads_per_cta,
        thread_items=items,
        mem_bases=np.arange(threads, dtype=np.int64) * 128,
        child_requests=requests,
    )
    total = int(items.sum()) + total_child_items
    return Application(name="micro", kernels=[spec], flat_items=total)


def job_costs(max_value: float = 60.0):
    """Predicted per-job seconds: finite, non-negative."""
    return st.floats(
        min_value=0.0, max_value=max_value,
        allow_nan=False, allow_infinity=False,
    )


def maybe_costs(max_value: float = 60.0):
    """A predicted cost or ``None`` (the bootstrap no-data case)."""
    return st.one_of(st.none(), job_costs(max_value))


@st.composite
def admission_states(draw, max_prior_traffic: int = 16):
    """An :class:`AdmissionController` in a reachable queue state.

    Draws the controller's tunables, then replays drawn prior traffic
    through its *own* policy (only costs it actually admits join the
    backlog), so every generated state is one the service could reach.
    """
    controller = AdmissionController(
        CostModel(),
        workers=draw(st.integers(min_value=1, max_value=8)),
        deadline_s=draw(
            st.one_of(
                st.none(),
                st.floats(
                    min_value=0.001, max_value=120.0,
                    allow_nan=False, allow_infinity=False,
                ),
            )
        ),
        inline_threshold_s=draw(job_costs(5.0)),
        max_queue=draw(
            st.one_of(st.none(), st.integers(min_value=1, max_value=16))
        ),
    )
    for cost in draw(
        st.lists(maybe_costs(), max_size=max_prior_traffic)
    ):
        decision = controller.classify(cost)
        if decision.verdict == ADMIT:
            controller.on_admitted(decision)
    return controller


# ----------------------------------------------------------------------
# Online autotuning (repro.service.autotune)
# ----------------------------------------------------------------------
@st.composite
def sweep_grids(draw, max_arms: int = 12):
    """A unique Offline-Search-style arm grid (``threshold:<T>`` schemes)."""
    thresholds = draw(
        st.lists(
            st.integers(min_value=1, max_value=1 << 20),
            min_size=1,
            max_size=max_arms,
            unique=True,
        )
    )
    return tuple(f"threshold:{t}" for t in thresholds)


def arm_costs(max_value: float = 1e9):
    """One pull's observed cost: finite, non-negative (makespan or seconds)."""
    return st.floats(
        min_value=0.0, max_value=max_value,
        allow_nan=False, allow_infinity=False,
    )


@st.composite
def cost_tables(draw, arms, exact: bool = False):
    """A deterministic cost per arm: the stationary environment the
    tuner's convergence guarantees assume (simulated makespan is exactly
    this — every pull of an arm observes the same number).

    ``exact=True`` draws integer-valued floats, so repeated-pull means
    are exact (integer sums below 2**53 and the final division are both
    representable) — required by argmin/monotonicity properties, and the
    shape of the integral makespan objective anyway.
    """
    if exact:
        value = st.integers(min_value=0, max_value=10**9).map(float)
    else:
        value = arm_costs()
    return {arm: draw(value) for arm in arms}


@st.composite
def observation_sequences(draw, arms, max_length: int = 48):
    """Arbitrary ``(arm, cost)`` completions in any order — including
    repeats and arms the schedule would not propose next, the shape of
    in-flight completions arriving after an elimination cut."""
    pair = st.tuples(st.sampled_from(list(arms)), arm_costs(1e6))
    return draw(st.lists(pair, max_size=max_length))


@st.composite
def arm_schedules(draw, max_arms: int = 10, exact: bool = False):
    """A full tuning environment: ``(grid, seed, per-arm cost table)``."""
    arms = draw(sweep_grids(max_arms=max_arms))
    seed = draw(st.integers(min_value=0, max_value=1 << 16))
    costs = draw(cost_tables(arms, exact=exact))
    return arms, seed, costs


@st.composite
def rich_apps(draw):
    """Multi-kernel applications with skewed per-thread work distributions.

    Exercises the paths micro_apps cannot: several sequential root kernels
    (stream retirement and HWQ rebinding), non-uniform warps (reduceat
    critical paths), and larger child grids (multi-CTA children, grid
    suspension while descendants run).
    """
    num_roots = draw(st.integers(min_value=1, max_value=3))
    kernels = []
    total = 0
    for index in range(num_roots):
        threads = draw(st.integers(min_value=1, max_value=128))
        threads_per_cta = draw(st.sampled_from([8, 16, 32, 64]))
        items = draw(
            st.lists(
                st.integers(min_value=0, max_value=12),
                min_size=threads,
                max_size=threads,
            )
        )
        items = np.asarray(items, dtype=np.int64)
        requests, child_items = draw(
            child_requests(threads, max_requests=8, max_items=400)
        )
        kernels.append(
            KernelSpec(
                name=f"root{index}",
                threads_per_cta=threads_per_cta,
                thread_items=items,
                mem_bases=np.arange(threads, dtype=np.int64) * 128
                + (index << 20),
                child_requests=requests,
            )
        )
        total += int(items.sum()) + child_items
    return Application(name="rich", kernels=kernels, flat_items=total)
