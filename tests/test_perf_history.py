"""Tests for the rolling perf history (repro.harness.history) and
``repro perf``.

The contract: records are append-only JSONL with a per-line schema tag;
comparison against the trailing window is direction-aware (seconds
regress upward, throughput downward); a makespan that differs from the
last recorded one is drift — a hard failure regardless of timing.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.errors import HarnessError
from repro.harness.history import (
    BENCH,
    HISTORY_SCHEMA,
    SOAK,
    PerfRecord,
    append_records,
    compare,
    load_history,
    records_from_bench,
    series,
    soak_record,
    trend_chart,
)


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def bench_rec(value, at="2026-08-07T00:00:00", label="MM-small/spawn",
              makespan=100.0):
    return PerfRecord(
        kind=BENCH, label=label, value=value, at=at,
        details={"makespan": makespan},
    )


def soak_rec(value, at="2026-08-07T00:00:00"):
    return PerfRecord(kind=SOAK, label="service-soak", value=value, at=at)


class TestPerfRecord:
    def test_rejects_unknown_kind(self):
        with pytest.raises(HarnessError):
            PerfRecord(kind="vibes", label="x", value=1.0, at="")

    def test_units_and_direction_follow_kind(self):
        assert bench_rec(1.0).unit == "s"
        assert bench_rec(1.0).lower_is_better
        assert soak_rec(1.0).unit == "req/s"
        assert not soak_rec(1.0).lower_is_better

    def test_dict_round_trip_carries_schema(self):
        record = bench_rec(0.25)
        payload = record.to_dict()
        assert payload["schema"] == HISTORY_SCHEMA
        assert PerfRecord.from_dict(payload) == record

    def test_malformed_payload_raises(self):
        with pytest.raises(HarnessError):
            PerfRecord.from_dict({"kind": BENCH})


class TestPersistence:
    def test_missing_file_loads_empty(self, tmp_path):
        assert load_history(tmp_path / "absent.jsonl") == []

    def test_append_then_load_round_trips_in_order(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = [bench_rec(0.2), soak_rec(15.0)]
        second = [bench_rec(0.3, at="2026-08-07T01:00:00")]
        append_records(first, path)
        append_records(second, path)
        assert load_history(path) == first + second

    def test_invalid_json_line_is_an_error(self, tmp_path):
        path = tmp_path / "history.jsonl"
        path.write_text("not json\n")
        with pytest.raises(HarnessError, match="invalid JSON"):
            load_history(path)


class TestAdapters:
    def test_records_from_bench_carries_makespan_and_speedup(self):
        report = {
            "pairs": [
                {"pair": "MM-small/spawn", "seconds": 0.21,
                 "makespan": 261166.97, "speedup": 1.25},
                {"pair": "MM-small/flat", "seconds": 0.2,
                 "makespan": 300000.0, "speedup": None},
            ]
        }
        records = records_from_bench(report, "2026-08-07T00:00:00")
        assert [r.label for r in records] == [
            "MM-small/spawn", "MM-small/flat",
        ]
        assert records[0].details == {
            "makespan": 261166.97, "speedup": 1.25, "engine": "default",
        }
        assert records[1].details == {
            "makespan": 300000.0, "engine": "default",
        }

    def test_records_from_fast_bench_get_their_own_series(self):
        report = {
            "engine": "fast",
            "pairs": [
                {"pair": "MM-small/spawn", "seconds": 0.15,
                 "makespan": 261166.97},
            ],
        }
        records = records_from_bench(report, "2026-08-07T00:00:00")
        # The engine rides in the label: fast timings must never land in
        # the default engine's trailing window.
        assert [r.label for r in records] == ["MM-small/spawn@fast"]
        assert records[0].details["engine"] == "fast"

    def test_soak_record_computes_throughput_and_shed_rate(self):
        record = soak_record(
            requests=100, seconds=4.0, shed=10, at="2026-08-07T00:00:00"
        )
        assert record.kind == SOAK
        assert record.value == 25.0
        assert record.details["shed_rate"] == 0.1

    def test_soak_record_rejects_nonpositive_duration(self):
        with pytest.raises(HarnessError):
            soak_record(requests=1, seconds=0.0, shed=0, at="")


class TestCompare:
    def test_validates_window_and_ratio(self):
        with pytest.raises(HarnessError):
            compare([], [], window=0)
        with pytest.raises(HarnessError):
            compare([], [], max_ratio=1.0)

    def test_no_history_passes_vacuously(self):
        assert compare([], [bench_rec(5.0)]) == []

    def test_bench_regresses_upward_only(self):
        history = [bench_rec(0.2), bench_rec(0.2)]
        slow = compare(history, [bench_rec(0.5)], max_ratio=1.5)[0]
        assert slow["regressed"] and slow["ratio"] == 2.5
        fast = compare(history, [bench_rec(0.05)], max_ratio=1.5)[0]
        assert not fast["regressed"]  # improvements never regress

    def test_soak_regresses_downward_only(self):
        history = [soak_rec(20.0), soak_rec(20.0)]
        slow = compare(history, [soak_rec(10.0)], max_ratio=1.5)[0]
        assert slow["regressed"]
        fast = compare(history, [soak_rec(40.0)], max_ratio=1.5)[0]
        assert not fast["regressed"]

    def test_window_limits_the_baseline(self):
        history = [bench_rec(10.0), bench_rec(0.2), bench_rec(0.2)]
        verdict = compare(history, [bench_rec(0.2)], window=2)[0]
        assert verdict["baseline"] == pytest.approx(0.2)
        assert verdict["window"] == 2
        assert not verdict["regressed"]

    def test_makespan_drift_flags_even_when_timing_is_fine(self):
        history = [bench_rec(0.2, makespan=100.0)]
        verdict = compare(history, [bench_rec(0.2, makespan=101.0)])[0]
        assert verdict["drift"]
        assert not verdict["regressed"]
        same = compare(history, [bench_rec(0.2, makespan=100.0)])[0]
        assert not same["drift"]

    def test_soak_records_never_drift(self):
        verdict = compare([soak_rec(20.0)], [soak_rec(20.0)])[0]
        assert not verdict["drift"]


class TestTrendChart:
    def test_empty_history(self):
        assert trend_chart([]) == "(no history)"

    def test_one_line_per_series_with_units(self):
        history = [
            bench_rec(0.2), bench_rec(0.25, at="2026-08-07T01:00:00"),
            soak_rec(16.0),
        ]
        chart = trend_chart(history)
        lines = chart.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("MM-small/spawn")
        assert "0.2 -> 0.25 s (n=2)" in lines[0]
        assert "req/s (n=1)" in lines[1]

    def test_labels_filter(self):
        history = [bench_rec(0.2), soak_rec(16.0)]
        chart = trend_chart(history, labels=["service-soak"])
        assert "MM-small" not in chart
        assert "service-soak" in chart


class TestPerfCli:
    def test_perf_appends_records_and_charts(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        capsys.readouterr()
        code, output = run_cli(
            "perf", "--pairs", "MM-small/spawn", "--repeat", "1",
            "--history", str(history),
        )
        assert code == 0, output
        assert "perf records" in output
        assert "MM-small/spawn" in output
        records = load_history(history)
        assert len(records) == 1
        assert records[0].kind == BENCH
        assert "appended 1 records" in capsys.readouterr().err

    def test_perf_no_append_leaves_history_untouched(self, tmp_path):
        history = tmp_path / "history.jsonl"
        code, _ = run_cli(
            "perf", "--pairs", "MM-small/spawn", "--repeat", "1",
            "--history", str(history), "--no-append",
        )
        assert code == 0
        assert not history.exists()

    def test_perf_json_artifact_has_records_and_verdicts(self, tmp_path):
        history = tmp_path / "history.jsonl"
        artifact = tmp_path / "perf.json"
        code, _ = run_cli(
            "perf", "--pairs", "MM-small/spawn", "--repeat", "1",
            "--history", str(history), "--no-append", "--json", str(artifact),
        )
        assert code == 0
        payload = json.loads(artifact.read_text())
        assert {"at", "records", "verdicts"} <= set(payload)
        assert payload["records"][0]["label"] == "MM-small/spawn"

    def test_perf_drift_fails_the_run(self, tmp_path, capsys):
        history = tmp_path / "history.jsonl"
        # Seed a record whose makespan cannot match the real simulation.
        append_records(
            [bench_rec(0.2, label="MM-small/spawn", makespan=-1.0)], history
        )
        capsys.readouterr()
        code, _ = run_cli(
            "perf", "--pairs", "MM-small/spawn", "--repeat", "1",
            "--history", str(history), "--no-append",
        )
        assert code == 1
        assert "drifted" in capsys.readouterr().err

    def test_perf_rejects_malformed_pairs(self):
        code, _ = run_cli("perf", "--pairs", "nonsense", "--repeat", "1")
        assert code == 2

    def test_committed_history_matches_schema(self):
        # The repo ships a seeded bench_history.jsonl; it must parse.
        from pathlib import Path

        committed = Path(__file__).resolve().parent.parent / "bench_history.jsonl"
        records = load_history(committed)
        assert records, "committed bench_history.jsonl is missing or empty"
        assert {record.kind for record in records} <= {BENCH, SOAK}
