"""Golden regression tests: pin down the model's deterministic outputs.

These catch accidental drift in the execution model — any intentional
model change should update the expected values *and* re-verify the
EXPERIMENTS.md shapes.
"""

import pytest

from repro.core.policies import AlwaysLaunchPolicy, NeverLaunchPolicy, SpawnPolicy
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator

from tests.conftest import make_dp_app, make_flat_app


def makespan(app, policy=None):
    return GPUSimulator(config=small_debug_gpu(), policy=policy).run(app).makespan


class TestAnalyticCases:
    def test_single_cta_uncontended_makespan(self):
        """One 32-thread CTA, 4 items each, empty GPU: analytic latency.

        warp time = init + items * (cpi + apm * stall(miss)); the footprint
        is cold, so every access misses (stall = dram/mlp = 80).
        """
        app = make_flat_app(threads=32, items=4)
        expected = 50.0 + 4 * (20.0 + 1.0 * 80.0)
        assert makespan(app) == pytest.approx(expected)

    def test_warm_second_kernel_is_faster(self):
        """Two identical kernels back to back: the second hits in L2."""
        app1 = make_flat_app(threads=32, items=4)
        spec = app1.kernels[0]
        from repro.sim.kernel import Application

        double = Application(name="double", kernels=[spec, spec])
        total = makespan(double)
        cold = 50.0 + 4 * (20.0 + 80.0)
        warm = 50.0 + 4 * (20.0 + 30.0)  # stall(hit) = 120/4
        assert total == pytest.approx(cold + warm)

    def test_launch_latency_floor(self):
        """A child's completion is bounded below by b + its execution."""
        app = make_dp_app(threads=32, child_every=32, child_items=32, base_items=1)
        sim = GPUSimulator(config=small_debug_gpu(), policy=AlwaysLaunchPolicy())
        result = sim.run(app)
        child = [r for r in result.stats.kernels.values() if r.is_child][0]
        launch = sim.config.launch
        assert child.arrival_time - child.launch_call_time == pytest.approx(
            launch.latency(1)
        )


class TestGoldenValues:
    """Frozen outputs of the standard micro-apps on the debug GPU."""

    def test_flat_app(self, flat_app):
        assert makespan(flat_app) == pytest.approx(450.0, abs=0.5)

    def test_dp_always(self, dp_app):
        assert makespan(dp_app, AlwaysLaunchPolicy()) == pytest.approx(
            3300.0, rel=0.01
        )

    def test_dp_never(self, dp_app):
        assert makespan(dp_app, NeverLaunchPolicy()) == pytest.approx(
            3450.0, rel=0.01
        )

    def test_dp_spawn(self, dp_app):
        assert makespan(dp_app, SpawnPolicy()) == pytest.approx(3300.0, rel=0.01)
