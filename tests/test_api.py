"""Tests for the stable ``repro.api`` façade and its deprecation shims."""

import pytest

from repro import api
from repro.errors import HarnessError
from repro.harness.runner import RunConfig, Runner

#: The cheapest benchmark to simulate end-to-end.
FAST = "GC-citation"


@pytest.fixture(scope="module")
def runner():
    return Runner()


class TestSimulate:
    def test_end_to_end(self, runner):
        result = api.simulate(FAST, "spawn", runner=runner)
        assert result.makespan > 0
        assert result is runner.run(RunConfig(benchmark=FAST, scheme="spawn"))

    def test_explicit_parameters_reach_the_config(self, runner):
        result = api.simulate(
            FAST, "baseline-dp", runner=runner, trace_interval=500.0
        )
        expected = runner.run(
            RunConfig(benchmark=FAST, scheme="baseline-dp", trace_interval=500.0)
        )
        assert result is expected

    def test_speedup(self, runner):
        speedup = api.speedup(FAST, "spawn", runner=runner)
        flat = runner.run(RunConfig(benchmark=FAST, scheme="flat"))
        spawn = runner.run(RunConfig(benchmark=FAST, scheme="spawn"))
        assert speedup == pytest.approx(flat.makespan / spawn.makespan)


class TestRunSuite:
    def test_accepts_tuples_and_configs(self, runner):
        report = api.run_suite(
            [(FAST, "flat"), RunConfig(benchmark=FAST, scheme="spawn")],
            runner=runner,
            jobs=1,
        )
        assert report.ok
        assert all(r is not None and r.makespan > 0 for r in report.results)

    def test_seed_applies_to_tuple_entries(self, runner):
        report = api.run_suite([(FAST, "flat")], runner=runner, jobs=1, seed=3)
        assert report.configs[0].seed == 3

    def test_rejects_garbage_entries(self):
        with pytest.raises(HarnessError):
            api.run_suite([42], jobs=1)

    def test_policy_knobs_validate(self):
        with pytest.raises(HarnessError):
            api.run_suite([(FAST, "flat")], jobs=1, timeout=-1.0)


class TestSurface:
    def test_every_exported_name_resolves(self):
        for name in api.__all__:
            assert getattr(api, name) is not None, name

    def test_core_reexports_are_the_real_types(self):
        assert api.RunConfig is RunConfig
        assert api.Runner is Runner


class TestDeprecationShims:
    """Old spellings must warn but keep working (API stability policy)."""

    def test_run_simple_legacy_kwarg_warns_but_works(self, runner):
        with pytest.warns(DeprecationWarning, match="run_simple"):
            result = runner.run_simple(FAST, "flat", trace_interval=500.0)
        expected = runner.run(
            RunConfig(benchmark=FAST, scheme="flat", trace_interval=500.0)
        )
        assert result is expected

    def test_run_simple_explicit_keywords_do_not_warn(self, runner):
        # pytest is configured with error::DeprecationWarning, so a stray
        # warning here would fail the test on its own.
        result = runner.run_simple(FAST, "flat", seed=1)
        assert result is runner.run(RunConfig(benchmark=FAST, scheme="flat"))

    def test_run_simple_unknown_kwarg_is_still_a_typeerror(self, runner):
        with pytest.raises(TypeError, match="unexpected keyword"):
            runner.run_simple(FAST, "flat", trace_intervall=500.0)

    def test_speedup_legacy_kwarg_warns_but_works(self, runner):
        with pytest.warns(DeprecationWarning, match="speedup"):
            legacy = runner.speedup(FAST, "spawn", trace_interval=500.0)
        assert legacy > 0
