"""Error-path coverage for the CLI: every failure mode must exit with a
clean diagnostic (code 1/2 plus an ``error:`` line), never a traceback."""

import io

import pytest

from repro.cli import main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestRunErrors:
    def test_unwritable_trace_path_exits_cleanly(self, tmp_path, capsys):
        target = tmp_path / "no-such-dir" / "trace.jsonl"
        code, _ = run_cli(
            "run", "MM-small", "--scheme", "spawn", "--trace", str(target)
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_trace_path_is_a_directory(self, tmp_path, capsys):
        code, _ = run_cli(
            "run", "MM-small", "--scheme", "spawn", "--trace", str(tmp_path)
        )
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestAuditErrors:
    def test_unknown_benchmark(self, capsys):
        code, _ = run_cli("audit", "no-such-benchmark")
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_unknown_scheme(self, capsys):
        code, _ = run_cli("audit", "MM-small", "--scheme", "not-a-scheme")
        assert code == 1
        assert "error:" in capsys.readouterr().err


class TestCacheErrors:
    def test_stats_on_missing_dir(self, tmp_path):
        missing = tmp_path / "never-created"
        code, text = run_cli("cache", "stats", "--cache-dir", str(missing))
        assert code == 0
        assert "entries" in text and not missing.exists()

    def test_clear_on_empty_dir(self, tmp_path):
        code, text = run_cli("cache", "clear", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "removed 0 entries" in text

    def test_stats_ignores_foreign_files(self, tmp_path):
        (tmp_path / "README.txt").write_text("not a cache entry")
        code, text = run_cli("cache", "stats", "--cache-dir", str(tmp_path))
        assert code == 0
        assert "entries" in text


class TestCheckErrors:
    def test_unknown_benchmark_filter(self, capsys):
        code, _ = run_cli("check", "--benchmark", "no-such-benchmark")
        assert code == 2
        assert "not in the golden matrix" in capsys.readouterr().err

    def test_missing_golden_file(self, tmp_path, capsys):
        # An empty --golden-dir: the cell simulates cleanly but the stored
        # trace is absent, which must surface the regenerate hint.
        code, _ = run_cli(
            "check",
            "--benchmark", "BFS-citation",
            "--golden-dir", str(tmp_path),
        )
        assert code == 1
        assert "does not exist" in capsys.readouterr().err

    def test_update_golden_writes_files(self, tmp_path):
        code, text = run_cli(
            "check",
            "--update-golden",
            "--benchmark", "BFS-citation",
            "--golden-dir", str(tmp_path),
        )
        assert code == 0
        assert "wrote" in text
        assert list(tmp_path.glob("BFS-citation__*.jsonl.gz"))
        # And the freshly written goldens verify against a re-run.
        code, text = run_cli(
            "check",
            "--benchmark", "BFS-citation",
            "--golden-dir", str(tmp_path),
        )
        assert code == 0
        assert "matches golden" in text
