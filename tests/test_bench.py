"""Tests for the engine wall-clock benchmark (repro bench)."""

import json

from repro.harness.bench import (
    BENCH_PAIRS,
    DEFAULT_MIN_SPEEDUP,
    REFERENCE,
    default_output_path,
    regressions,
    run_bench,
    write_report,
)

CHEAP = (("GC-citation", "spawn"), ("BFS-graph500", "spawn"))


class TestRunBench:
    def test_report_shape_and_reference_join(self):
        report = run_bench(pairs=CHEAP, repeat=1)
        assert report["repeat"] == 1
        assert [row["pair"] for row in report["pairs"]] == [
            "GC-citation/spawn",
            "BFS-graph500/spawn",
        ]
        for row in report["pairs"]:
            assert row["seconds"] > 0
            assert row["makespan"] > 0
        unreferenced, referenced = report["pairs"]
        assert "speedup" not in unreferenced  # no recorded baseline
        assert referenced["reference_seconds"] == REFERENCE["BFS-graph500/spawn"]["seconds"]
        assert referenced["speedup"] > 0
        # The engine must still produce the reference makespan bit-for-bit.
        assert referenced["makespan_identical"] is True

    def test_default_pairs_have_references(self):
        for name, scheme in BENCH_PAIRS:
            assert f"{name}/{scheme}" in REFERENCE


class TestRegressions:
    REPORT = {
        "pairs": [
            {"pair": "a/spawn", "speedup": 0.2},
            {"pair": "b/spawn", "speedup": 1.4},
            {"pair": "c/spawn", "seconds": 1.0},  # no reference recorded
        ]
    }

    def test_flags_only_pairs_below_threshold(self):
        regressed = regressions(self.REPORT, 0.5)
        assert [row["pair"] for row in regressed] == ["a/spawn"]

    def test_unreferenced_pairs_never_regress(self):
        assert regressions(self.REPORT, 100.0) != self.REPORT["pairs"]
        assert all(
            row["pair"] != "c/spawn"
            for row in regressions(self.REPORT, 100.0)
        )

    def test_empty_report_is_clean(self):
        assert regressions({}, DEFAULT_MIN_SPEEDUP) == []

    def test_default_threshold_is_loose_but_positive(self):
        # Host-variance tolerant: a pair must lose >4x vs. its reference
        # before the default gate fires.
        assert 0.0 < DEFAULT_MIN_SPEEDUP <= 0.5


class TestReport:
    def test_write_report_roundtrip(self, tmp_path):
        report = run_bench(pairs=CHEAP[:1], repeat=1)
        path = write_report(report, tmp_path / "BENCH_test.json")
        assert json.loads(path.read_text()) == report

    def test_default_output_path_is_dated(self):
        import datetime

        path = default_output_path(datetime.date(2026, 8, 6))
        assert path.name == "BENCH_20260806.json"
