"""Tests for the engine wall-clock benchmark (repro bench)."""

import json

from repro.harness.bench import (
    BENCH_PAIRS,
    REFERENCE,
    default_output_path,
    run_bench,
    write_report,
)

CHEAP = (("GC-citation", "spawn"), ("BFS-graph500", "spawn"))


class TestRunBench:
    def test_report_shape_and_reference_join(self):
        report = run_bench(pairs=CHEAP, repeat=1)
        assert report["repeat"] == 1
        assert [row["pair"] for row in report["pairs"]] == [
            "GC-citation/spawn",
            "BFS-graph500/spawn",
        ]
        for row in report["pairs"]:
            assert row["seconds"] > 0
            assert row["makespan"] > 0
        unreferenced, referenced = report["pairs"]
        assert "speedup" not in unreferenced  # no recorded baseline
        assert referenced["reference_seconds"] == REFERENCE["BFS-graph500/spawn"]["seconds"]
        assert referenced["speedup"] > 0
        # The engine must still produce the reference makespan bit-for-bit.
        assert referenced["makespan_identical"] is True

    def test_default_pairs_have_references(self):
        for name, scheme in BENCH_PAIRS:
            assert f"{name}/{scheme}" in REFERENCE


class TestReport:
    def test_write_report_roundtrip(self, tmp_path):
        report = run_bench(pairs=CHEAP[:1], repeat=1)
        path = write_report(report, tmp_path / "BENCH_test.json")
        assert json.loads(path.read_text()) == report

    def test_default_output_path_is_dated(self):
        import datetime

        path = default_output_path(datetime.date(2026, 8, 6))
        assert path.name == "BENCH_20260806.json"
