"""Tests for the engine wall-clock benchmark (repro bench)."""

import json

from repro.harness.bench import (
    BENCH_PAIRS,
    DEFAULT_MIN_SPEEDUP,
    REFERENCE,
    compare_engines,
    compare_regressions,
    default_output_path,
    regressions,
    run_bench,
    write_report,
)

CHEAP = (("GC-citation", "spawn"), ("BFS-graph500", "spawn"))


class TestRunBench:
    def test_report_shape_and_reference_join(self):
        report = run_bench(pairs=CHEAP, repeat=1)
        assert report["repeat"] == 1
        assert [row["pair"] for row in report["pairs"]] == [
            "GC-citation/spawn",
            "BFS-graph500/spawn",
        ]
        for row in report["pairs"]:
            assert row["seconds"] > 0
            assert row["makespan"] > 0
        unreferenced, referenced = report["pairs"]
        assert "speedup" not in unreferenced  # no recorded baseline
        assert referenced["reference_seconds"] == REFERENCE["BFS-graph500/spawn"]["seconds"]
        assert referenced["speedup"] > 0
        # The engine must still produce the reference makespan bit-for-bit.
        assert referenced["makespan_identical"] is True

    def test_default_pairs_have_references(self):
        for name, scheme in BENCH_PAIRS:
            assert f"{name}/{scheme}" in REFERENCE

    def test_engine_selects_the_core_and_rides_in_the_report(self):
        report = run_bench(pairs=CHEAP[:1], repeat=1, engine="fast")
        assert report["engine"] == "fast"
        assert report["pairs"][0]["makespan"] > 0


class TestCompareEngines:
    def test_matrix_shape_and_bit_identity(self):
        report = compare_engines(pairs=CHEAP, repeat=1)
        assert report["mode"] == "compare-engines"
        assert report["engines"] == ["default", "fast"]
        assert report["baseline_engine"] == "default"
        assert set(report["aggregate_seconds"]) == {"default", "fast"}
        assert set(report["aggregate_speedup"]) == {"fast"}
        for row in report["pairs"]:
            default_entry = row["engines"]["default"]
            fast_entry = row["engines"]["fast"]
            assert "speedup" not in default_entry  # the baseline
            assert fast_entry["speedup"] > 0
            # The certified contract, enforced at bench time: both
            # engines produce the same makespan bit-for-bit.
            assert fast_entry["makespan"] == default_entry["makespan"]
            assert fast_entry["makespan_identical"] is True
        referenced = {
            row["pair"]: row for row in report["pairs"]
            if "reference_makespan_identical" in row
        }
        assert referenced["BFS-graph500/spawn"][
            "reference_makespan_identical"
        ] is True

    def test_rejects_fewer_than_two_engines(self):
        import pytest

        with pytest.raises(ValueError):
            compare_engines(pairs=CHEAP[:1], engines=("default",))


class TestCompareRegressions:
    REPORT = {
        "pairs": [
            {
                "pair": "a/spawn",
                "engines": {
                    "default": {"seconds": 1.0},
                    "fast": {"seconds": 2.0, "speedup": 0.5},
                },
            },
            {
                "pair": "b/spawn",
                "engines": {
                    "default": {"seconds": 1.0},
                    "fast": {"seconds": 0.8, "speedup": 1.25},
                },
            },
        ]
    }

    def test_flags_only_entries_below_threshold(self):
        regressed = compare_regressions(self.REPORT, 0.9)
        assert regressed == [
            {"pair": "a/spawn", "engine": "fast", "speedup": 0.5}
        ]

    def test_baseline_entries_never_regress(self):
        rows = compare_regressions(self.REPORT, 100.0)
        assert all(row["engine"] != "default" for row in rows)

    def test_empty_report_is_clean(self):
        assert compare_regressions({}, 1.0) == []


class TestRegressions:
    REPORT = {
        "pairs": [
            {"pair": "a/spawn", "speedup": 0.2},
            {"pair": "b/spawn", "speedup": 1.4},
            {"pair": "c/spawn", "seconds": 1.0},  # no reference recorded
        ]
    }

    def test_flags_only_pairs_below_threshold(self):
        regressed = regressions(self.REPORT, 0.5)
        assert [row["pair"] for row in regressed] == ["a/spawn"]

    def test_unreferenced_pairs_never_regress(self):
        assert regressions(self.REPORT, 100.0) != self.REPORT["pairs"]
        assert all(
            row["pair"] != "c/spawn"
            for row in regressions(self.REPORT, 100.0)
        )

    def test_empty_report_is_clean(self):
        assert regressions({}, DEFAULT_MIN_SPEEDUP) == []

    def test_default_threshold_is_loose_but_positive(self):
        # Host-variance tolerant: a pair must lose >4x vs. its reference
        # before the default gate fires.
        assert 0.0 < DEFAULT_MIN_SPEEDUP <= 0.5


class TestReport:
    def test_write_report_roundtrip(self, tmp_path):
        report = run_bench(pairs=CHEAP[:1], repeat=1)
        path = write_report(report, tmp_path / "BENCH_test.json")
        assert json.loads(path.read_text()) == report

    def test_default_output_path_is_dated(self):
        import datetime

        path = default_output_path(datetime.date(2026, 8, 6))
        assert path.name == "BENCH_20260806.json"
