"""Edge-case tests for derived statistics.

Covers the previously untested derived properties: the None-field
combinations of :class:`KernelRecord.queuing_latency` /
``launch_overhead`` and the ordering contract of
:meth:`SimStats.launch_cdf`, plus the newly surfaced ``peak_ccqs_depth``.
"""

import pytest

from repro.harness.runner import RunConfig, Runner
from repro.sim.stats import KernelRecord, SimStats


def record(**kwargs):
    defaults = dict(kernel_id=0, name="k", is_child=True, depth=1, num_ctas=4)
    defaults.update(kwargs)
    return KernelRecord(**defaults)


class TestKernelRecordEdgeCases:
    def test_all_timestamps_none(self):
        rec = record()
        assert rec.queuing_latency is None
        assert rec.launch_overhead is None

    def test_queuing_latency_needs_both_fields(self):
        assert record(arrival_time=10.0).queuing_latency is None
        assert record(first_dispatch_time=20.0).queuing_latency is None

    def test_launch_overhead_needs_both_fields(self):
        assert record(launch_call_time=5.0).launch_overhead is None
        assert record(arrival_time=9.0).launch_overhead is None

    def test_queuing_latency_value(self):
        rec = record(arrival_time=10.0, first_dispatch_time=35.5)
        assert rec.queuing_latency == pytest.approx(25.5)

    def test_launch_overhead_value(self):
        rec = record(launch_call_time=5.0, arrival_time=9.0)
        assert rec.launch_overhead == pytest.approx(4.0)

    def test_zero_latency_is_zero_not_none(self):
        rec = record(
            launch_call_time=7.0, arrival_time=7.0, first_dispatch_time=7.0
        )
        assert rec.launch_overhead == 0.0
        assert rec.queuing_latency == 0.0

    def test_completion_time_does_not_affect_derived(self):
        # completion_time is not an input to either property.
        rec = record(completion_time=100.0)
        assert rec.queuing_latency is None
        assert rec.launch_overhead is None


class TestLaunchCdf:
    def test_empty(self):
        assert SimStats().launch_cdf() == []

    def test_sorted_even_when_recorded_out_of_order(self):
        stats = SimStats()
        stats.launch_times = [30.0, 10.0, 20.0]
        cdf = stats.launch_cdf()
        assert cdf == [(10.0, 1), (20.0, 2), (30.0, 3)]

    def test_duplicate_times_keep_cumulative_count(self):
        stats = SimStats()
        stats.launch_times = [5.0, 5.0, 5.0]
        assert stats.launch_cdf() == [(5.0, 1), (5.0, 2), (5.0, 3)]

    def test_counts_are_strictly_increasing(self):
        stats = SimStats()
        stats.launch_times = [3.0, 1.0, 2.0, 1.0]
        counts = [c for _, c in stats.launch_cdf()]
        assert counts == list(range(1, 5))


class TestPeakCcqsDepth:
    def test_default_zero_and_in_summary(self):
        stats = SimStats()
        assert stats.peak_ccqs_depth == 0
        assert stats.summary()["peak_ccqs_depth"] == 0

    def test_reported_from_real_spawn_run(self):
        result = Runner().run(RunConfig(benchmark="GC-citation", scheme="spawn"))
        summary = result.summary()
        assert "peak_ccqs_depth" in summary
        # SPAWN launched children on this benchmark, so the CCQS was
        # non-empty at some point.
        assert summary["peak_ccqs_depth"] > 0

    def test_flat_run_has_zero_depth(self):
        result = Runner().run(RunConfig(benchmark="GC-citation", scheme="flat"))
        assert result.summary()["peak_ccqs_depth"] == 0
