"""Sharded-fleet tests: ring routing, failover evidence, fleet soak.

The load-bearing assertions mirror the single-service suite one level
up: the PR-5 ledger invariants must hold *fleet-wide* (per-shard ledgers
sum, the front door never loses a submission between shards), replies
must stay bit-identical to serial :meth:`Runner.run`, and a store
backend shared across shards must deduplicate work fleet-wide.
"""

import asyncio
from collections import Counter

import pytest

from repro.errors import FleetOverloaded, HarnessError, ServiceOverloaded
from repro.harness.runner import RunConfig, Runner
from repro.harness.store import open_store
from repro.obs.metrics import MetricsRegistry
from repro.service import (
    ConsistentHashRing,
    FleetConfig,
    FleetStats,
    ServiceConfig,
    ServiceFleet,
    ServiceStats,
    drive_service,
    fleet_runners,
    generate_traffic,
)
from repro.service.fleet import _sum_service_stats

FAST = "GC-citation"


def run_async(coroutine):
    return asyncio.run(coroutine)


class TestConsistentHashRing:
    def test_deterministic_and_in_range(self):
        ring = ConsistentHashRing(4)
        keys = [f"key-{i}" for i in range(200)]
        first = [ring.shard_for(key) for key in keys]
        second = [ring.shard_for(key) for key in keys]
        assert first == second
        assert set(first) <= set(range(4))

    def test_every_shard_gets_traffic(self):
        ring = ConsistentHashRing(4, virtual_nodes=64)
        hits = Counter(ring.shard_for(f"key-{i}") for i in range(1000))
        assert set(hits) == set(range(4))
        # Virtual nodes keep the split rough-balanced, not degenerate.
        assert min(hits.values()) > 1000 // (4 * 8)

    def test_preference_is_a_permutation(self):
        ring = ConsistentHashRing(5)
        for i in range(50):
            order = ring.preference(f"key-{i}")
            assert sorted(order) == list(range(5))
            assert order[0] == ring.shard_for(f"key-{i}")

    def test_single_shard_ring(self):
        ring = ConsistentHashRing(1)
        assert ring.shard_for("anything") == 0
        assert ring.preference("anything") == [0]

    def test_adding_a_shard_moves_few_keys(self):
        """The property that makes the hashing 'consistent'."""
        small, large = ConsistentHashRing(4), ConsistentHashRing(5)
        keys = [f"key-{i}" for i in range(1000)]
        moved = sum(
            1 for key in keys if small.shard_for(key) != large.shard_for(key)
        )
        # Naive modulo hashing would move ~80%; the ring moves ~1/5.
        assert moved < 450

    def test_canonical_key_is_stable_json(self):
        config = RunConfig(benchmark=FAST, scheme="spawn")
        text = ConsistentHashRing.canonical_key(config.key())
        assert text == ConsistentHashRing.canonical_key(config.key())
        other = RunConfig(benchmark=FAST, scheme="flat")
        assert text != ConsistentHashRing.canonical_key(other.key())

    def test_invalid_arguments(self):
        with pytest.raises(HarnessError):
            ConsistentHashRing(0)
        with pytest.raises(HarnessError):
            ConsistentHashRing(2, virtual_nodes=0)


class TestFleetConfig:
    def test_validation(self):
        with pytest.raises(HarnessError):
            FleetConfig(shards=0)
        with pytest.raises(HarnessError):
            FleetConfig(virtual_nodes=0)

    def test_runner_count_must_match(self):
        with pytest.raises(HarnessError):
            ServiceFleet([Runner()], config=FleetConfig(shards=2))


class TestFleetStatsModel:
    def test_summation_and_delegation(self):
        a = ServiceStats(submitted=3, completed=2, shed=1, cache_hits=2)
        b = ServiceStats(submitted=4, completed=4, peak_queue_depth=7)
        total = _sum_service_stats([a, b])
        assert total.submitted == 7
        assert total.completed == 6
        assert total.shed == 1
        assert total.cache_hits == 2
        assert total.peak_queue_depth == 7
        stats = FleetStats(shards=[a, b], aggregate=total, routed={0: 3, 1: 4})
        # Unknown attributes read through to the aggregate ledger.
        assert stats.completed == 6
        assert stats.lost == total.lost
        payload = stats.to_dict()
        assert payload["fleet"]["shards"] == 2
        assert payload["fleet"]["routed"] == {"0": 3, "1": 4}
        assert len(payload["per_shard"]) == 2


class TestRoutingAndFailover:
    def test_duplicates_route_to_the_same_shard(self):
        async def scenario():
            fleet = ServiceFleet(
                config=FleetConfig(shards=3, service=ServiceConfig(jobs=1)),
                metrics=MetricsRegistry(),
            )
            async with fleet:
                config = RunConfig(benchmark=FAST, scheme="spawn")
                jobs = [await fleet.submit(config) for _ in range(6)]
                await fleet.gather(jobs)
            return fleet.stats()

        stats = run_async(scenario())
        # All six submissions landed on one shard, so five coalesced.
        assert [part.submitted for part in stats.shards].count(6) == 1
        assert stats.coalesced == 5
        assert stats.failovers == 0

    def test_failover_when_home_shard_sheds(self):
        async def scenario():
            # Shard queues of size 0 shed instantly once anything queues;
            # deadline_ms tiny so predicted delay trips the controller.
            service_config = ServiceConfig(
                jobs=1, deadline_ms=0.0001, max_batch=1
            )
            fleet = ServiceFleet(
                config=FleetConfig(shards=2, service=service_config),
                metrics=MetricsRegistry(),
            )
            async with fleet:
                # Prime both shards' cost models so predictions exist.
                warm = [
                    await fleet.submit(
                        RunConfig(benchmark=FAST, scheme="flat")
                    )
                ]
                await fleet.gather(warm)
                results = []
                for i in range(8):
                    config = RunConfig(benchmark=FAST, scheme="spawn", seed=i + 1)
                    try:
                        results.append(await fleet.submit(config))
                    except ServiceOverloaded as exc:
                        results.append(exc)
                done = [job for job in results if not isinstance(job, Exception)]
                await fleet.gather(done)
            return fleet.stats(), results

        stats, results = run_async(scenario())
        overloads = [r for r in results if isinstance(r, Exception)]
        for exc in overloads:
            assert isinstance(exc, FleetOverloaded)
            assert isinstance(exc, ServiceOverloaded)  # drive_service compat
            assert exc.shard in (0, 1)
            assert set(exc.decisions) <= {0, 1}
        # Ledger stays consistent whatever mix of failover/shed happened.
        assert stats.lost == 0
        assert stats.fleet_shed == len(overloads)

    def test_no_failover_when_disabled(self):
        async def scenario():
            service_config = ServiceConfig(
                jobs=1, deadline_ms=0.0001, max_batch=1
            )
            fleet = ServiceFleet(
                config=FleetConfig(
                    shards=2, service=service_config, failover=False
                ),
                metrics=MetricsRegistry(),
            )
            async with fleet:
                warm = [
                    await fleet.submit(RunConfig(benchmark=FAST, scheme="flat"))
                ]
                await fleet.gather(warm)
                shed = 0
                jobs = []
                for i in range(8):
                    try:
                        jobs.append(
                            await fleet.submit(
                                RunConfig(
                                    benchmark=FAST, scheme="spawn", seed=i + 1
                                )
                            )
                        )
                    except FleetOverloaded as exc:
                        shed += 1
                        assert list(exc.decisions) == [exc.shard]
                await fleet.gather(jobs)
            return fleet.stats(), shed

        stats, shed = run_async(scenario())
        assert stats.failovers == 0
        assert stats.fleet_shed == shed


class TestFleetSoak:
    @pytest.mark.slow
    def test_500_request_soak_sqlite_store(self, tmp_path):
        """The acceptance soak: 2 shards, one shared sqlite:// store.

        Asserts the fleet-wide ledger invariants, zero lost jobs,
        bit-identical replies vs. serial Runner.run, and cross-shard
        dedup (a result computed by one shard is a store hit for the
        other, so unique simulations happen once fleet-wide).
        """
        url = f"sqlite://{tmp_path}/fleet.db"
        requests = generate_traffic(500, seed=7, seeds=(1, 2))
        metrics = MetricsRegistry()

        async def scenario():
            fleet = ServiceFleet(
                fleet_runners(2, store_url=url),
                config=FleetConfig(
                    shards=2, service=ServiceConfig(jobs=2, max_batch=8)
                ),
                metrics=metrics,
            )
            async with fleet:
                entries = await drive_service(fleet, requests)
            return entries, fleet.stats()

        entries, stats = run_async(scenario())
        assert len(entries) == 500
        # Fleet-wide PR-5 invariants, summed over per-shard ledgers.
        assert stats.lost == 0
        assert stats.submitted == 500
        assert (
            stats.submitted
            == stats.completed + stats.failed + stats.shed + stats.in_flight
        )
        assert stats.in_flight == 0
        assert stats.failed == 0
        per_shard_sum = _sum_service_stats(stats.shards)
        assert per_shard_sum.submitted == stats.aggregate.submitted
        assert per_shard_sum.completed == stats.aggregate.completed
        # Both shards actually took traffic through the front door.
        assert all(stats.routed[shard] > 0 for shard in (0, 1))
        assert sum(stats.routed.values()) + stats.fleet_shed == 500

        # Bit-identical replies vs. the serial runner.
        serial = Runner()
        for entry in entries:
            if entry.outcome != "completed":
                continue
            expected = serial.run(
                RunConfig(
                    benchmark=entry.benchmark,
                    scheme=entry.scheme,
                    seed=entry.seed,
                )
            )
            assert entry.makespan == expected.makespan

        # Cross-shard dedup: every unique config simulated at most once
        # fleet-wide — duplicates were answered by coalescing or by the
        # shared store, never recomputed.
        unique = len(
            {
                (entry.benchmark, entry.scheme, entry.seed)
                for entry in entries
                if entry.outcome == "completed"
            }
        )
        recomputed = stats.admitted + stats.inline
        assert recomputed <= unique
        assert stats.coalesced + stats.cache_hits >= 500 - unique
        store = open_store(url)
        try:
            assert store.stats().entries == unique
        finally:
            store.close()

    def test_fleet_replies_match_serial_runner(self, tmp_path):
        """Small-scale bit-identity check that always runs (not slow)."""
        url = f"sqlite://{tmp_path}/fleet.db"
        requests = generate_traffic(40, seed=3)

        async def scenario():
            fleet = ServiceFleet(
                fleet_runners(2, store_url=url),
                config=FleetConfig(shards=2, service=ServiceConfig(jobs=2)),
                metrics=MetricsRegistry(),
            )
            async with fleet:
                jobs = [
                    await fleet.submit(request.config(), seed=request.seed)
                    for request in requests
                ]
                results = await fleet.gather(jobs)
            return results, fleet.stats()

        results, stats = run_async(scenario())
        assert stats.lost == 0
        serial = Runner()
        for request, result in zip(requests, results):
            expected = serial.run(request.config())
            assert result.makespan == expected.makespan
            assert result.summary() == expected.summary()
