"""Tests for the parallel fan-out harness (plan/execute split)."""

import pytest

from repro.errors import HarnessError
from repro.harness.parallel import ParallelRunner, default_jobs
from repro.harness.replication import replicate, replication_plan
from repro.harness.runner import RunConfig, Runner
from repro.harness.schemes import DP_SCHEMES
from repro.harness.store import open_store
from repro.harness.sweep import offline_search, sweep_plan, threshold_sweep
from repro.workloads import get_benchmark

#: The two cheapest end-to-end benchmarks.
FAST = "GC-citation"
FAST2 = "MM-small"


class TestExpand:
    def test_plain_schemes_pass_through(self):
        pr = ParallelRunner(jobs=1)
        configs = [
            RunConfig(benchmark=FAST, scheme="flat"),
            RunConfig(benchmark=FAST, scheme="spawn"),
        ]
        assert pr.expand(configs) == configs

    def test_deduplicates_preserving_order(self):
        pr = ParallelRunner(jobs=1)
        a = RunConfig(benchmark=FAST, scheme="spawn")
        b = RunConfig(benchmark=FAST, scheme="flat")
        assert pr.expand([a, b, a]) == [a, b]

    def test_offline_expands_to_its_sweep(self):
        pr = ParallelRunner(jobs=1)
        expanded = pr.expand([RunConfig(benchmark=FAST, scheme="offline")])
        schemes = [config.scheme for config in expanded]
        thresholds = get_benchmark(FAST).sweep_thresholds
        assert schemes == ["flat"] + [f"threshold:{t}" for t in thresholds]

    def test_offline_overlap_with_explicit_flat_dedupes(self):
        pr = ParallelRunner(jobs=1)
        expanded = pr.expand(
            [
                RunConfig(benchmark=FAST, scheme="flat"),
                RunConfig(benchmark=FAST, scheme="offline"),
            ]
        )
        assert [c.scheme for c in expanded].count("flat") == 1


class TestRunMany:
    def test_empty_plan(self):
        assert ParallelRunner(jobs=2).run_many([]) == []

    def test_rejects_bad_jobs(self):
        with pytest.raises(HarnessError):
            ParallelRunner(jobs=2).run_many(
                [RunConfig(benchmark=FAST, scheme="flat")], jobs=0
            )

    def test_default_jobs_positive(self):
        assert default_jobs() >= 1
        assert ParallelRunner().jobs >= 1

    def test_parallel_matches_serial_for_all_schemes(self):
        """jobs=4 fan-out is bit-identical to the serial path: flat plus
        every DP scheme (including Offline-Search) on two benchmarks."""
        configs = [
            RunConfig(benchmark=name, scheme=scheme)
            for name in (FAST, FAST2)
            for scheme in ("flat",) + DP_SCHEMES
        ]
        parallel = ParallelRunner(Runner(), jobs=4)
        fanned = parallel.run_many(configs)

        serial_runner = Runner()
        for config, result in zip(configs, fanned):
            if config.scheme == "offline":
                _, expected = offline_search(
                    serial_runner, config.benchmark, seed=config.seed
                )
            else:
                expected = serial_runner.run(config)
            assert result.summary() == expected.summary(), config
            assert result.makespan == expected.makespan, config

    def test_results_merge_into_shared_runner_cache(self):
        runner = Runner()
        pr = ParallelRunner(runner, jobs=2)
        config = RunConfig(benchmark=FAST, scheme="spawn")
        [result] = pr.run_many([config, ])
        # The wrapped runner now answers from memory: same object back.
        assert runner.run(config) is result

    def test_jobs_one_runs_inline(self):
        runner = Runner()
        pr = ParallelRunner(runner, jobs=1)
        [result] = pr.run_many([RunConfig(benchmark=FAST, scheme="flat")])
        assert result.makespan > 0
        assert runner.cache_size() == 1

    def test_persists_to_store(self, tmp_path):
        runner = Runner(store=open_store(tmp_path))
        pr = ParallelRunner(runner, jobs=2)
        configs = [
            RunConfig(benchmark=FAST, scheme="flat"),
            RunConfig(benchmark=FAST, scheme="spawn"),
        ]
        pr.run_many(configs)
        assert runner.store.stats().entries == 2
        # A cold runner over the same store simulates nothing.
        cold = Runner(store=open_store(tmp_path))
        for config in configs:
            assert cold.cached(config) is not None


class TestPlanHelpers:
    def test_sweep_plan_contents(self):
        plan = sweep_plan(FAST)
        thresholds = get_benchmark(FAST).sweep_thresholds
        assert [c.scheme for c in plan] == ["flat"] + [
            f"threshold:{t}" for t in thresholds
        ]

    def test_threshold_sweep_parallel_matches_serial(self):
        serial = threshold_sweep(Runner(), FAST)
        parallel = threshold_sweep(Runner(), FAST, jobs=2)
        assert parallel == serial

    def test_replication_plan_contents(self):
        plan = replication_plan(FAST, schemes=("spawn",), seeds=(1, 2))
        assert [(c.scheme, c.seed) for c in plan] == [
            ("flat", 1),
            ("spawn", 1),
            ("flat", 2),
            ("spawn", 2),
        ]

    def test_replicate_parallel_matches_serial(self):
        serial = replicate(FAST, schemes=("spawn",), seeds=(1, 2))
        parallel = replicate(FAST, schemes=("spawn",), seeds=(1, 2), jobs=2)
        assert parallel.stats["spawn"].speedups == serial.stats["spawn"].speedups
