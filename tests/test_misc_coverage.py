"""Additional targeted tests rounding out module coverage."""

import numpy as np
import pytest

from repro.core.metrics import MetricsMonitor
from repro.errors import WorkloadError
from repro.harness.report import format_series
from repro.sim.config import small_debug_gpu
from repro.sim.engine import GPUSimulator, SimResult
from repro.sim.gmu import GMU
from repro.sim.instances import KernelInstance, KernelState
from repro.sim.kernel import KernelSpec
from repro.sim.stats import SimStats
from repro.workloads._traversal import TraversalCosts, build_round_kernels
from repro.workloads.graphs import citation_graph

from tests.conftest import make_flat_app


class TestTraversalBuilder:
    @pytest.fixture(scope="class")
    def graph(self):
        return citation_graph(num_vertices=400, edges_per_vertex=3, seed=9)

    def test_rejects_empty_rounds(self, graph):
        with pytest.raises(WorkloadError):
            build_round_kernels(
                "x", graph, [], dp=True, min_offload=8, cta_threads=32,
                costs=TraversalCosts(),
            )

    def test_skips_empty_round_arrays(self, graph):
        rounds = [np.array([0, 1, 2]), np.array([], dtype=np.int64), np.array([3])]
        app = build_round_kernels(
            "x", graph, rounds, dp=False, min_offload=8, cta_threads=32,
            costs=TraversalCosts(),
        )
        assert len(app.kernels) == 2

    def test_flat_items_independent_of_variant(self, graph):
        rounds = [np.arange(100, dtype=np.int64)]
        flat = build_round_kernels(
            "x", graph, rounds, dp=False, min_offload=8, cta_threads=32,
            costs=TraversalCosts(),
        )
        dp = build_round_kernels(
            "x", graph, rounds, dp=True, min_offload=8, cta_threads=32,
            costs=TraversalCosts(),
        )
        assert flat.flat_items == dp.flat_items

    def test_min_offload_controls_request_count(self, graph):
        rounds = [np.arange(graph.num_vertices, dtype=np.int64)]
        loose = build_round_kernels(
            "x", graph, rounds, dp=True, min_offload=2, cta_threads=32,
            costs=TraversalCosts(),
        )
        strict = build_round_kernels(
            "x", graph, rounds, dp=True, min_offload=50, cta_threads=32,
            costs=TraversalCosts(),
        )
        assert loose.kernels[0].num_child_requests() > strict.kernels[
            0
        ].num_child_requests()


class TestGMUSuccession:
    def test_next_kernel_in_stream_becomes_head_after_suspension(self):
        gmu = GMU(small_debug_gpu())
        spec = KernelSpec(
            name="k", threads_per_cta=32, thread_items=np.ones(32, dtype=np.int64)
        )
        first = KernelInstance(0, spec, stream_id=5, is_child=True)
        second = KernelInstance(1, spec, stream_id=5, is_child=True)
        gmu.submit(first)
        gmu.submit(second)
        first.take_next_cta_index()
        gmu.on_kernel_suspended(first)
        assert second.state is KernelState.EXECUTING


class TestMetricsPeaks:
    def test_peak_n_tracks_high_watermark(self):
        monitor = MetricsMonitor(window_cycles=128)
        monitor.on_ctas_admitted(5)
        monitor.on_cta_started(0.0)
        monitor.on_cta_finished(10.0, exec_time=10.0, items_per_thread=1)
        assert monitor.peak_n == 5
        monitor.on_ctas_admitted(2)
        assert monitor.peak_n == 6
        assert monitor.n == 6


class TestStatsFinalization:
    def test_finalize_is_idempotent_for_occupancy(self):
        stats = SimStats()
        stats.set_capacity(10, 10, 10)
        stats.record_state(0.0, parent_ctas=1, child_ctas=0, warps=10, regs=0, shmem=0)
        stats.finalize(100.0)
        first = stats.smx_occupancy
        stats.finalize(100.0)
        assert stats.smx_occupancy == first


class TestSimResult:
    def test_repr_mentions_app_and_policy(self):
        result = GPUSimulator(config=small_debug_gpu()).run(make_flat_app())
        text = repr(result)
        assert "flat-app" in text
        assert "makespan" in text

    def test_result_is_simresult(self):
        result = GPUSimulator(config=small_debug_gpu()).run(make_flat_app())
        assert isinstance(result, SimResult)


class TestReportSeries:
    def test_format_series_includes_name_and_tail(self):
        text = format_series("cdf", [(1.0, 1), (2.0, 2), (3.0, 3)])
        assert "series: cdf" in text
        assert "3" in text


class TestL2AccountingConsistency:
    def test_stats_l2_matches_memory_counters(self):
        sim = GPUSimulator(config=small_debug_gpu())
        result = sim.run(make_flat_app())
        assert result.stats.l2_hits == sim.memory.l2.hits
        assert result.stats.l2_misses == sim.memory.l2.misses
        assert result.stats.l2_hits + result.stats.l2_misses > 0
