"""Tests for the JSONL and Chrome trace exporters (repro.obs.export)."""

import io
import json
import os

import pytest

from repro.harness import schemes as sch
from repro.obs.audit import DecisionAudit
from repro.obs.export import (
    PID_GMU,
    PID_HARNESS,
    PID_LAUNCH_UNIT,
    PID_SERVICE,
    PID_SMX,
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_json_atomic,
    write_jsonl,
)
from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    HARNESS_RETRY,
    HWQ_BIND,
    LAUNCH_BATCH_SUBMIT,
    LAUNCH_DECISION,
    SERVICE_ADMIT,
    SERVICE_BATCH,
    SERVICE_CACHE_HIT,
    SERVICE_COMPLETE,
    SERVICE_QUARANTINE,
    SERVICE_SHED,
    SERVICE_SUBMIT,
    TraceEvent,
    Tracer,
)
from repro.sim.engine import GPUSimulator
from repro.workloads.base import get_benchmark


def traced_run(benchmark="GC-citation", scheme="spawn"):
    bench = get_benchmark(benchmark)
    tracer = Tracer()
    sim = GPUSimulator(
        policy=sch.make_policy(sch.SchemeSpec.parse(scheme), bench), tracer=tracer
    )
    sim.run(bench.dp(1))
    return tracer.events()


class TestJsonl:
    def test_round_trip_preserves_events(self, tmp_path):
        events = traced_run()
        path = str(tmp_path / "trace.jsonl")
        count = write_jsonl(events, path)
        assert count == len(events)
        loaded = read_jsonl(path)
        assert len(loaded) == len(events)
        for orig, back in zip(events, loaded):
            assert back.ts == orig.ts
            assert back.kind == orig.kind
            assert back.args == orig.args

    def test_file_object_and_blank_lines(self):
        events = [TraceEvent(1.0, CTA_DISPATCH, {"kernel_id": 0, "cta_index": 0})]
        buf = io.StringIO()
        write_jsonl(events, buf)
        buf.write("\n")  # trailing blank line must be tolerated
        buf.seek(0)
        loaded = read_jsonl(buf)
        assert len(loaded) == 1
        assert loaded[0].args == {"kernel_id": 0, "cta_index": 0}

    def test_each_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(traced_run()[:50], path)
        with open(path) as fh:
            for line in fh:
                obj = json.loads(line)
                assert "ts" in obj and "kind" in obj

    def test_audit_accepts_round_tripped_events(self, tmp_path):
        events = traced_run()
        path = str(tmp_path / "t.jsonl")
        write_jsonl(events, path)
        direct = DecisionAudit.from_events(events).stats()
        reloaded = DecisionAudit.from_events(read_jsonl(path)).stats()
        assert direct == reloaded


class TestChromeTrace:
    def test_document_structure(self):
        doc = chrome_trace(traced_run())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)

    def test_per_smx_tracks_named(self):
        doc = chrome_trace(traced_run())
        names = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == PID_SMX
        ]
        labels = {e["args"]["name"] for e in names}
        assert len(labels) > 1
        assert all(label.startswith("SMX ") for label in labels)

    def test_process_metadata_for_all_components(self):
        doc = chrome_trace(traced_run())
        procs = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs[PID_SMX] == "SMXs"
        assert procs[PID_GMU] == "GMU"
        assert procs[PID_LAUNCH_UNIT] == "Launch unit"

    def test_cta_slices_match_dispatch_finish_pairs(self):
        events = traced_run()
        doc = chrome_trace(events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        finishes = [e for e in events if e.kind == CTA_FINISH]
        assert len(slices) == len(finishes) > 0
        for s in slices:
            assert s["dur"] >= 0
            assert s["pid"] == PID_SMX
            assert s["cat"] in ("parent", "child")

    def test_counters_emitted_for_gmu_and_launch_unit(self):
        events = traced_run()
        doc = chrome_trace(events)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        gmu = [e for e in counters if e["pid"] == PID_GMU]
        lu = [e for e in counters if e["pid"] == PID_LAUNCH_UNIT]
        assert any(e.kind == HWQ_BIND for e in events) and gmu
        assert any(e.kind == LAUNCH_BATCH_SUBMIT for e in events) and lu

    def test_decisions_are_instant_markers_with_payload(self):
        events = traced_run()
        doc = chrome_trace(events)
        markers = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        decisions = [e for e in events if e.kind == LAUNCH_DECISION]
        assert len(markers) == len(decisions) > 0
        predicted = [m for m in markers if "t_child" in m["args"]]
        assert predicted, "spawn markers should carry the prediction payload"
        assert all(m["name"].startswith("decision:") for m in markers)

    def test_unmatched_dispatch_is_skipped(self):
        # A finish without its dispatch (ring-buffer truncation) is dropped
        # rather than crashing or producing a negative-duration slice.
        finish_only = [
            TraceEvent(10.0, CTA_FINISH, {"kernel_id": 1, "cta_index": 0})
        ]
        doc = chrome_trace(finish_only)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_write_chrome_trace_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(traced_run(), path)
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == count > 0


def _service_event(ts, kind, **args):
    return TraceEvent(ts, kind, {"benchmark": "MM-small", "scheme": "spawn", **args})


class TestServiceTrack:
    """service.* / harness.* wall-clock events get their own tracks."""

    def _batched_request(self, base=1000.0):
        return [
            _service_event(base + 0.0, SERVICE_SUBMIT, seed=1),
            _service_event(base + 0.0, SERVICE_ADMIT, seed=1),
            _service_event(base + 0.5, SERVICE_COMPLETE, seed=1),
        ]

    def test_admitted_request_becomes_one_slice(self):
        doc = chrome_trace(self._batched_request())
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        s = slices[0]
        assert s["pid"] == PID_SERVICE
        assert s["tid"] == 1  # first request lane
        assert s["name"] == "batch:MM-small/spawn"
        assert s["ts"] == 0  # rebased to the wall epoch
        assert s["dur"] == pytest.approx(0.5e6)  # seconds -> microseconds

    def test_concurrent_requests_spread_over_lanes_and_reuse_them(self):
        events = [
            _service_event(1000.0, SERVICE_SUBMIT, seed=1),
            _service_event(1000.0, SERVICE_ADMIT, seed=1),
            _service_event(1000.1, SERVICE_SUBMIT, seed=2, scheme="flat"),
            _service_event(1000.1, SERVICE_ADMIT, seed=2, scheme="flat"),
            _service_event(1000.5, SERVICE_COMPLETE, seed=1),
            _service_event(1000.6, SERVICE_COMPLETE, seed=2, scheme="flat"),
            # Third request arrives after lane 1 freed: reuses it.
            _service_event(1001.0, SERVICE_SUBMIT, seed=3),
            _service_event(1001.0, SERVICE_ADMIT, seed=3),
            _service_event(1001.2, SERVICE_COMPLETE, seed=3),
        ]
        doc = chrome_trace(events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert [s["tid"] for s in slices] == [1, 2, 1]
        lane_names = {
            e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name"
            and e["pid"] == PID_SERVICE
        }
        assert lane_names == {"batches", "request lane 1", "request lane 2"}

    def test_cache_hit_and_shed_close_the_submit(self):
        events = [
            _service_event(1000.0, SERVICE_SUBMIT, seed=1),
            _service_event(1000.001, SERVICE_CACHE_HIT, seed=1),
            _service_event(1000.1, SERVICE_SUBMIT, seed=2),
            _service_event(1000.1, SERVICE_SHED, seed=2),
        ]
        doc = chrome_trace(events)
        names = [e["name"] for e in doc["traceEvents"] if e["ph"] == "X"]
        assert names == [
            "cache_hit:MM-small/spawn", "shed:MM-small/spawn",
        ]

    def test_quarantine_renames_the_slice(self):
        events = [
            _service_event(1000.0, SERVICE_SUBMIT, seed=1),
            _service_event(1000.0, SERVICE_ADMIT, seed=1),
            _service_event(1000.3, SERVICE_QUARANTINE, seed=1),
        ]
        doc = chrome_trace(events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert slices[0]["name"] == "quarantine:MM-small/spawn"

    def test_batch_dispatch_is_backdated_on_tid_zero(self):
        events = self._batched_request() + [
            _service_event(1000.5, SERVICE_BATCH, size=3, seconds=0.4),
        ]
        doc = chrome_trace(events)
        batch = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["tid"] == 0 and e["pid"] == PID_SERVICE
        ]
        assert len(batch) == 1
        assert batch[0]["name"] == "batch[3]"
        # The batch event fires at completion; the slice starts earlier.
        assert batch[0]["ts"] == pytest.approx(0.1e6)
        assert batch[0]["dur"] == pytest.approx(0.4e6)

    def test_harness_events_are_instants_on_their_own_track(self):
        events = self._batched_request() + [
            TraceEvent(1000.2, HARNESS_RETRY, {"attempt": 2}),
        ]
        doc = chrome_trace(events)
        instants = [
            e for e in doc["traceEvents"]
            if e["ph"] == "i" and e["pid"] == PID_HARNESS
        ]
        assert len(instants) == 1
        assert instants[0]["name"] == "retry"
        procs = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs[PID_HARNESS] == "Harness"
        assert procs[PID_SERVICE] == "Service"

    def test_no_service_metadata_without_service_events(self):
        doc = chrome_trace(traced_run())
        pids = {
            e["pid"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert PID_SERVICE not in pids
        assert PID_HARNESS not in pids

    def test_sim_and_wall_events_coexist_and_serialize(self):
        events = traced_run()[:100] + self._batched_request()
        doc = chrome_trace(events)
        json.dumps(doc)  # whole document stays JSON-serializable
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert PID_SERVICE in pids
        assert PID_SMX in pids

    def test_live_service_run_renders_slices(self):
        # End-to-end: a real traced service drive produces service slices.
        import asyncio

        from repro.harness.runner import Runner
        from repro.service import ServiceConfig, SimulationService, TrafficRequest
        from repro.service.ledger import drive_service

        tracer = Tracer()

        async def go():
            service = SimulationService(
                Runner(), config=ServiceConfig(jobs=2), tracer=tracer
            )
            requests = [
                TrafficRequest(benchmark="MM-small", scheme="flat", seed=s)
                for s in (1, 2, 1)
            ]
            async with service:
                await drive_service(service, requests)

        asyncio.run(go())
        doc = chrome_trace(tracer.events())
        service_slices = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e["pid"] == PID_SERVICE
        ]
        assert service_slices
        assert all(s["dur"] >= 0 for s in service_slices)
        json.dumps(doc)


class TestWriteJsonAtomic:
    """``repro serve --stats-json`` must never leave a torn report: the
    payload is staged in a same-directory temp file and published with
    one ``os.replace`` (ISSUE 10 satellite)."""

    def test_writes_sorted_parseable_json(self, tmp_path):
        path = tmp_path / "stats.json"
        write_json_atomic({"b": 1, "a": {"autotune": True}}, path)
        text = path.read_text()
        assert json.loads(text) == {"b": 1, "a": {"autotune": True}}
        assert text.index('"a"') < text.index('"b"')  # sort_keys
        assert text.endswith("\n")
        assert list(tmp_path.iterdir()) == [path]  # no temp droppings

    def test_overwrites_previous_report(self, tmp_path):
        path = tmp_path / "stats.json"
        write_json_atomic({"version": 1}, path)
        write_json_atomic({"version": 2}, path)
        assert json.loads(path.read_text()) == {"version": 2}

    def test_kill_mid_write_leaves_previous_report_intact(
        self, tmp_path, monkeypatch
    ):
        """A kill while the temp file is being written (simulated as
        KeyboardInterrupt after a partial write) must leave the
        published path untouched and clean up the temp file."""
        path = tmp_path / "stats.json"
        write_json_atomic({"version": 1}, path)
        real_fdopen = os.fdopen

        class DiesMidWrite:
            def __init__(self, handle):
                self._handle = handle

            def __enter__(self):
                return self

            def __exit__(self, *exc):
                self._handle.close()

            def write(self, text):
                self._handle.write(text[: len(text) // 2])
                raise KeyboardInterrupt("killed mid-write")

        monkeypatch.setattr(
            "repro.obs.export.os.fdopen",
            lambda fd, *args, **kwargs: DiesMidWrite(
                real_fdopen(fd, *args, **kwargs)
            ),
        )
        with pytest.raises(KeyboardInterrupt):
            write_json_atomic({"version": 2}, path)
        assert json.loads(path.read_text()) == {"version": 1}
        assert list(tmp_path.iterdir()) == [path]

    def test_failed_publish_cleans_up_the_temp_file(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "stats.json"
        write_json_atomic({"version": 1}, path)

        def refuse(src, dst):
            raise OSError("injected replace failure")

        monkeypatch.setattr("repro.obs.export.os.replace", refuse)
        with pytest.raises(OSError):
            write_json_atomic({"version": 2}, path)
        assert json.loads(path.read_text()) == {"version": 1}
        assert list(tmp_path.iterdir()) == [path]
