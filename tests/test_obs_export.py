"""Tests for the JSONL and Chrome trace exporters (repro.obs.export)."""

import io
import json

from repro.harness import schemes as sch
from repro.obs.audit import DecisionAudit
from repro.obs.export import (
    PID_GMU,
    PID_LAUNCH_UNIT,
    PID_SMX,
    chrome_trace,
    read_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.tracer import (
    CTA_DISPATCH,
    CTA_FINISH,
    HWQ_BIND,
    LAUNCH_BATCH_SUBMIT,
    LAUNCH_DECISION,
    TraceEvent,
    Tracer,
)
from repro.sim.engine import GPUSimulator
from repro.workloads.base import get_benchmark


def traced_run(benchmark="GC-citation", scheme="spawn"):
    bench = get_benchmark(benchmark)
    tracer = Tracer()
    sim = GPUSimulator(
        policy=sch.make_policy(sch.SchemeSpec.parse(scheme), bench), tracer=tracer
    )
    sim.run(bench.dp(1))
    return tracer.events()


class TestJsonl:
    def test_round_trip_preserves_events(self, tmp_path):
        events = traced_run()
        path = str(tmp_path / "trace.jsonl")
        count = write_jsonl(events, path)
        assert count == len(events)
        loaded = read_jsonl(path)
        assert len(loaded) == len(events)
        for orig, back in zip(events, loaded):
            assert back.ts == orig.ts
            assert back.kind == orig.kind
            assert back.args == orig.args

    def test_file_object_and_blank_lines(self):
        events = [TraceEvent(1.0, CTA_DISPATCH, {"kernel_id": 0, "cta_index": 0})]
        buf = io.StringIO()
        write_jsonl(events, buf)
        buf.write("\n")  # trailing blank line must be tolerated
        buf.seek(0)
        loaded = read_jsonl(buf)
        assert len(loaded) == 1
        assert loaded[0].args == {"kernel_id": 0, "cta_index": 0}

    def test_each_line_is_valid_json(self, tmp_path):
        path = str(tmp_path / "t.jsonl")
        write_jsonl(traced_run()[:50], path)
        with open(path) as fh:
            for line in fh:
                obj = json.loads(line)
                assert "ts" in obj and "kind" in obj

    def test_audit_accepts_round_tripped_events(self, tmp_path):
        events = traced_run()
        path = str(tmp_path / "t.jsonl")
        write_jsonl(events, path)
        direct = DecisionAudit.from_events(events).stats()
        reloaded = DecisionAudit.from_events(read_jsonl(path)).stats()
        assert direct == reloaded


class TestChromeTrace:
    def test_document_structure(self):
        doc = chrome_trace(traced_run())
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        assert isinstance(doc["traceEvents"], list)

    def test_per_smx_tracks_named(self):
        doc = chrome_trace(traced_run())
        names = [
            e
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "thread_name" and e["pid"] == PID_SMX
        ]
        labels = {e["args"]["name"] for e in names}
        assert len(labels) > 1
        assert all(label.startswith("SMX ") for label in labels)

    def test_process_metadata_for_all_components(self):
        doc = chrome_trace(traced_run())
        procs = {
            e["pid"]: e["args"]["name"]
            for e in doc["traceEvents"]
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert procs[PID_SMX] == "SMXs"
        assert procs[PID_GMU] == "GMU"
        assert procs[PID_LAUNCH_UNIT] == "Launch unit"

    def test_cta_slices_match_dispatch_finish_pairs(self):
        events = traced_run()
        doc = chrome_trace(events)
        slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        finishes = [e for e in events if e.kind == CTA_FINISH]
        assert len(slices) == len(finishes) > 0
        for s in slices:
            assert s["dur"] >= 0
            assert s["pid"] == PID_SMX
            assert s["cat"] in ("parent", "child")

    def test_counters_emitted_for_gmu_and_launch_unit(self):
        events = traced_run()
        doc = chrome_trace(events)
        counters = [e for e in doc["traceEvents"] if e["ph"] == "C"]
        gmu = [e for e in counters if e["pid"] == PID_GMU]
        lu = [e for e in counters if e["pid"] == PID_LAUNCH_UNIT]
        assert any(e.kind == HWQ_BIND for e in events) and gmu
        assert any(e.kind == LAUNCH_BATCH_SUBMIT for e in events) and lu

    def test_decisions_are_instant_markers_with_payload(self):
        events = traced_run()
        doc = chrome_trace(events)
        markers = [e for e in doc["traceEvents"] if e["ph"] == "i"]
        decisions = [e for e in events if e.kind == LAUNCH_DECISION]
        assert len(markers) == len(decisions) > 0
        predicted = [m for m in markers if "t_child" in m["args"]]
        assert predicted, "spawn markers should carry the prediction payload"
        assert all(m["name"].startswith("decision:") for m in markers)

    def test_unmatched_dispatch_is_skipped(self):
        # A finish without its dispatch (ring-buffer truncation) is dropped
        # rather than crashing or producing a negative-duration slice.
        finish_only = [
            TraceEvent(10.0, CTA_FINISH, {"kernel_id": 1, "cta_index": 0})
        ]
        doc = chrome_trace(finish_only)
        assert [e for e in doc["traceEvents"] if e["ph"] == "X"] == []

    def test_write_chrome_trace_valid_json(self, tmp_path):
        path = str(tmp_path / "trace.json")
        count = write_chrome_trace(traced_run(), path)
        with open(path) as fh:
            doc = json.load(fh)
        assert len(doc["traceEvents"]) == count > 0
