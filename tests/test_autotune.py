"""Convergence suite for the online autotuner (ISSUE 10).

The contract under test: :mod:`repro.service.autotune` closes the loop
the paper left offline.  Successive halving over exactly the
Offline-Search sweep grid must be

* **on-grid** — every proposal is a grid arm, nothing else ever runs;
* **deterministic** — the whole trajectory is a pure function of
  ``(arms, seed, observation sequence)``; the seed only permutes the
  exploration order and never changes the survivor;
* **bounded** — a full halving takes exactly ``ceil(log2(arms))``
  elimination rounds, and the per-round incumbent cost is monotone
  non-increasing under deterministic per-arm costs;
* **correct** — the survivor is the argmin of the cost table
  (grid-order tie-break), which for the makespan objective *is* the
  Offline-Search winner;

and the service integration must keep every ledger invariant intact
while tuning: seeded traffic converges to the Offline-Search-best arm
on both engines, converged steady-state results are bit-identical to a
serial :meth:`Runner.run`, and neither worker kills nor a flaky store
backend can lose a request (``lost == 0``,
``submitted == completed + failed + shed + in_flight``).

Cost tables with ``exact=True`` draw integer-valued floats so arm means
are exact (sums of integers below 2**53 and the final division are both
representable), keeping the argmin/monotonicity properties free of
float-accumulation noise — just as the integral makespan objective is.
"""

from __future__ import annotations

import asyncio
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HarnessError
from repro.harness.faults import FaultPlan, FlakyStore
from repro.harness.runner import RunConfig, Runner
from repro.harness.store import open_store
from repro.harness.sweep import offline_search
from repro.service import (
    FleetConfig,
    ServiceConfig,
    ServiceFleet,
    SimulationService,
    generate_traffic,
)
from repro.service.autotune import (
    AGGREGATE_FAMILY,
    CONSOLIDATE_BATCH_GRID,
    CONSOLIDATE_FAMILY,
    THRESHOLD_FAMILY,
    AutoTuner,
    SuccessiveHalvingTuner,
    arm_grid,
    family_of,
    merge_autotune_snapshots,
)
from repro.workloads.base import get_benchmark
from tests.strategies import arm_schedules, observation_sequences, sweep_grids

BENCH = "MM-small"  # smallest threshold grid (5 arms) -> fastest soaks
PAIR = f"{BENCH}/{THRESHOLD_FAMILY}"


def drive_tuner(tuner, costs):
    """Pull ``tuner.propose()`` against a deterministic cost table until
    convergence; returns the pull sequence (the arm of each pull)."""
    pulls = []
    limit = 16 * len(tuner.arms) + 16
    while not tuner.converged:
        arm = tuner.propose()
        tuner.observe(arm, costs[arm])
        pulls.append(arm)
        assert len(pulls) <= limit, "halving failed to terminate"
    return pulls


def assert_ledger_invariants(stats):
    assert stats.lost == 0
    assert stats.submitted == (
        stats.completed + stats.failed + stats.shed + stats.in_flight
    )


# ----------------------------------------------------------------------
# Families and grids
# ----------------------------------------------------------------------
class TestFamiliesAndGrids:
    @pytest.mark.parametrize(
        "scheme, family",
        [
            ("baseline-dp", THRESHOLD_FAMILY),
            ("spawn", THRESHOLD_FAMILY),
            ("dtbl", THRESHOLD_FAMILY),
            ("threshold:64", THRESHOLD_FAMILY),
            ("consolidate", CONSOLIDATE_FAMILY),
            ("consolidate:8", CONSOLIDATE_FAMILY),
            ("aggregate:warp", AGGREGATE_FAMILY),
            ("aggregate:grid", AGGREGATE_FAMILY),
        ],
    )
    def test_tunable_schemes_map_to_their_family(self, scheme, family):
        assert family_of(scheme) == family

    @pytest.mark.parametrize("scheme", ["flat", "offline", "acs"])
    def test_untunable_schemes_have_no_family(self, scheme):
        assert family_of(scheme) is None

    def test_threshold_grid_is_the_offline_search_sweep(self):
        grid = arm_grid(BENCH, THRESHOLD_FAMILY)
        sweep = get_benchmark(BENCH).sweep_thresholds
        assert grid == tuple(f"threshold:{t}" for t in sweep)

    def test_consolidate_and_aggregate_grids(self):
        assert arm_grid(BENCH, CONSOLIDATE_FAMILY) == tuple(
            f"consolidate:{b}" for b in CONSOLIDATE_BATCH_GRID
        )
        assert arm_grid(BENCH, AGGREGATE_FAMILY) == (
            "aggregate:warp", "aggregate:block", "aggregate:grid",
        )

    def test_unknown_family_raises(self):
        with pytest.raises(HarnessError):
            arm_grid(BENCH, "voltage")


# ----------------------------------------------------------------------
# Tuner construction and bookkeeping
# ----------------------------------------------------------------------
class TestTunerValidation:
    def test_rejects_empty_and_duplicate_grids(self):
        with pytest.raises(HarnessError):
            SuccessiveHalvingTuner(())
        with pytest.raises(HarnessError):
            SuccessiveHalvingTuner(("a", "b", "a"))

    def test_rejects_bad_pulls_per_round(self):
        with pytest.raises(HarnessError):
            SuccessiveHalvingTuner(("a", "b"), pulls_per_round=0)
        with pytest.raises(HarnessError):
            AutoTuner(pulls_per_round=0)

    def test_rejects_negative_cost_and_unknown_arm(self):
        tuner = SuccessiveHalvingTuner(("a", "b"))
        with pytest.raises(HarnessError):
            tuner.observe("a", -1.0)
        with pytest.raises(HarnessError):
            tuner.observe("z", 1.0)

    def test_single_arm_is_born_converged(self):
        tuner = SuccessiveHalvingTuner(("only",))
        assert tuner.converged
        assert tuner.rounds_total == 0
        assert tuner.propose() == "only"
        # Observations still keep the ledger (cache hits arrive forever).
        tuner.observe("only", 3.0)
        assert tuner.incumbent() == ("only", 3.0)

    def test_eliminated_arm_is_recorded_but_not_resurrected(self):
        tuner = SuccessiveHalvingTuner(("a", "b", "c", "d"), seed=0)
        for arm, cost in [("a", 1.0), ("b", 2.0), ("c", 3.0), ("d", 4.0)]:
            tuner.observe(arm, cost)
        assert tuner.round == 1
        (gone,) = [arm for arm in ("c", "d") if arm not in tuner.alive][:1]
        before = tuner.alive
        tuner.observe(gone, 0.0)  # in-flight completion after the cut
        assert tuner.alive == before
        assert tuner.state(gone).pulls == 2

    def test_regret_estimate_shrinks_toward_zero_once_converged(self):
        costs = {"a": 1.0, "b": 5.0}
        tuner = SuccessiveHalvingTuner(tuple(costs), seed=1)
        drive_tuner(tuner, costs)
        first = tuner.regret_estimate()
        for _ in range(50):  # steady state: every pull is the incumbent
            tuner.observe(tuner.propose(), costs[tuner.propose()])
        assert tuner.regret_estimate() < first


# ----------------------------------------------------------------------
# The four pinned properties
# ----------------------------------------------------------------------
@given(arm_schedules())
def test_proposals_never_leave_the_grid(schedule):
    arms, seed, costs = schedule
    tuner = SuccessiveHalvingTuner(arms, seed=seed)
    for arm in drive_tuner(tuner, costs):
        assert arm in arms
    # Converged: the proposal is the survivor, forever.
    assert tuner.propose() in arms
    assert tuner.propose() == tuner.alive[0]


@given(arm_schedules())
def test_halving_terminates_in_log2_rounds_with_minimal_pulls(schedule):
    arms, seed, costs = schedule
    tuner = SuccessiveHalvingTuner(arms, seed=seed)
    pulls = drive_tuner(tuner, costs)
    expected_rounds = math.ceil(math.log2(len(arms))) if len(arms) > 1 else 0
    assert tuner.round == expected_rounds == tuner.rounds_total
    assert [summary.round for summary in tuner.history] == list(
        range(1, expected_rounds + 1)
    )
    # Driven by propose(), each round costs exactly one fresh pull per
    # alive arm: n + ceil(n/2) + ceil(ceil(n/2)/2) + ... pulls in total.
    expected_pulls, alive = 0, len(arms)
    while alive > 1:
        expected_pulls += alive
        alive = math.ceil(alive / 2)
    assert len(pulls) == expected_pulls


@given(arm_schedules(exact=True))
def test_survivor_is_the_argmin_of_the_cost_table(schedule):
    arms, seed, costs = schedule
    tuner = SuccessiveHalvingTuner(arms, seed=seed)
    drive_tuner(tuner, costs)
    best = min(arms, key=lambda arm: (costs[arm], arms.index(arm)))
    assert tuner.alive == (best,)
    if len(arms) > 1:  # a one-arm grid is born converged, unobserved
        assert tuner.incumbent() == (best, costs[best])


@given(arm_schedules(exact=True))
def test_incumbent_cost_is_monotone_non_increasing_per_round(schedule):
    arms, seed, costs = schedule
    tuner = SuccessiveHalvingTuner(arms, seed=seed)
    drive_tuner(tuner, costs)
    trajectory = [summary.incumbent_cost for summary in tuner.history]
    assert all(b <= a for a, b in zip(trajectory, trajectory[1:]))


@given(arm_schedules(exact=True), st.integers(min_value=0, max_value=1 << 16))
def test_seed_permutes_exploration_but_never_the_survivor(schedule, other_seed):
    arms, seed, costs = schedule
    first = SuccessiveHalvingTuner(arms, seed=seed)
    second = SuccessiveHalvingTuner(arms, seed=other_seed)
    assert set(first.alive) == set(second.alive) == set(arms)
    drive_tuner(first, costs)
    drive_tuner(second, costs)
    assert first.alive == second.alive


@given(sweep_grids(), st.integers(min_value=0, max_value=1 << 16), st.data())
def test_tuner_is_a_pure_function_of_seed_and_observations(grid, seed, data):
    sequence = data.draw(observation_sequences(grid))
    first = SuccessiveHalvingTuner(grid, seed=seed)
    second = SuccessiveHalvingTuner(grid, seed=seed)
    for arm, cost in sequence:
        first.observe(arm, cost)
    for arm, cost in sequence:
        second.observe(arm, cost)
    assert first.alive == second.alive
    assert first.history == second.history
    assert first.snapshot() == second.snapshot()


# ----------------------------------------------------------------------
# AutoTuner: the service-facing façade
# ----------------------------------------------------------------------
class TestAutoTuner:
    def test_untunable_schemes_pass_through_untouched(self):
        tuner = AutoTuner()
        for scheme in ("flat", "offline", "acs"):
            config = RunConfig(benchmark=BENCH, scheme=scheme)
            assert tuner.rewrite(config) is config
        assert tuner.snapshot() == {}

    def test_rewrite_proposes_a_grid_arm_and_is_stable_between_observations(self):
        tuner = AutoTuner()
        config = RunConfig(benchmark=BENCH, scheme="spawn")
        first = tuner.rewrite(config)
        assert first.scheme in arm_grid(BENCH, THRESHOLD_FAMILY)
        # No observation in between -> the same proposal, so concurrent
        # duplicates coalesce onto one simulation.
        assert tuner.rewrite(config).scheme == first.scheme

    def test_observe_routes_only_to_known_pairs_and_grid_arms(self):
        tuner = AutoTuner()
        # Pair never proposed: ignored, no tuner springs into being.
        tuner.observe(RunConfig(benchmark=BENCH, scheme="spawn"), makespan=1.0)
        assert tuner.snapshot() == {}
        proposed = tuner.rewrite(RunConfig(benchmark=BENCH, scheme="spawn"))
        # Non-grid scheme of a known pair: ignored ("spawn" itself is not
        # an arm); costless completions are ignored too.
        tuner.observe(RunConfig(benchmark=BENCH, scheme="spawn"), makespan=1.0)
        tuner.observe(proposed)
        assert tuner.snapshot()[PAIR]["pulls"] == 0
        tuner.observe(proposed, makespan=125.0)
        assert tuner.snapshot()[PAIR]["pulls"] == 1

    def test_makespan_objective_wins_over_wall_seconds(self):
        tuner = AutoTuner()
        proposed = tuner.rewrite(RunConfig(benchmark=BENCH, scheme="spawn"))
        tuner.observe(proposed, seconds=0.25, makespan=999.0)
        inner = tuner.tuner_for(BENCH, THRESHOLD_FAMILY)
        assert inner.state(proposed.scheme).total_cost == 999.0

    def test_exploration_order_is_stable_across_instances(self):
        first = AutoTuner(seed=7).tuner_for(BENCH, THRESHOLD_FAMILY)
        second = AutoTuner(seed=7).tuner_for(BENCH, THRESHOLD_FAMILY)
        assert first.alive == second.alive

    def test_pairs_get_distinct_exploration_seeds(self):
        tuner = AutoTuner(seed=7)
        assert tuner._pair_seed(BENCH, THRESHOLD_FAMILY) != tuner._pair_seed(
            "GC-citation", THRESHOLD_FAMILY
        )

    def test_warm_start_credits_cached_arms(self, tmp_path):
        seeded = Runner(store=open_store(tmp_path))
        arms = arm_grid(BENCH, THRESHOLD_FAMILY)
        for arm in arms[:2]:
            seeded.run(RunConfig(benchmark=BENCH, scheme=arm))
        # A different runner over the same store: the warm start must
        # come through the shared backend, not shared memory.
        tuner = AutoTuner(runner=Runner(store=open_store(tmp_path)))
        snap = tuner.tuner_for(BENCH, THRESHOLD_FAMILY).snapshot()
        assert snap["pulls"] == 2
        assert snap["warm_pulls"] == 2

    def test_fully_cached_grid_warm_starts_through_the_first_cut(self, tmp_path):
        seeded = Runner(store=open_store(tmp_path))
        arms = arm_grid(BENCH, THRESHOLD_FAMILY)
        for arm in arms:
            seeded.run(RunConfig(benchmark=BENCH, scheme=arm))
        inner = AutoTuner(runner=Runner(store=open_store(tmp_path))).tuner_for(
            BENCH, THRESHOLD_FAMILY
        )
        # One free pull per arm satisfies the round-0 quota exactly: the
        # first elimination happens before any live traffic.
        assert inner.round == 1
        assert len(inner.alive) == math.ceil(len(arms) / 2)

    def test_merge_prefers_converged_then_most_pulls(self):
        a = {"p": {"converged": False, "pulls": 9, "incumbent": "x"}}
        b = {"p": {"converged": True, "pulls": 3, "incumbent": "y"}}
        c = {"p": {"converged": False, "pulls": 2, "incumbent": "z"},
             "q": {"converged": False, "pulls": 1, "incumbent": "w"}}
        merged = merge_autotune_snapshots([a, b, c])
        assert merged["p"]["incumbent"] == "y"  # converged beats pulls
        assert merged["q"]["incumbent"] == "w"
        assert merge_autotune_snapshots([a, c])["p"]["incumbent"] == "x"


# ----------------------------------------------------------------------
# Service integration: seeded traffic converges to the offline optimum
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def offline_best():
    best, _ = offline_search(Runner(), BENCH)
    return f"threshold:{best}"


def converge_service(engine, *, faults=None, runner=None, extra=3):
    """Drive sequential tunable requests until the pair converges.

    Sequential submit-await (not a burst): each completion must land
    before the next proposal, which is the shape that actually explores
    the grid — a burst coalesces onto a single arm.  Returns the final
    stats and the post-convergence steady-state results.
    """
    runner = runner if runner is not None else Runner()
    config = ServiceConfig(jobs=1, autotune=True)

    async def main():
        async with SimulationService(runner, config=config, faults=faults) as svc:
            for _ in range(80):
                job = await svc.submit(
                    RunConfig(benchmark=BENCH, scheme="spawn", engine=engine)
                )
                await job.result()
                if svc.stats().autotune[PAIR]["converged"]:
                    break
            steady = []
            for _ in range(extra):
                job = await svc.submit(
                    RunConfig(benchmark=BENCH, scheme="spawn", engine=engine)
                )
                steady.append(await job.result())
            return svc.stats(), steady

    return asyncio.run(main())


class TestServiceConvergence:
    @pytest.mark.parametrize("engine", ["default", "fast"])
    def test_seeded_traffic_converges_to_the_offline_best_arm(
        self, engine, offline_best
    ):
        stats, _ = converge_service(engine)
        snap = stats.autotune[PAIR]
        assert snap["converged"], snap
        # Both engines minimise the same (certified bit-identical)
        # makespan, so both land on the Offline-Search winner.
        assert snap["incumbent"] == offline_best
        assert stats.autotuned == stats.submitted
        assert_ledger_invariants(stats)

    def test_converged_steady_state_is_bit_identical_to_serial_run(
        self, offline_best
    ):
        _, steady = converge_service("default")
        expected = Runner().run(
            RunConfig(benchmark=BENCH, scheme=offline_best, engine="default")
        )
        for result in steady:
            assert result.to_dict() == expected.to_dict()

    def test_repeat_pulls_are_free_cache_hits(self):
        stats, _ = converge_service("default", extra=0)
        arms = len(arm_grid(BENCH, THRESHOLD_FAMILY))
        # Only the unique arms ever reach the pool; every repeat pull is
        # answered from cache (that is what makes online tuning cheap).
        assert stats.pool_runs + stats.inline == arms
        assert stats.cache_hits == stats.submitted - arms


# ----------------------------------------------------------------------
# Chaos: tuning must not bend the ledger
# ----------------------------------------------------------------------
class TestChaos:
    def test_worker_kill_during_tuning_keeps_ledger_invariants(self):
        stats, steady = converge_service(
            "default", faults=FaultPlan(kill_on_dispatch=0)
        )
        assert_ledger_invariants(stats)
        assert stats.failed == 0  # the kill was retried, not surfaced
        assert stats.autotune[PAIR]["converged"]
        serial = Runner().run(
            RunConfig(
                benchmark=BENCH,
                scheme=stats.autotune[PAIR]["incumbent"],
            )
        )
        for result in steady:
            assert result.to_dict() == serial.to_dict()

    def test_flaky_store_during_tuning_keeps_ledger_invariants(
        self, tmp_path, offline_best
    ):
        flaky = FlakyStore(open_store(tmp_path), save_errors=3, load_errors=3)
        stats, _ = converge_service("default", runner=Runner(store=flaky))
        assert_ledger_invariants(stats)
        assert stats.failed == 0
        snap = stats.autotune[PAIR]
        assert snap["converged"]
        assert snap["incumbent"] == offline_best


# ----------------------------------------------------------------------
# Fleet: shards tune independently, learn through the shared store
# ----------------------------------------------------------------------
class TestFleet:
    def test_fleet_aggregates_shard_tuners(self):
        async def main():
            fleet = ServiceFleet(
                config=FleetConfig(
                    shards=2,
                    service=ServiceConfig(jobs=1, autotune=True),
                ),
            )
            async with fleet:
                for request in generate_traffic(12, seed=5):
                    job = await fleet.submit(request.config())
                    await job.result()
                return fleet.stats()

        stats = asyncio.run(main())
        assert stats.aggregate.lost == 0
        merged = stats.aggregate.autotune
        assert merged  # at least one tunable pair saw traffic
        for pair, snap in merged.items():
            benchmark, family = pair.split("/")
            grid = arm_grid(benchmark, family)
            assert snap["arms"] == len(grid)
            if snap["incumbent"] is not None:
                assert snap["incumbent"] in grid

    def test_second_shard_warm_starts_from_the_shared_store(self, tmp_path):
        url = f"dir://{tmp_path}"
        first = Runner(store=open_store(tmp_path))
        tuned = AutoTuner(runner=first)
        template = RunConfig(benchmark=BENCH, scheme="spawn")
        inner = tuned.tuner_for(BENCH, THRESHOLD_FAMILY, template=template)
        while not inner.converged:
            config = tuned.rewrite(template)
            tuned.observe(config, makespan=first.run(config).makespan)
        # A fresh shard over the same store inherits the exploration.
        second = AutoTuner(runner=Runner(store=open_store(url)))
        snap = second.tuner_for(
            BENCH, THRESHOLD_FAMILY, template=template
        ).snapshot()
        assert snap["warm_pulls"] == len(arm_grid(BENCH, THRESHOLD_FAMILY))
        assert snap["round"] >= 1


# ----------------------------------------------------------------------
# Slow soaks
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_zipf_soak_converges_and_matches_offline_search():
    """The acceptance scenario: seeded Zipf traffic, sequential arrivals,
    the GC-citation threshold family converges to the Offline-Search
    winner and the ledger balances to zero lost."""
    requests = generate_traffic(400, seed=11)
    runner = Runner()

    async def main():
        async with SimulationService(
            runner, config=ServiceConfig(jobs=2, autotune=True)
        ) as svc:
            for request in requests:
                job = await svc.submit(request.config())
                await job.result()
            return svc.stats()

    stats = asyncio.run(main())
    assert_ledger_invariants(stats)
    snap = stats.autotune[f"GC-citation/{THRESHOLD_FAMILY}"]
    assert snap["converged"], snap
    best, _ = offline_search(Runner(), "GC-citation")
    assert snap["incumbent"] == f"threshold:{best}"


@pytest.mark.slow
def test_soak_every_tunable_family_converges():
    """Long sequential soak: with enough traffic every tunable pair the
    Zipf matrix touches finishes its halving."""
    requests = generate_traffic(900, seed=23)
    runner = Runner()

    async def main():
        async with SimulationService(
            runner, config=ServiceConfig(jobs=2, autotune=True)
        ) as svc:
            for request in requests:
                job = await svc.submit(request.config())
                await job.result()
            return svc.stats()

    stats = asyncio.run(main())
    assert_ledger_invariants(stats)
    pairs = stats.autotune
    assert pairs, "no tunable pair saw traffic"
    converged = [pair for pair, snap in pairs.items() if snap["converged"]]
    # The head of the Zipf distribution must have converged; sparse-tail
    # pairs (a few percent of traffic) may legitimately still be mid-run.
    assert f"GC-citation/{THRESHOLD_FAMILY}" in converged
    assert f"MM-small/{THRESHOLD_FAMILY}" in converged
